"""Reusable benchmark sweeps: checkpoint-transfer cost and throughput.

The CLI (``python -m repro checkpoint`` / ``throughput``) and the pytest
benchmarks drive the same sweep functions, so the recorded regression
baselines and the asserted benchmark claims measure identical workloads.

* :func:`run_checkpoint_point` — warm-passive deployment under a
  scribbling (10 %-dirty) packet-driver workload; the cost metric is the
  median ``recovery.xfer`` span, which in a fault-free passive run times
  exactly the checkpoint's StateSet wire transfer.
* :func:`run_throughput_point` — the open-loop offered-load probe from
  the saturation extension, parameterized on Totem frame packing.
* :func:`run_recovery_scale_point` — the fig-6 kill/re-launch experiment
  at large state sizes, parameterized on the out-of-band bulk lane, with
  the client's request throughput sampled around the recovery window.
* :func:`run_obs_overhead_point` — wall-clock cost of the telemetry plane
  on a fault-free throughput workload (telemetry on vs. off).
* :func:`run_prof_overhead_point` — the same in-situ discipline applied
  to the span-resource profiler (:mod:`repro.obs.profiling`): proves the
  disabled profiler costs exactly nothing and gates the enabled one.

Overhead measurement is one audited code path:
:class:`repro.obs.profiling.InSituProbe` patches the measured plane's
entry points to accumulate their own wall-clock share inside the run
(see :func:`run_obs_overhead_point` for why on/off A-B deltas fail).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.deployments import build_client_server
from repro.bench.workloads import make_open_loop_factory, uniform_schedule
from repro.core.config import EternalConfig
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.obs.profiling import InSituProbe, ProfileSession
from repro.totem.config import TotemConfig

#: Figure-6 state sizes reused for the checkpoint-cost sweep.
CHECKPOINT_SIZES = [10_000, 50_000, 100_000, 200_000, 350_000]
CHECKPOINT_SIZES_QUICK = [10_000, 100_000, 350_000]

#: Offered loads (invocations/s) for the recorded throughput sweep.
THROUGHPUT_LOADS = [4_000, 8_000, 16_000, 32_000, 64_000]
THROUGHPUT_LOADS_QUICK = [8_000, 32_000, 64_000]

#: Near-zero simulated ``echo`` cost: with the default 50 µs/op servant
#: cost the saturation knee is server CPU, which hides the send path; a
#: 1 µs echo makes the sweep wire-bound, where frame packing is visible.
WIRE_BOUND_ECHO = 1e-6

OPEN_LOOP_TYPE = "IDL:repro/OpenLoopDriver:1.0"


# ---------------------------------------------------------------------------
# Checkpoint-transfer cost under a dirtying workload
# ---------------------------------------------------------------------------

def run_checkpoint_point(state_size: int, *,
                         delta: bool = True,
                         checkpoint_interval: float = 0.25,
                         duration: float = 3.0,
                         scribble_every: int = 600,
                         scribble_fraction: float = 0.1,
                         seed: int = 0) -> Dict[str, float]:
    """Measure the per-checkpoint state-transfer cost at one state size.

    Deploys the paper's topology with a warm-passive server whose
    packet-driver client mixes one ``scribble(0.1)`` into every
    ``scribble_every`` echoes, dirtying a rotating ~10 % window of the
    bulk state between checkpoints.  Returns the median/p95 of the
    ``recovery.xfer`` span (milliseconds) over the run's checkpoints plus
    the delta wire economics.
    """
    config = EternalConfig(delta_state_transfer=delta)
    deployment = build_client_server(
        style=ReplicationStyle.WARM_PASSIVE,
        server_replicas=2,
        state_size=state_size,
        checkpoint_interval=checkpoint_interval,
        eternal_config=config,
        seed=seed,
        warmup=0.2,
        scribble_every=scribble_every,
        scribble_fraction=scribble_fraction,
    )
    system = deployment.system
    system.run_for(duration)
    xfer = None
    for _name, labels, metric in system.metrics.find("span.recovery.xfer"):
        if labels.get("group") != "store":
            continue
        if xfer is None:
            xfer = metric.spawn_empty()
        xfer.merge(metric)
    if xfer is None or xfer.count == 0:
        raise RuntimeError(
            f"no checkpoint transfers observed at state_size={state_size} "
            f"(interval={checkpoint_interval}, duration={duration})"
        )

    def counter_total(name: str) -> float:
        return sum(metric.value
                   for _n, labels, metric in system.metrics.find(name)
                   if labels.get("group", "store") == "store")

    return {
        "state_size": state_size,
        "checkpoints": xfer.count,
        "median_ms": xfer.p50 * 1000.0,
        "p95_ms": xfer.p95 * 1000.0,
        "mean_ms": xfer.mean * 1000.0,
        "scribbles": float(deployment.driver.scribbles_acked),
        "delta_transfers": counter_total("delta.transfers_delta"),
        "wire_bytes": counter_total("delta.wire_bytes"),
        "full_bytes": counter_total("delta.full_bytes"),
    }


def run_checkpoint_sweep(sizes: Sequence[int], *,
                         delta: bool = True,
                         **kwargs) -> List[Dict[str, float]]:
    """:func:`run_checkpoint_point` over a list of state sizes."""
    return [run_checkpoint_point(size, delta=delta, **kwargs)
            for size in sizes]


# ---------------------------------------------------------------------------
# Open-loop throughput (parameterized on Totem frame packing)
# ---------------------------------------------------------------------------

def run_throughput_point(rate: int, *,
                         frame_packing: Optional[bool] = None,
                         window: float = 1.0,
                         drain: float = 0.3,
                         state_size: int = 100,
                         echo_duration: Optional[float] = None,
                         profile: Optional[ProfileSession] = None,
                         seed: int = 0) -> Dict[str, float]:
    """Drive the 2-way active group open-loop at ``rate`` invocations/s.

    ``frame_packing=None`` keeps the Totem default; ``True``/``False``
    force the token-rotation frame-packing optimization on or off.
    ``echo_duration`` overrides the servant's simulated per-``echo`` cost
    (pass :data:`WIRE_BOUND_ECHO` to saturate the medium instead of the
    server CPU).  ``profile`` attributes the run's host CPU/allocations
    to protocol phases (``--profile`` on the CLI).  Returns
    offered/achieved throughput and latency statistics.
    """
    totem_config = None
    if frame_packing is not None:
        totem_config = TotemConfig(frame_packing=frame_packing)
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        client_replicas=1,      # the closed-loop driver idles below
        state_size=state_size,
        echo_duration=echo_duration,
        totem_config=totem_config,
        profiling=profile.config if profile else None,
        seed=seed,
        warmup=0.05,
    )
    system = deployment.system
    if profile is not None:
        profile.attach(system)
    # Silence the closed-loop driver by deploying an open-loop one on the
    # same client node, targeting the same store.
    iogr = deployment.server_group.iogr().stringify()
    schedule = uniform_schedule(rate, window, start=0.0)
    system.register_factory(
        OPEN_LOOP_TYPE, make_open_loop_factory(iogr, schedule), nodes=["c1"]
    )
    system.create_group("openloop", OPEN_LOOP_TYPE,
                        FTProperties(initial_replicas=1, min_replicas=1),
                        nodes=["c1"])
    system.run_for(window + drain)   # schedule window plus a short drain
    from repro.core.system import GroupHandle
    driver = GroupHandle(system, "openloop").servant_on("c1")
    return {
        "offered": float(rate),
        "sent": float(driver.sent),
        "achieved": driver.completed / window,
        "mean_ms": driver.mean_latency * 1000.0,
        "p99_ms": driver.p99_latency * 1000.0,
    }


def run_throughput_sweep(rates: Sequence[int], *,
                         frame_packing: Optional[bool] = None,
                         **kwargs) -> List[Dict[str, float]]:
    """:func:`run_throughput_point` over a list of offered loads."""
    return [run_throughput_point(rate, frame_packing=frame_packing, **kwargs)
            for rate in rates]


# ---------------------------------------------------------------------------
# Recovery at scale (parameterized on the out-of-band bulk lane)
# ---------------------------------------------------------------------------

#: State sizes for the recovery-scale sweep: the fig-6 tail and beyond,
#: where the in-order transfer is fragment-bound and the bulk lane pays.
RECOVERY_SCALE_SIZES = [64_000, 128_000, 256_000, 350_000, 512_000]
RECOVERY_SCALE_SIZES_QUICK = [64_000, 256_000, 350_000]


def run_recovery_scale_point(state_size: int, *,
                             bulk: bool = True,
                             server_replicas: int = 3,
                             downtime: float = 0.05,
                             window: float = 0.2,
                             profile: Optional[ProfileSession] = None,
                             seed: int = 0) -> Dict[str, float]:
    """Kill/re-launch one active replica at ``state_size`` and time it.

    ``bulk=False`` is the ablation: the paper's in-order fragmented
    set_state multicast.  Besides the fig-6 recovery time, the packet
    driver's acked-invocation rate is sampled over a fixed ``window``
    before the kill and again from the re-launch, so the sweep also
    quantifies how much a concurrent large-state transfer disturbs
    fault-free request traffic (the in-order transfer hogs the total
    order; the bulk lane leaves it to the manifest).
    """
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=server_replicas,
        state_size=state_size,
        eternal_config=EternalConfig(bulk_lane=bulk),
        profiling=profile.config if profile else None,
        seed=seed,
        warmup=0.2,
    )
    system = deployment.system
    if profile is not None:
        profile.attach(system)
    driver = deployment.driver

    before = driver.acked
    system.run_for(window)
    baseline_per_s = (driver.acked - before) / window

    system.kill_node("s1")
    system.run_for(downtime)
    at_restart = driver.acked
    restart_at = system.now
    system.restart_node("s1")
    if not system.wait_for(
            lambda: deployment.server_group.is_operational_on("s1"),
            timeout=10.0):
        raise RuntimeError(
            f"recovery did not complete at state_size={state_size} "
            f"(bulk={bulk})")
    recovery_s = system.now - restart_at
    # acked rate over the same fixed window, starting at the re-launch:
    # the whole state transfer sits inside it, so any total-order
    # disruption it causes shows up as a dip vs the fault-free baseline
    system.run_until(restart_at + window)
    during_per_s = (driver.acked - at_restart) / window

    counters = system.tracer.counters
    return {
        "state_size": state_size,
        "recovery_ms": recovery_s * 1000.0,
        "baseline_per_s": baseline_per_s,
        "during_per_s": during_per_s,
        "during_ratio": (during_per_s / baseline_per_s
                         if baseline_per_s else 0.0),
        "oob_bytes": float(counters.get("bulk.oob.bytes", 0)),
        "inorder_bytes": float(counters.get("bulk.inorder.bytes", 0)),
        "bulk_sessions": float(counters.get("bulk.session_complete", 0)),
    }


def run_recovery_scale_sweep(sizes: Sequence[int], *,
                             bulk: bool = True,
                             **kwargs) -> List[Dict[str, float]]:
    """:func:`run_recovery_scale_point` over a list of state sizes."""
    return [run_recovery_scale_point(size, bulk=bulk, **kwargs)
            for size in sizes]


# ---------------------------------------------------------------------------
# Cold restart: the durable-store rung of the recovery ladder
# ---------------------------------------------------------------------------

#: State sizes for the cold-restart sweep; 350 kB is the acceptance point.
COLD_RESTART_SIZES = [64_000, 350_000]
COLD_RESTART_SIZES_QUICK = [350_000]


def _wire_bytes(system) -> float:
    """Total state bytes moved for recovery, both lanes (the in-order
    set_state payloads plus the out-of-band bulk pages)."""
    counters = system.tracer.counters
    return (float(counters.get("bulk.inorder.bytes", 0))
            + float(counters.get("bulk.oob.bytes", 0)))


def _restart_and_measure(deployment, node: str, *,
                         downtime: float) -> Tuple[float, float]:
    """Kill/re-launch one server replica; returns ``(recovery_seconds,
    state_wire_bytes)`` where the byte count is the delta over exactly the
    recovery window (kill → operational), so warm-up traffic and
    checkpoints taken before the fault don't pollute it."""
    system = deployment.system
    system.kill_node(node)
    system.run_for(downtime)
    bytes_before = _wire_bytes(system)
    restart_at = system.now
    system.restart_node(node)
    if not system.wait_for(
            lambda: deployment.server_group.is_operational_on(node),
            timeout=10.0):
        raise RuntimeError(f"replica on {node} did not recover")
    return system.now - restart_at, _wire_bytes(system) - bytes_before


def run_cold_restart_point(state_size: int, *,
                           checkpoint_interval: float = 5.0,
                           downtime: float = 0.05,
                           seed: int = 0) -> Dict[str, float]:
    """Measure what a durable journal saves on restart at one state size.

    Three arms, all on the paper's topology with three active server
    replicas and a closed-loop driver:

    * **warm**: every node keeps a durable store
      (:class:`~repro.store.memory.MemoryStore` — same journal codec as
      the disk backend, deterministic under the simulator).  One
      checkpoint is forced before the fault, then one replica is
      killed and re-launched; it restores checkpoint + log from its
      journal and fetches only the digest-negotiated tail from live
      peers.
    * **no-store**: the identical kill/re-launch without a store — the
      whole state crosses the wire (the pre-store behaviour).
    * **cold boot**: with stores, *all three* replicas are killed and
      re-launched; nobody is left to recover from, so the group seeds
      itself from the best journal (cold-boot election) and replays.

    The checkpoint interval is long (and the one checkpoint forced
    explicitly) so no periodic checkpoint transfer lands inside a
    measurement window.  The gated claim: ``wire_ratio =
    no-store / warm state bytes >= 10`` at 350 kB.
    """
    from repro.store.memory import MemoryStore

    def build(with_store: bool):
        return build_client_server(
            style=ReplicationStyle.ACTIVE,
            server_replicas=3,
            state_size=state_size,
            checkpoint_interval=checkpoint_interval,
            store_factory=(lambda node_id: MemoryStore())
                          if with_store else None,
            seed=seed,
            warmup=0.2,
        )

    # -- warm arm: journal-backed single-replica restart -------------------
    deployment = build(True)
    system = deployment.system
    # Force the durable checkpoint the restart will restore from.
    system.mechanisms("s1").recovery.initiate_checkpoint("store")
    system.run_for(0.2)
    warm_s, warm_bytes = _restart_and_measure(deployment, "s2",
                                              downtime=downtime)

    # -- cold-boot arm: the same system loses every replica ----------------
    acked_before = deployment.driver.acked
    for node in deployment.server_nodes:
        system.kill_node(node)
    system.run_for(downtime)
    restart_at = system.now
    for node in deployment.server_nodes:
        system.restart_node(node)
    if not system.wait_for(
            lambda: all(deployment.server_group.is_operational_on(n)
                        for n in deployment.server_nodes),
            timeout=20.0):
        raise RuntimeError("full-cluster cold boot did not recover "
                           f"at state_size={state_size}")
    cold_s = system.now - restart_at
    if not system.wait_for(
            lambda: deployment.driver.acked > acked_before, timeout=10.0):
        raise RuntimeError("driver never resumed after the cold boot")
    cold_seeds = float(system.tracer.counters.get("store.cold_seed_claimed",
                                                  0))

    # -- no-store arm: the ablation ----------------------------------------
    ablation = build(False)
    nostore_s, nostore_bytes = _restart_and_measure(ablation, "s2",
                                                    downtime=downtime)

    return {
        "state_size": state_size,
        "warm_recovery_ms": warm_s * 1000.0,
        "warm_wire_bytes": warm_bytes,
        "nostore_recovery_ms": nostore_s * 1000.0,
        "nostore_wire_bytes": nostore_bytes,
        "wire_ratio": (nostore_bytes / warm_bytes if warm_bytes
                       else float("inf")),
        "cold_recovery_ms": cold_s * 1000.0,
        "cold_seeds": cold_seeds,
    }


def run_cold_restart_sweep(sizes: Sequence[int],
                           **kwargs) -> List[Dict[str, float]]:
    """:func:`run_cold_restart_point` over a list of state sizes."""
    return [run_cold_restart_point(size, **kwargs) for size in sizes]


# ---------------------------------------------------------------------------
# Telemetry-plane overhead (wall clock)
# ---------------------------------------------------------------------------

#: Offered loads (invocations/s) for the obs-overhead gate.
OBS_OVERHEAD_LOADS = [4_000, 16_000]
OBS_OVERHEAD_LOADS_QUICK = [8_000]


def _obs_workload_wall_clock(rate: int, *, telemetry=None, profiling=None,
                             window: float, drain: float, state_size: int,
                             seed: int) -> float:
    """Wall-clock seconds to simulate one fault-free open-loop throughput
    run with the given telemetry/profiling configs (the simulated workload
    is identical either way — only the host CPU cost differs)."""
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        client_replicas=1,
        state_size=state_size,
        echo_duration=WIRE_BOUND_ECHO,
        telemetry=telemetry,
        profiling=profiling,
        seed=seed,
        warmup=0.05,
    )
    system = deployment.system
    iogr = deployment.server_group.iogr().stringify()
    schedule = uniform_schedule(rate, window, start=0.0)
    system.register_factory(
        OPEN_LOOP_TYPE, make_open_loop_factory(iogr, schedule), nodes=["c1"]
    )
    system.create_group("openloop", OPEN_LOOP_TYPE,
                        FTProperties(initial_replicas=1, min_replicas=1),
                        nodes=["c1"])
    start = time.perf_counter()
    system.run_for(window + drain)
    return time.perf_counter() - start


def _obs_instrumented_wall_clock(rate: int, *, sample_interval: float,
                                 window: float, drain: float,
                                 state_size: int, seed: int
                                 ) -> Tuple[float, float]:
    """One telemetry-ON run with the plane's two entry points wrapped to
    accumulate their own wall-clock cost in situ.

    Returns ``(run_seconds, plane_seconds)`` where ``plane_seconds`` is
    the time spent inside :meth:`FlightRecorder._admit` (per-record ring
    admission, including the amortized batch trims that destroy
    long-retained records) and :meth:`TelemetryPlane.sample_now` (the
    periodic poll-and-snapshot), accumulated by an
    :class:`~repro.obs.profiling.InSituProbe` — installed before the
    system is built (subscription captures bound methods) and restored
    after.  See the probe's docstring for the over-counting direction.
    """
    from repro.obs.telemetry import (FlightRecorder, TelemetryConfig,
                                     TelemetryPlane)

    with InSituProbe() as probe:
        probe.patch(FlightRecorder, "_admit")
        probe.patch(TelemetryPlane, "sample_now")
        run_s = _obs_workload_wall_clock(
            rate,
            telemetry=TelemetryConfig(enabled=True,
                                      sample_interval=sample_interval),
            window=window, drain=drain, state_size=state_size, seed=seed)
    return run_s, probe.seconds


def run_obs_overhead_point(rate: int, *,
                           repeats: int = 3,
                           window: float = 0.5,
                           drain: float = 0.2,
                           state_size: int = 100,
                           sample_interval: float = 0.05,
                           seed: int = 0) -> Dict[str, float]:
    """Measure the telemetry plane's cost at one offered load.

    The gated metric is the plane's **in-situ share** of a fault-free
    throughput run: telemetry-ON runs execute with the plane's entry
    points instrumented, and ``overhead_ratio = run / (run - plane)`` —
    what the run would have cost without the time provably spent in the
    plane.  A plain ON-vs-OFF wall-clock comparison is the obvious
    estimator and it does not work on shared hardware: interference
    bursts of 10 %+ lasting seconds swamp a percent-level effect, and
    min-of-N interleaved arms still produced swings from -10 % to +15 %
    for a *no-op* plane on an idle-looking box.  The in-situ share puts
    numerator and denominator inside the same run, so interference
    cancels to first order and repeated measurements agree to ~0.1 %.
    It also over-counts slightly (the instrumentation's clock reads are
    charged to the plane) — the right direction for a budget gate.

    ``on_s``/``off_s`` (min over ``repeats``, interleaved) are reported
    for context but deliberately not gated.  The simulated clock is
    useless here because the sampler consumes zero simulated time.
    """
    from repro.obs.telemetry import TelemetryConfig

    off = TelemetryConfig(enabled=False)
    ratios: List[float] = []
    on_times: List[float] = []
    off_times: List[float] = []
    for _ in range(repeats):
        off_times.append(_obs_workload_wall_clock(
            rate, telemetry=off, window=window, drain=drain,
            state_size=state_size, seed=seed))
        run_s, plane_s = _obs_instrumented_wall_clock(
            rate, sample_interval=sample_interval, window=window,
            drain=drain, state_size=state_size, seed=seed)
        on_times.append(run_s)
        ratios.append(run_s / (run_s - plane_s))
    return {
        "offered": float(rate),
        "on_s": min(on_times),
        "off_s": min(off_times),
        "overhead_ratio": min(ratios),
    }


# ---------------------------------------------------------------------------
# Profiler overhead (wall clock)
# ---------------------------------------------------------------------------

#: Offered loads (invocations/s) for the prof-overhead gate.
PROF_OVERHEAD_LOADS = [4_000, 16_000]
PROF_OVERHEAD_LOADS_QUICK = [8_000]


def run_prof_overhead_point(rate: int, *,
                            repeats: int = 3,
                            window: float = 0.5,
                            drain: float = 0.2,
                            state_size: int = 100,
                            sample_interval: float = 0.005,
                            seed: int = 0) -> Dict[str, float]:
    """Measure the span-resource profiler's cost at one offered load.

    Same in-situ discipline as :func:`run_obs_overhead_point` (see there
    for why on/off wall A-B fails on shared hardware), applied to the
    profiler's two entry points:

    * **off**: the workload runs with ``ProfilingConfig(enabled=False)``
      while both :meth:`SpanResourceProfiler.observe_record` and
      :meth:`~SpanResourceProfiler.observe_span` are probed.  A disabled
      profiler never subscribes to the tracer, so the probes accumulate
      **exactly zero** and the ratio is exactly 1.0 — the "off = zero
      cost" half of the gate is structural, not statistical.
    * **on**: the workload runs with the profiler enabled and a live
      stack sampler; the probe wraps ``observe_span`` (the per-span
      CPU/alloc bookkeeping) and :meth:`StackSampler.sample_once` (the
      periodic stack walk), and ``overhead_ratio = run / (run - plane)``.
      ``observe_record`` — one category compare per trace record — is
      deliberately left unprobed in the ON arm: wrapping it would charge
      the probe's own clock reads to every non-span record, measuring
      the instrumentation instead of the profiler (observed 5x the real
      cost).  The dispatch itself is one attribute compare and is
      covered by the off arm's structural-zero check.

    Probes patch classes before the system is built (subscription
    captures bound methods).  The min over ``repeats`` is gated.
    """
    from repro.obs.profiling import (ProfilingConfig, SpanResourceProfiler,
                                     StackSampler)

    off_ratios: List[float] = []
    on_ratios: List[float] = []
    on_times: List[float] = []
    off_times: List[float] = []
    for _ in range(repeats):
        with InSituProbe() as probe:
            probe.patch(SpanResourceProfiler, "observe_record")
            probe.patch(SpanResourceProfiler, "observe_span")
            off_s = _obs_workload_wall_clock(
                rate, profiling=ProfilingConfig(enabled=False),
                window=window, drain=drain, state_size=state_size, seed=seed)
        off_times.append(off_s)
        off_ratios.append(probe.overhead_ratio(off_s))

        with InSituProbe() as probe:
            probe.patch(SpanResourceProfiler, "observe_span")
            probe.patch(StackSampler, "sample_once")
            sampler = StackSampler(interval=sample_interval)
            sampler.start()
            try:
                on_s = _obs_workload_wall_clock(
                    rate, profiling=ProfilingConfig(enabled=True),
                    window=window, drain=drain, state_size=state_size,
                    seed=seed)
            finally:
                sampler.stop()
        on_times.append(on_s)
        on_ratios.append(probe.overhead_ratio(on_s))
    return {
        "offered": float(rate),
        "on_s": min(on_times),
        "off_s": min(off_times),
        "off_ratio": min(off_ratios),
        "overhead_ratio": min(on_ratios),
    }
