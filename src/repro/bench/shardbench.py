"""The ``shard-scale`` bench: aggregate throughput vs. ring count.

One Totem ring serialises every multicast through one token rotation,
so adding nodes to a single ring does not add aggregate throughput —
the rotation is the bottleneck (§6's single-ring numbers).  Sharding
the same workload over N independent rings multiplies the available
rotations; this bench pins that claim with a fixed **work and node
budget** swept across ring counts:

* ``pairs`` closed-loop (driver → kvstore) pairs total — each driver
  node and each server node exists in every arm, only the ring
  partitioning changes (1 ring of 2·pairs nodes … N rings of
  2·pairs/N nodes);
* every pair is placement-pinned to its own ring, so the steady-state
  stream never crosses rings (the gateway stays cold — cross-ring
  bridging is benched by its own tests, not here);
* throughput is counted in *simulated* time, so the sweep is
  deterministic: the recorded points are machine-independent ratios
  (arm cost / single-ring cost, lower is better) suitable for a
  committed baseline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.deployments import DRIVER_TYPE, KVSTORE_TYPE
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant
from repro.errors import SimulationError
from repro.ftcorba.properties import FTProperties
from repro.simnet.sharded import ShardedEternalSystem

#: Ring counts swept (all divide the default 16-pair budget).
SHARD_SCALE_RINGS = (1, 2, 4, 8)
SHARD_SCALE_RINGS_QUICK = (1, 8)


def run_shard_scale_point(rings: int, *, pairs: int = 16,
                          duration: float = 1.0, warmup: float = 0.3,
                          state_size: int = 1_000,
                          seed: int = 0) -> Dict[str, float]:
    """One arm: ``pairs`` closed-loop pairs sharded over ``rings`` rings.

    Returns the aggregate invocation count over ``duration`` simulated
    seconds and the derived per-invocation cost (µs, lower is better).
    """
    if pairs % rings != 0:
        raise SimulationError(f"{pairs} pairs do not shard evenly over "
                              f"{rings} rings")
    per_ring = pairs // rings
    template: List[str] = []
    for j in range(1, per_ring + 1):
        template += [f"c{j}", f"s{j}"]
    system = ShardedEternalSystem(rings=rings, node_template=template,
                                  seed=seed)
    system.register_factory(KVSTORE_TYPE, make_kvstore_factory(state_size))
    if not system.wait_for(system.ring_formed, timeout=10.0):
        raise SimulationError(f"{rings} rings did not form")

    # Deploy all stores first (their IOGRs gate the drivers), each pinned
    # to its own ring with a single replica on its server node.
    stores = {}
    for name, sub in system.rings.items():
        for j in range(1, per_ring + 1):
            group_id = f"store{j}.{name}"
            stores[group_id] = system.create_group(
                group_id, KVSTORE_TYPE, FTProperties(initial_replicas=1),
                nodes=[f"{name}.s{j}"])
    if not system.wait_for(
            lambda: all(h.is_operational_on(h.member_nodes()[0])
                        if _known(h) else False
                        for h in stores.values()), timeout=10.0):
        raise SimulationError("store groups never became operational")

    drivers = []
    for name, sub in system.rings.items():
        for j in range(1, per_ring + 1):
            client = f"{name}.c{j}"
            iogr = stores[f"store{j}.{name}"].iogr().stringify()
            sub.register_factory(
                DRIVER_TYPE,
                lambda _iogr=iogr: PacketDriverServant(_iogr),
                nodes=[client])
            handle = system.create_group(
                f"driver{j}.{name}", DRIVER_TYPE,
                FTProperties(initial_replicas=1), nodes=[client])
            drivers.append((handle, client))
    if not system.wait_for(
            lambda: all(h.servant_on(c) is not None
                        and h.servant_on(c).acked > 0
                        if _known(h) else False
                        for h, c in drivers), timeout=10.0):
        raise SimulationError("drivers never started streaming")

    system.run_for(warmup)
    before = sum(h.servant_on(c).acked for h, c in drivers)
    system.run_for(duration)
    acked = sum(h.servant_on(c).acked for h, c in drivers) - before
    if acked <= 0:
        raise SimulationError(f"no invocations completed in the "
                              f"{rings}-ring arm")
    return {
        "rings": rings,
        "pairs": pairs,
        "acked": acked,
        "throughput_per_s": acked / duration,
        "inv_cost_us": duration / acked * 1e6,
    }


def _known(handle) -> bool:
    """True once some live node knows the group (GroupUpdate delivered)."""
    try:
        handle._info()
    except SimulationError:
        return False
    return True
