"""Fixed-width result tables for benchmark output.

Every experiment prints a header naming the paper artifact it regenerates
and a row per sweep point, so ``pytest benchmarks/ --benchmark-only -s``
reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def print_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    paper_note: Optional[str] = None,
    footer: Optional[str] = None,
) -> str:
    """Render (and print) a fixed-width table; returns the rendered text.

    ``footer`` appends a trailing line after the rows — the regression
    comparator uses it for its pass/fail verdict.
    """
    rendered_rows: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(c) for c in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["", "=" * max(len(title), 8), title, "=" * max(len(title), 8)]
    if paper_note:
        lines.append(f"paper: {paper_note}")
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    if footer:
        lines.append(footer)
    text = "\n".join(lines)
    print(text)
    return text
