"""Closed-loop throughput of the live (loopback-UDP) hot path (O-7).

Two arms over identical deployments — three real event-loop nodes, a
replicated kvstore, and a :class:`~repro.live.loadgen.ReadMixDriver`
streaming a read-heavy put/get mix — differing only in
``EternalConfig.read_lease``:

* **total-order** — every invocation rides Totem's token rotation (the
  paper's behaviour);
* **read-lease** — read-only operations divert to the ring leaseholder
  point-to-point (:mod:`repro.core.readfast`); writes stay ordered.

Both arms exercise the batched UDP transport (sendmmsg/recvmmsg, drain
to EAGAIN, per-tick send coalescing) and the zero-copy CDR decode, so
the arm ratio isolates what the lease buys *on top of* the raw-speed
work, and the per-arm ops/s track the transport itself.

Wall-clock throughput is machine-dependent, so the regression record
(``BENCH_live.json``) gates on machine-*independent*, lower-is-better
shapes instead of absolute rates:

* ``order_per_lease`` — total-order ops/s over read-lease ops/s (the
  inverse speedup; < 0.5 means the lease at least doubles throughput);
* ``wakeups_per_datagram`` — socket wakeups over datagrams received in
  a saturation arm running :data:`SATURATION_DRIVERS` concurrent
  drivers (< 0.67 means the drain loop averages > 1.5 datagrams per
  wakeup; one latency-bound driver cannot queue arrivals, so the probe
  needs the concurrency).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict

from repro.core.config import EternalConfig
from repro.ftcorba.properties import FTProperties
from repro.live.clock import new_event_loop
from repro.live.loadgen import DRIVER_TYPE, LIVE_APPS
from repro.live.system import LiveSystem

#: Application state carried by the kvstore under test (bytes).
STATE_SIZE = 1_000


async def _run_arm(read_lease: bool, *, duration: float,
                   n_drivers: int = 1,
                   warmup_acks: int = 20) -> Dict[str, Any]:
    """One deployment, one measurement window; returns the arm's stats.

    ``n_drivers`` > 1 deploys that many independent closed-loop drivers
    on the manager node — a saturation workload whose concurrent arrivals
    exercise the drain loop's receive batching (one driver is latency-
    bound: each datagram arrives alone, so batches stay near 1).
    """
    node_ids = ["n1", "n2", "n3"]
    manager, server_nodes = node_ids[0], node_ids[1:]
    app = LIVE_APPS["kvstore-read"]
    system = LiveSystem(
        node_ids, eternal_config=EternalConfig(read_lease=read_lease))
    auditor = system.attach_auditor()
    try:
        if not await system.wait_for(system.ring_formed, timeout=15.0):
            raise RuntimeError("Totem ring did not form within 15 s")
        system.register_factory(app.type_id, app.make_factory(STATE_SIZE),
                                nodes=server_nodes)
        group = system.create_group(
            "app", app.type_id,
            FTProperties(initial_replicas=len(server_nodes),
                         min_replicas=1),
            nodes=server_nodes)
        if not await system.wait_for(
                lambda: all(group.is_operational_on(n)
                            for n in server_nodes), timeout=15.0):
            raise RuntimeError("app group never became operational")
        iogr = group.iogr().stringify()
        system.register_factory(DRIVER_TYPE, app.make_driver(iogr),
                                nodes=[manager])
        driver_groups = [
            system.create_group(
                f"driver{i}" if n_drivers > 1 else "driver", DRIVER_TYPE,
                FTProperties(initial_replicas=1, min_replicas=1),
                nodes=[manager])
            for i in range(n_drivers)]

        def _drivers():
            return [g.servant_on(manager) for g in driver_groups]

        def _warm() -> bool:
            return all(d is not None and d.acked >= warmup_acks
                       for d in _drivers())

        if not await system.wait_for(_warm, timeout=20.0):
            raise RuntimeError("no load flowing within 20 s")

        tracer = system.tracer
        acked0 = sum(d.acked for d in _drivers())
        batches0 = tracer.count("live.sys.recv_batches")
        datagrams0 = tracer.count("live.sys.recv_datagrams")
        t0 = system.now
        await system.run_for(duration)
        window = system.now - t0
        drivers = _drivers()
        acked = sum(d.acked for d in drivers) - acked0
        batches = tracer.count("live.sys.recv_batches") - batches0
        datagrams = tracer.count("live.sys.recv_datagrams") - datagrams0
        stats = {
            "read_lease": read_lease,
            "n_drivers": n_drivers,
            "window_s": window,
            "acked": acked,
            "acked_per_s": acked / window if window > 0 else 0.0,
            "reads_acked": sum(d.reads_acked for d in drivers),
            "writes_acked": sum(d.writes_acked for d in drivers),
            "fast_reads": tracer.count("interceptor.request_fast"),
            "fallbacks": tracer.count("lease.fallback"),
            "recv_batches": batches,
            "recv_datagrams": datagrams,
            "datagrams_per_wakeup": (datagrams / batches
                                     if batches else 0.0),
        }
    finally:
        system.close()
    auditor.finish()
    if not auditor.ok:
        raise RuntimeError(f"consistency audit failed: "
                           f"{auditor.summary()}")
    stats["audit_records"] = auditor.records_scanned
    return stats


#: Concurrent drivers in the saturation arm (the receive-batching probe).
#: Deep enough that reply-completion bursts dominate the per-iteration
#: send coalescing; one latency-bound driver would never queue arrivals.
SATURATION_DRIVERS = 16


def run_arm(read_lease: bool, *, duration: float = 2.0,
            n_drivers: int = 1,
            use_uvloop: bool = False) -> Dict[str, Any]:
    """Run one arm on a fresh event loop (uvloop's when requested)."""
    with asyncio.Runner(loop_factory=lambda: new_event_loop(
            use_uvloop=use_uvloop)) as runner:
        return runner.run(_run_arm(read_lease, duration=duration,
                                   n_drivers=n_drivers))


def run_live_throughput(*, duration: float = 2.0,
                        use_uvloop: bool = False) -> Dict[str, Any]:
    """Both single-driver arms (the speedup pair) plus a saturation arm
    probing receive batching, and the ratio-derived regression points."""
    ordered = run_arm(False, duration=duration, use_uvloop=use_uvloop)
    leased = run_arm(True, duration=duration, use_uvloop=use_uvloop)
    saturated = run_arm(True, duration=duration,
                        n_drivers=SATURATION_DRIVERS,
                        use_uvloop=use_uvloop)
    ratio = (leased["acked_per_s"] / ordered["acked_per_s"]
             if ordered["acked_per_s"] > 0 else float("inf"))
    # Lower-is-better, machine-independent gate points (see module doc).
    points = {
        "order_per_lease": round(1.0 / ratio, 4) if ratio > 0 else 1.0,
        "wakeups_per_datagram": round(
            saturated["recv_batches"] / saturated["recv_datagrams"], 4)
        if saturated["recv_datagrams"] else 1.0,
    }
    return {
        "ordered": ordered,
        "leased": leased,
        "saturated": saturated,
        "speedup": ratio,
        "points": points,
    }
