"""Timer helpers layered on any :class:`repro.runtime.Scheduler`.

:class:`PeriodicTimer` drives recurring activities such as the
checkpointing interval, the fault-monitoring (heartbeat) interval, and the
Totem token retransmission timeout — on simulated or wall-clock time alike.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.interfaces import Scheduler, TimerHandle


class PeriodicTimer:
    """Calls ``fn`` every ``interval`` seconds until stopped.

    The timer re-arms itself *after* each tick completes, so a tick that
    crashes the owning process does not leave a dangling callback: ``stop()``
    from the crash handler cancels the pending event.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        interval: float,
        fn: Callable[[], Any],
        *,
        start: bool = True,
        initial_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._scheduler = scheduler
        self._interval = interval
        self._fn = fn
        self._event: Optional[TimerHandle] = None
        self._running = False
        if start:
            self.start(initial_delay=initial_delay)

    @property
    def running(self) -> bool:
        return self._running

    @property
    def interval(self) -> float:
        return self._interval

    def start(self, *, initial_delay: Optional[float] = None) -> None:
        """Arm the timer; first tick after ``initial_delay`` (default: interval)."""
        if self._running:
            return
        self._running = True
        delay = self._interval if initial_delay is None else initial_delay
        self._event = self._scheduler.call_after(delay, self._tick)

    def stop(self) -> None:
        """Disarm the timer; a pending tick is cancelled."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reset(self) -> None:
        """Restart the full interval from now (a heartbeat-watchdog 'kick')."""
        if not self._running:
            return
        if self._event is not None:
            self._event.cancel()
        self._event = self._scheduler.call_after(self._interval, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self._fn()
        if self._running:
            self._event = self._scheduler.call_after(self._interval, self._tick)
