"""Structured event tracing and counters.

Substrate-independent: both the simulator and the live runtime bind their
clock via :meth:`Tracer.bind_clock`.

Benches and tests observe the system through a :class:`Tracer`: every layer
emits ``(time, category, event, fields)`` records and bumps named counters.
The Figure-6 bench, for instance, counts ``totem.frame`` events to verify that
recovery time grows with the number of multicast frames carrying the state.

The tracer is also the transport for the observability layer in
:mod:`repro.obs`: span lifecycles travel as ordinary records in the ``span``
category (see :mod:`repro.obs.spans`), so exporters, the metrics registry,
and the timeline tools all read one stream.

Filtering semantics (see :meth:`Tracer.emit`):

* **counters always update**, regardless of configuration;
* ``enabled_categories`` gates *both* record retention and subscriber
  notification, uniformly — a disabled category is invisible to every
  consumer of the record stream, while its counters keep counting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Set


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced event.

    ``slots=True`` matters at trace volume: it removes the per-instance
    ``__dict__``, so allocating — and, for records retained by the flight
    recorder, later destroying — a record touches two heap objects instead
    of three.  Eviction from a full flight ring frees records long after
    they went cache-cold, where per-object cost dominates the plane's
    overhead budget (see :mod:`repro.obs.telemetry`).
    """

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.time:.6f}] {self.category}.{self.event} {kv}"


class Tracer:
    """Collects trace records and counters.

    ``enabled_categories`` restricts the record stream (retention *and*
    subscriber delivery; counters always update); record retention can be
    disabled entirely for long benches with ``keep_records=False`` —
    subscribers still see every (enabled) record live.
    """

    def __init__(
        self,
        *,
        keep_records: bool = True,
        enabled_categories: Optional[set] = None,
    ) -> None:
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        self._keep_records = keep_records
        self._enabled = enabled_categories
        self._disabled: Set[str] = set()
        self._muted: frozenset = frozenset()
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._now: Callable[[], float] = lambda: 0.0
        #: Span ids currently open on this trace stream; maintained by
        #: :class:`repro.obs.spans.SpanEmitter` so that cross-component
        #: spans end exactly once (``None`` disables the bookkeeping).
        self.open_spans: Optional[Set[str]] = set()

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Attach the simulation clock so records carry simulated time."""
        self._now = now

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Register a live callback invoked for every emitted record.

        Subscribers see the same filtered stream retention does: records of
        categories outside ``enabled_categories`` are delivered to no one.
        """
        self._subscribers.append(fn)

    def set_disabled_categories(self, categories: Set[str]) -> None:
        """Blocklist: suppress the record stream (retention *and*
        subscriber delivery) for these categories without enumerating
        every allowed one.  Counters still count.  Complements
        ``enabled_categories``: a category must pass both filters."""
        self._disabled = set(categories)

    def set_muted_events(self, events) -> None:
        """Mute individual ``category.event`` record streams: no record
        is created, retained, or delivered to subscribers; the counter
        keeps counting.  Finer-grained than the category filters — built
        for provably consumer-less high-volume events on the live hot
        path, where building and fanning out a record that every
        subscriber ignores is pure overhead."""
        self._muted = frozenset(events)

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record an event and bump its counter (``category.event``).

        The counter updates unconditionally.  The record itself is produced
        only if the category is enabled and the event is not muted, and is
        then both retained (when ``keep_records``) and fanned out to every
        subscriber — the filters apply uniformly to retention and
        subscription.
        """
        key = f"{category}.{event}"
        self.counters[key] += 1
        if key in self._muted:
            return
        if self._enabled is not None and category not in self._enabled:
            return
        if category in self._disabled:
            return
        if not self._keep_records and not self._subscribers:
            return
        record = TraceRecord(self._now(), category, event, fields)
        if self._keep_records:
            self.records.append(record)
        for fn in self._subscribers:
            fn(record)

    def scoped(self, **extra: Any) -> "ScopedTracer":
        """A view of this tracer whose emits carry ``extra`` fields.

        Built for multi-ring deployments: each ring's stacks emit through
        ``tracer.scoped(ring="r3")`` so every record in the shared stream
        names its ring without any protocol layer knowing about shards.
        """
        return ScopedTracer(self, **extra)

    def count(self, key: str) -> int:
        """Counter value for ``category.event`` (0 if never emitted)."""
        return self.counters.get(key, 0)

    def add(self, key: str, amount: int) -> None:
        """Bump an arbitrary named counter by ``amount`` (e.g. bytes sent)."""
        self.counters[key] += amount

    def find(self, category: str, event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records matching category (and optionally event)."""
        for record in self.records:
            if record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def clear(self) -> None:
        """Drop retained records and reset all counters."""
        self.records.clear()
        self.counters.clear()
        if self.open_spans is not None:
            self.open_spans.clear()


class ScopedTracer:
    """A delegating view of a :class:`Tracer` that stamps extra fields.

    ``emit`` injects the scope fields via ``setdefault`` — an explicit
    field from the emitting component always wins — and everything else
    (subscription, counters, retained records, span bookkeeping, clock
    binding) is the parent's, so one shared stream serves all scopes.
    Scoped counters still land in the parent's flat namespace: per-scope
    accounting belongs to the metrics registry, which reads the injected
    fields off each record.
    """

    __slots__ = ("_parent", "_extra")

    def __init__(self, parent: Tracer, **extra: Any) -> None:
        self._parent = parent
        self._extra = extra

    @property
    def parent(self) -> Tracer:
        return self._parent

    @property
    def scope_fields(self) -> Dict[str, Any]:
        return dict(self._extra)

    def emit(self, category: str, event: str, **fields: Any) -> None:
        for key, value in self._extra.items():
            fields.setdefault(key, value)
        self._parent.emit(category, event, **fields)

    def scoped(self, **extra: Any) -> "ScopedTracer":
        merged = dict(self._extra)
        merged.update(extra)
        return ScopedTracer(self._parent, **merged)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._parent, name)


class NullTracer(Tracer):
    """A tracer that records nothing, counts nothing, notifies no one.

    Components constructed without an explicit tracer share the
    :data:`NULL_TRACER` instance; a genuinely inert subclass guarantees the
    singleton accumulates no state across unrelated components or tests
    (the previous shared ``Tracer(keep_records=False)`` silently collected
    counters from every use site).
    """

    def __init__(self) -> None:
        super().__init__(keep_records=False)
        self.open_spans = None      # no span bookkeeping either

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Discard the event entirely (not even counters update)."""

    def add(self, key: str, amount: int) -> None:
        """Discard the counter bump."""

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Ignore the subscription: a null tracer never emits records."""


NULL_TRACER = NullTracer()
"""The shared do-nothing tracer for components created without one."""
