"""Substrate abstractions shared by the simulator and the live runtime.

The protocol stack (Totem ring member, Replication/Recovery Mechanisms,
replica containers, managers) is written against the narrow interfaces in
:mod:`repro.runtime.interfaces` — a clock/scheduler, a crashable host, and
a transport with payload-type dispatch.  Two substrates implement them:

* :mod:`repro.simnet` — the deterministic discrete-event simulator
  (simulated time, modelled Ethernet);
* :mod:`repro.live` — asyncio over real UDP sockets and the wall clock.

:mod:`repro.runtime.trace` and :mod:`repro.runtime.timers` hold the tracer
and periodic-timer utilities, which are substrate-independent and used by
both.
"""

from repro.runtime.interfaces import (
    Clock,
    Host,
    Scheduler,
    TimerHandle,
    Transport,
)
from repro.runtime.host import BaseHost
from repro.runtime.timers import PeriodicTimer
from repro.runtime.trace import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "BaseHost",
    "Clock",
    "Host",
    "NULL_TRACER",
    "NullTracer",
    "PeriodicTimer",
    "Scheduler",
    "TimerHandle",
    "TraceRecord",
    "Tracer",
    "Transport",
]
