"""The narrow interfaces the protocol stack needs from its substrate.

Three capabilities cover everything the Eternal/Totem code asks of the
world it runs on:

* :class:`Clock` / :class:`Scheduler` — "what time is it" and "call me
  later", returning cancellable :class:`TimerHandle`\\ s;
* :class:`Host` — one crashable process-like unit with crash/restart
  listeners and an incarnation-guarded ``call_after``;
* :class:`Transport` — the host's single network attachment: unicast,
  broadcast onto the shared segment, and payload-type dispatch of
  incoming frames.

The discrete-event simulator (:mod:`repro.simnet`) and the asyncio/UDP
live runtime (:mod:`repro.live`) both implement these; the conformance
suite in ``tests/unit/runtime`` runs the same assertions against each.
Time is always *seconds since the substrate started* — simulated seconds
in simnet, wall-clock seconds in live — so protocol timeouts carry over
unchanged.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Type

Handler = Callable[[str, Any], None]


class TimerHandle(abc.ABC):
    """A scheduled callback that can be cancelled."""

    @abc.abstractmethod
    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""


class Clock(abc.ABC):
    """A monotonically advancing clock."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds since the substrate started."""


class Scheduler(Clock):
    """A clock that can also schedule callbacks."""

    @abc.abstractmethod
    def call_at(self, time: float, fn: Callable[..., Any],
                *args: Any) -> TimerHandle:
        """Schedule ``fn(*args)`` at absolute ``time`` (seconds)."""

    @abc.abstractmethod
    def call_after(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> TimerHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""

    def cancel(self, handle: "TimerHandle | None") -> None:
        """Cancel a previously scheduled callback (``None`` is a no-op)."""
        if handle is not None:
            handle.cancel()


class Host(abc.ABC):
    """One crashable process-like unit identified by ``node_id``.

    Hosted components register crash/restart listeners so the whole stack
    (ORB, Eternal mechanisms, Totem member) tears down and rebuilds
    coherently, and schedule deferred work through :meth:`call_after`,
    which silently drops callbacks that outlive the incarnation that
    scheduled them.
    """

    node_id: str
    scheduler: Scheduler

    @property
    @abc.abstractmethod
    def alive(self) -> bool: ...

    @property
    @abc.abstractmethod
    def incarnation(self) -> int:
        """Counts restarts; lets components detect stale callbacks."""

    @abc.abstractmethod
    def next_announce_epoch(self) -> int:
        """A per-host monotone counter for 'my volatile state is gone'
        announcements — bumped on stack rebuilds after a restart, never
        reset."""

    @abc.abstractmethod
    def check_alive(self) -> None:
        """Raise :class:`repro.errors.ProcessCrashed` if the host is down."""

    @abc.abstractmethod
    def crash(self) -> None: ...

    @abc.abstractmethod
    def restart(self) -> None: ...

    @abc.abstractmethod
    def on_crash(self, fn: Callable[[], None]) -> None: ...

    @abc.abstractmethod
    def on_restart(self, fn: Callable[[], None]) -> None: ...

    @abc.abstractmethod
    def call_after(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> TimerHandle:
        """Schedule ``fn`` after ``delay``; silently skipped if the host
        has crashed or restarted in the meantime."""


class Transport(abc.ABC):
    """A host's network attachment, routing incoming frames by payload class.

    Handlers survive nothing: a host restart rebuilds the protocol stack,
    and each new layer re-registers its types, displacing the dead one.
    Broadcast models the shared segment of the paper's testbed: every
    attached host receives the frame, *including the sender* — Totem
    relies on self-delivery of its own multicasts.
    """

    def __init__(self, process: Host) -> None:
        self.process = process
        self._handlers: Dict[Type, Handler] = {}

    @property
    def node_id(self) -> str:
        return self.process.node_id

    @property
    @abc.abstractmethod
    def mtu_payload(self) -> int:
        """Largest payload ``size_bytes`` a single frame may declare."""

    @abc.abstractmethod
    def unicast(
        self, dst: str, payload: Any, size_bytes: int, *, oob: bool = False,
    ) -> None:
        """Send ``payload`` to the host named ``dst`` only.

        ``oob=True`` requests the transport's out-of-band data lane — a
        point-to-point path that does not contend with the ordered
        broadcast stream (the recovery bulk lane uses it to move
        checkpoint pages).  Transports without a distinct lane simply
        ignore the flag: plain unicast is already off the ordering path.
        """

    @abc.abstractmethod
    def broadcast(self, payload: Any, size_bytes: int) -> None:
        """Send ``payload`` to every attached host, the sender included."""

    # Dispatch ----------------------------------------------------------

    def register(self, payload_type: Type, handler: Handler) -> None:
        """Route frames whose payload is an instance of ``payload_type``
        (exact class match first, then MRO walk) to ``handler``."""
        self._handlers[payload_type] = handler

    def unregister(self, payload_type: Type) -> None:
        self._handlers.pop(payload_type, None)

    def deliver(self, src: str, payload: Any) -> None:
        """Dispatch one incoming frame to its registered handler."""
        handler = self._handlers.get(type(payload))
        if handler is None:
            for base in type(payload).__mro__[1:]:
                handler = self._handlers.get(base)
                if handler is not None:
                    break
        if handler is not None:
            handler(src, payload)
