"""Crash/restart lifecycle shared by simulated and live hosts.

:class:`BaseHost` implements everything in :class:`repro.runtime.Host`
that does not depend on the substrate: liveness, the incarnation counter,
the announce-epoch counter, listener bookkeeping, and the
incarnation-guarded ``call_after``.  ``repro.simnet.process.Process`` and
``repro.live.node.LiveHost`` are thin subclasses.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.errors import ProcessCrashed
from repro.runtime.interfaces import Host, Scheduler, TimerHandle
from repro.runtime.trace import NULL_TRACER, Tracer


class BaseHost(Host):
    """One crashable host identified by ``node_id``."""

    def __init__(
        self,
        scheduler: Scheduler,
        node_id: str,
        *,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.scheduler = scheduler
        self.node_id = node_id
        self.tracer = tracer
        self._alive = True
        self._incarnation = 0
        self._announce_epoch = 0
        self._crash_listeners: List[Callable[[], None]] = []
        self._restart_listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def incarnation(self) -> int:
        """Counts restarts; lets components detect stale callbacks."""
        return self._incarnation

    def next_announce_epoch(self) -> int:
        """A per-host monotone counter for 'my volatile state is gone'
        announcements — bumped on stack rebuilds after a restart and on
        history loss in a partition merge, never reset."""
        self._announce_epoch += 1
        return self._announce_epoch

    def check_alive(self) -> None:
        """Raise :class:`ProcessCrashed` if the host is down."""
        if not self._alive:
            raise ProcessCrashed(f"process {self.node_id} is crashed")

    def crash(self) -> None:
        """Kill the host.  All hosted components are notified, volatile
        state is lost, and in-flight deliveries to this host are dropped
        by the substrate (it checks ``alive`` at delivery time)."""
        if not self._alive:
            return
        self._alive = False
        self.tracer.emit("process", "crash", node=self.node_id)
        for listener in list(self._crash_listeners):
            listener()

    def restart(self) -> None:
        """Re-launch the host with a fresh incarnation number."""
        if self._alive:
            return
        self._alive = True
        self._incarnation += 1
        self.tracer.emit("process", "restart", node=self.node_id,
                         incarnation=self._incarnation)
        for listener in list(self._restart_listeners):
            listener()

    # ------------------------------------------------------------------
    # Listener registration
    # ------------------------------------------------------------------

    def on_crash(self, fn: Callable[[], None]) -> None:
        self._crash_listeners.append(fn)

    def on_restart(self, fn: Callable[[], None]) -> None:
        self._restart_listeners.append(fn)

    # ------------------------------------------------------------------
    # Scheduling helpers that respect liveness
    # ------------------------------------------------------------------

    def call_after(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> TimerHandle:
        """Schedule ``fn`` after ``delay``; it is silently skipped if the
        host has crashed or restarted in the meantime."""
        incarnation = self._incarnation

        def guarded() -> None:
            if self._alive and self._incarnation == incarnation:
                fn(*args)

        return self.scheduler.call_after(delay, guarded)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._alive else "down"
        return (f"<{type(self).__name__} {self.node_id} {state} "
                f"inc={self._incarnation}>")
