"""Unit tests for the benchmark support layer."""

import pytest

from repro.bench.baseline import BaselinePair
from repro.bench.deployments import (
    build_client_server,
    make_weighted_kvstore_factory,
    measure_recovery,
)
from repro.bench.reporting import print_table
from repro.ftcorba.properties import ReplicationStyle


def test_baseline_pair_round_trips():
    pair = BaselinePair(make_weighted_kvstore_factory(10, 0.0005))
    pair.run(0.2)
    assert pair.client.completed > 100
    assert pair.client.mean_latency > 0.0005
    assert pair.server.servant.echo_count == pair.client.completed \
        or pair.server.servant.echo_count == pair.client.completed + 1


def test_baseline_latency_tracks_op_cost():
    fast = BaselinePair(make_weighted_kvstore_factory(10, 0.0002))
    slow = BaselinePair(make_weighted_kvstore_factory(10, 0.002))
    fast.run(0.2)
    slow.run(0.2)
    assert slow.client.mean_latency > fast.client.mean_latency


def test_weighted_factory_jitter_is_deterministic():
    factory = make_weighted_kvstore_factory(10, 0.001, jitter=0.2)
    a, b = factory(), factory()
    durations_a = []
    durations_b = []
    for _ in range(5):
        durations_a.append(a._operation_duration("echo"))
        a.echo(0)
        durations_b.append(b._operation_duration("echo"))
        b.echo(0)
    assert durations_a == durations_b          # replica determinism
    assert len(set(durations_a)) > 1           # actually jittered
    mean = sum(durations_a) / len(durations_a)
    assert 0.0008 < mean < 0.0012


def test_build_client_server_deploys_and_streams():
    deployment = build_client_server(server_replicas=2, state_size=50,
                                     warmup=0.2)
    assert deployment.driver.acked > 100
    for node in deployment.server_nodes:
        assert deployment.server_servant(node).echo_count > 100


def test_measure_recovery_returns_positive_time():
    deployment = build_client_server(server_replicas=2, state_size=50,
                                     warmup=0.1)
    recovery_time = measure_recovery(deployment, "s2")
    assert 0 < recovery_time < 1.0


def test_measure_recovery_times_out_when_unrecoverable():
    deployment = build_client_server(server_replicas=2, state_size=50,
                                     warmup=0.1)
    # kill BOTH server replicas: nobody holds the state, recovery stalls
    deployment.system.kill_node("s1")
    with pytest.raises(TimeoutError):
        measure_recovery(deployment, "s2", timeout=1.5)


def test_print_table_renders_all_cells(capsys):
    text = print_table("My Title", ["a", "bbb"],
                       [[1, 2.5], ["x", 3e-9]], paper_note="note")
    out = capsys.readouterr().out
    assert "My Title" in text and "My Title" in out
    assert "paper: note" in text
    assert "2.500" in text
    assert "3.000e-09" in text


def test_print_table_handles_empty_rows():
    text = print_table("Empty", ["col"], [])
    assert "Empty" in text


def test_deployment_styles():
    for style in (ReplicationStyle.WARM_PASSIVE,
                  ReplicationStyle.COLD_PASSIVE):
        deployment = build_client_server(style=style, server_replicas=2,
                                         state_size=50,
                                         checkpoint_interval=0.1,
                                         warmup=0.2)
        assert deployment.driver.acked > 50
