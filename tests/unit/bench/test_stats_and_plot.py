"""Unit tests for bench statistics and ASCII plotting."""

import pytest

from repro.bench.plot import ascii_plot
from repro.bench.stats import Summary, aggregate, summarize


def test_summary_moments():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.n == 3
    assert summary.mean == 2.0
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.stdev == pytest.approx(1.0)
    assert summary.ci95_halfwidth == pytest.approx(1.96 / 3 ** 0.5)


def test_summary_single_sample():
    summary = summarize([5.0])
    assert summary.stdev == 0.0
    assert summary.ci95_halfwidth == 0.0


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


def test_format_scales():
    summary = summarize([0.010, 0.012])
    text = summary.format(scale=1000, digits=1)
    assert text.startswith("11.0 ±")


def test_aggregate_runs_all_seeds():
    seen = []

    def measure(seed):
        seen.append(seed)
        return float(seed)

    summary = aggregate(measure, seeds=(3, 4, 5))
    assert seen == [3, 4, 5]
    assert summary.mean == 4.0


def test_aggregate_with_deterministic_simulation():
    """Same seed → same sample; different seeds may differ slightly."""
    from repro.bench.deployments import build_client_server, measure_recovery

    def measure(seed):
        deployment = build_client_server(server_replicas=2, state_size=200,
                                         warmup=0.1, seed=seed)
        return measure_recovery(deployment, "s2")

    a = aggregate(measure, seeds=(0, 0))
    assert a.samples[0] == a.samples[1]


def test_ascii_plot_renders_extremes():
    text = ascii_plot([1, 10, 100], [5.0, 10.0, 20.0],
                      x_label="size", y_label="ms", logx=True)
    assert "20" in text          # y max label
    assert "5" in text           # y min label
    assert "size" in text
    assert "(log x)" in text
    assert text.count("*") == 3


def test_ascii_plot_monotone_series_monotone_rows():
    xs = list(range(1, 11))
    ys = [float(x) for x in xs]
    text = ascii_plot(xs, ys, width=20, height=10)
    rows = [line.split("|", 1)[1] for line in text.splitlines()
            if "|" in line]
    cols = [row.index("*") for row in rows if "*" in row]
    assert cols == sorted(cols, reverse=True)


def test_ascii_plot_flat_series():
    text = ascii_plot([1, 2, 3], [7.0, 7.0, 7.0])
    assert "*" in text


def test_ascii_plot_validates_inputs():
    with pytest.raises(ValueError):
        ascii_plot([], [])
    with pytest.raises(ValueError):
        ascii_plot([1, 2], [1.0])
