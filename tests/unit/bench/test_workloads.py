"""Unit tests for workload schedules and the open-loop driver."""

import pytest

from repro.bench.workloads import (
    OpenLoopDriverServant,
    bursty_schedule,
    poisson_schedule,
    uniform_schedule,
)


def test_uniform_schedule_spacing():
    schedule = uniform_schedule(100, 0.1)
    assert len(schedule) == 10
    gaps = [b - a for a, b in zip(schedule, schedule[1:])]
    assert all(abs(g - 0.01) < 1e-12 for g in gaps)


def test_uniform_schedule_start_offset():
    schedule = uniform_schedule(10, 0.5, start=2.0)
    assert schedule[0] == 2.0
    assert all(t >= 2.0 for t in schedule)


def test_uniform_rejects_bad_rate():
    with pytest.raises(ValueError):
        uniform_schedule(0, 1.0)


def test_poisson_schedule_deterministic_per_seed():
    a = poisson_schedule(100, 1.0, seed=7)
    b = poisson_schedule(100, 1.0, seed=7)
    c = poisson_schedule(100, 1.0, seed=8)
    assert a == b
    assert a != c


def test_poisson_schedule_mean_rate():
    schedule = poisson_schedule(1000, 5.0, seed=1)
    assert 4000 < len(schedule) < 6000
    assert all(0 <= t < 5.0 for t in schedule)


def test_poisson_rejects_bad_rate():
    with pytest.raises(ValueError):
        poisson_schedule(-1, 1.0)


def test_bursty_schedule_groups_arrivals():
    schedule = bursty_schedule(100, 1.0, burst=10)
    assert len(schedule) == pytest.approx(100, abs=10)
    # the first ten arrive at the same instant
    assert len(set(schedule[:10])) == 1


def test_bursty_rejects_bad_args():
    with pytest.raises(ValueError):
        bursty_schedule(100, 1.0, burst=0)


def test_open_loop_driver_latency_stats():
    driver = OpenLoopDriverServant.__new__(OpenLoopDriverServant)
    driver.latencies = [0.001, 0.002, 0.010]
    driver.sent = 3
    driver.completed = 3
    assert driver.mean_latency == pytest.approx(0.013 / 3)
    assert driver.p99_latency == 0.010


def test_open_loop_driver_empty_stats_are_nan():
    driver = OpenLoopDriverServant.__new__(OpenLoopDriverServant)
    driver.latencies = []
    assert driver.mean_latency != driver.mean_latency   # NaN
    assert driver.p99_latency != driver.p99_latency


def test_open_loop_driver_in_live_system():
    from repro import EternalSystem, FTProperties
    from repro.apps.kvstore import make_kvstore_factory
    from repro.bench.workloads import make_open_loop_factory

    system = EternalSystem(["m", "c1", "s1"])
    system.register_factory("IDL:repro/KvStore:1.0",
                            make_kvstore_factory(10), nodes=["s1"])
    store = system.create_group("store", "IDL:repro/KvStore:1.0",
                                FTProperties(initial_replicas=1),
                                nodes=["s1"])
    system.run_for(0.05)
    schedule = uniform_schedule(200, 0.2)
    system.register_factory(
        "IDL:repro/OpenLoopDriver:1.0",
        make_open_loop_factory(store.iogr().stringify(), schedule),
        nodes=["c1"],
    )
    driver_group = system.create_group(
        "ol", "IDL:repro/OpenLoopDriver:1.0",
        FTProperties(initial_replicas=1), nodes=["c1"],
    )
    system.run_for(0.5)
    driver = driver_group.servant_on("c1")
    assert driver.sent == 40
    assert driver.completed == 40
    assert driver.mean_latency > 0
