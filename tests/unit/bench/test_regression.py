"""Unit tests for the bench regression recorder and comparator."""

import json

import pytest

from repro.bench.regression import (
    SCHEMA,
    BenchRecord,
    compare_bench_records,
    summarize,
)


def record(points, name="fig6", metric="recovery_ms"):
    return BenchRecord.from_points(name, metric, "ms", points)


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

def test_summarize_nearest_rank():
    stats = summarize([10.0, 20.0, 30.0, 40.0])
    assert stats["count"] == 4
    assert stats["median"] == 20.0
    assert stats["p95"] == 40.0
    assert stats["min"] == 10.0 and stats["max"] == 40.0


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


# ---------------------------------------------------------------------------
# Round-trip
# ---------------------------------------------------------------------------

def test_record_round_trips_through_json(tmp_path):
    original = record({"10": 12.0, "10000": 13.5, "350000": 44.0})
    path = tmp_path / "BENCH_fig6.json"
    original.write(str(path))
    loaded = BenchRecord.load(str(path))
    assert loaded.points == original.points
    assert loaded.summary == original.summary
    assert loaded.schema == SCHEMA
    assert loaded.machine == original.machine
    # and the comparator accepts its own output unchanged
    comparison = compare_bench_records(loaded, original)
    assert comparison.ok
    assert comparison.verdict.startswith("PASS:")


def test_record_json_is_stable_and_schema_tagged(tmp_path):
    rec = record({"10": 1.0})
    data = json.loads(rec.to_json())
    assert data["schema"] == SCHEMA
    assert data["points"] == {"10": 1.0}
    assert rec.to_json() == BenchRecord.from_json(rec.to_json()).to_json()


def test_unknown_schema_rejected():
    with pytest.raises(ValueError, match="schema"):
        BenchRecord.from_json(json.dumps({"schema": "something/else"}))


# ---------------------------------------------------------------------------
# Comparison semantics
# ---------------------------------------------------------------------------

def test_within_tolerance_passes():
    baseline = record({"a": 10.0, "b": 20.0})
    current = record({"a": 11.0, "b": 22.0})     # +10% < 20% tolerance
    assert compare_bench_records(baseline, current, tolerance=0.2).ok


def test_improvement_always_passes():
    baseline = record({"a": 10.0, "b": 20.0})
    current = record({"a": 1.0, "b": 2.0})
    comparison = compare_bench_records(baseline, current, tolerance=0.0)
    assert comparison.ok


def test_summary_regression_fails_with_named_statistic():
    baseline = record({"a": 10.0, "b": 20.0})
    current = record({"a": 10.0, "b": 30.0})     # p95 +50%
    comparison = compare_bench_records(baseline, current, tolerance=0.2)
    assert not comparison.ok
    assert comparison.verdict.startswith("FAIL:")
    assert any("p95" in r for r in comparison.regressions)


def test_single_point_drift_noted_but_does_not_gate():
    baseline = record({"a": 10.0, "b": 20.0, "c": 30.0, "d": 40.0})
    current = record({"a": 16.0, "b": 20.0, "c": 30.0, "d": 40.0})
    comparison = compare_bench_records(baseline, current, tolerance=0.2)
    assert comparison.ok                 # median/p95 unchanged
    assert "point a" in comparison.verdict


def test_mismatched_records_and_bad_tolerance_rejected():
    with pytest.raises(ValueError):
        compare_bench_records(record({"a": 1.0}),
                              record({"a": 1.0}, name="other"))
    with pytest.raises(ValueError):
        compare_bench_records(record({"a": 1.0}), record({"a": 1.0}),
                              tolerance=-0.1)
