"""Unit tests for per-connection ORB state — the §4.2 crux."""

import pytest

from repro.errors import ConnectionClosed
from repro.giop.messages import ReplyMessage, decode_message
from repro.giop.service_context import (
    VENDOR_HANDSHAKE_ID,
    VendorHandshakeContext,
    find_context,
)
from repro.orb.connection import (
    ClientConnection,
    ServerConnectionState,
    negotiate_token,
)
from repro.orb.objectkey import make_key, make_short_key

KEY = make_key("RootPOA", b"obj")


def handshake_reply(request_id, key=KEY):
    token = negotiate_token(key)
    ctx = VendorHandshakeContext(propose=False, object_key=key,
                                 short_key_token=token).to_service_context()
    return ReplyMessage(request_id=request_id, result=None,
                        service_contexts=(ctx,))


def test_request_ids_count_from_zero():
    conn = ClientConnection("h", 1)
    conn.build_request(KEY, "op", ())
    conn.build_request(KEY, "op", ())
    assert conn.next_request_id == 2
    assert conn.outstanding_request_ids == [0, 1]


def test_first_request_carries_handshake():
    conn = ClientConnection("h", 1)
    wire = conn.build_request(KEY, "op", ())
    decoded = decode_message(wire)
    contexts = list(decoded.service_contexts)
    assert find_context(contexts, VENDOR_HANDSHAKE_ID) is not None
    assert decoded.object_key == KEY


def test_post_handshake_requests_use_short_key():
    conn = ClientConnection("h", 1)
    conn.build_request(KEY, "op", ())
    assert conn.match_reply(handshake_reply(0)) is not None
    assert conn.handshake_done
    wire = conn.build_request(KEY, "op", ())
    decoded = decode_message(wire)
    assert decoded.object_key == make_short_key(negotiate_token(KEY))
    assert decoded.service_contexts == ()


def test_reply_mismatch_discarded():
    """Figure 4: replies whose request_ids do not match are discarded."""
    conn = ClientConnection("h", 1)
    conn.build_request(KEY, "op", ())
    assert conn.match_reply(ReplyMessage(request_id=350, result=None)) is None
    assert conn.replies_discarded == 1
    # the real reply still matches afterwards
    assert conn.match_reply(ReplyMessage(request_id=0, result=None))


def test_reply_matches_only_once():
    conn = ClientConnection("h", 1)
    conn.build_request(KEY, "op", ())
    assert conn.match_reply(ReplyMessage(request_id=0, result=None))
    assert conn.match_reply(ReplyMessage(request_id=0, result=None)) is None


def test_match_returns_operation_and_callback():
    conn = ClientConnection("h", 1)
    marker = lambda reply: None
    conn.build_request(KEY, "credit", (), callback=marker)
    operation, callback = conn.match_reply(ReplyMessage(request_id=0,
                                                        result=None))
    assert operation == "credit"
    assert callback is marker


def test_oneway_requests_not_outstanding():
    conn = ClientConnection("h", 1)
    conn.build_request(KEY, "op", (), response_expected=False)
    assert conn.outstanding_request_ids == []


def test_expect_reply_reregisters_interest():
    conn = ClientConnection("h", 1)
    conn.expect_reply(42, "op")
    assert conn.outstanding_operation(42) == "op"
    assert conn.match_reply(ReplyMessage(request_id=42, result=None))


def test_closed_connection_rejects_requests():
    conn = ClientConnection("h", 1)
    conn.close()
    with pytest.raises(ConnectionClosed):
        conn.build_request(KEY, "op", ())


def test_negotiate_token_deterministic():
    assert negotiate_token(KEY) == negotiate_token(KEY)
    assert negotiate_token(KEY) != negotiate_token(make_key("RootPOA", b"o2"))


def test_server_learns_handshake():
    conn = ClientConnection("h", 1)
    request = decode_message(conn.build_request(KEY, "op", ()))
    server = ServerConnectionState("c")
    reply_contexts = server.process_request_contexts(request)
    assert server.handshake_seen
    assert server.codeset is not None
    assert len(reply_contexts) == 1
    token = negotiate_token(KEY)
    assert server.short_keys[token] == KEY


def test_server_resolves_short_key_after_handshake():
    server = ServerConnectionState("c")
    conn = ClientConnection("h", 1)
    server.process_request_contexts(
        decode_message(conn.build_request(KEY, "op", ()))
    )
    short = make_short_key(negotiate_token(KEY))
    assert server.resolve_key(short) == KEY


def test_server_discards_unknown_short_key():
    """§4.2.2: a server ORB that missed the handshake cannot interpret the
    negotiated short key and discards the request."""
    server = ServerConnectionState("c")
    assert server.resolve_key(make_short_key(12345)) is None
    assert server.requests_discarded == 1


def test_server_passes_full_keys_through():
    server = ServerConnectionState("c")
    assert server.resolve_key(KEY) == KEY


def test_server_tracks_last_seen_request_id():
    server = ServerConnectionState("c")
    assert server.last_seen_request_id is None
