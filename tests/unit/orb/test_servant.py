"""Unit tests for servant dispatch and the @operation decorator."""

import pytest

from repro.errors import OrbError
from repro.orb.servant import (
    DEFAULT_OP_DURATION,
    CorbaUserException,
    Servant,
    operation,
)


class Sample(Servant):
    @operation
    def plain(self, x):
        return x + 1

    @operation(duration=0.5)
    def slow(self):
        return "slow"

    @operation(oneway=True)
    def fire(self):
        return None

    def not_an_operation(self):
        return "hidden"

    @operation
    def failing(self):
        raise CorbaUserException("bad", exception_id="IDL:Bad:1.0")


class Derived(Sample):
    def plain(self, x):       # override without re-decorating
        return x + 100


def test_dispatch_calls_method():
    assert Sample()._dispatch("plain", (1,)) == 2


def test_dispatch_unknown_operation_raises():
    with pytest.raises(OrbError):
        Sample()._dispatch("missing", ())


def test_undecorated_method_not_dispatchable():
    with pytest.raises(OrbError):
        Sample()._dispatch("not_an_operation", ())


def test_default_duration():
    assert Sample()._operation_duration("plain") == DEFAULT_OP_DURATION


def test_custom_duration():
    assert Sample()._operation_duration("slow") == 0.5


def test_oneway_marker():
    assert Sample().fire._corba_oneway is True
    assert Sample().plain._corba_oneway is False


def test_override_inherits_operation_marking():
    assert Derived()._dispatch("plain", (1,)) == 101


def test_override_inherits_duration():
    class SlowDerived(Sample):
        def slow(self):
            return "derived"
    assert SlowDerived()._operation_duration("slow") == 0.5


def test_user_exception_propagates():
    with pytest.raises(CorbaUserException) as info:
        Sample()._dispatch("failing", ())
    assert info.value.exception_id == "IDL:Bad:1.0"


def test_operations_introspection():
    ops = Sample().operations()
    assert set(ops) == {"plain", "slow", "fire", "failing"}
