"""Unit tests for object keys."""

import pytest

from repro.errors import ProtocolError
from repro.orb.objectkey import (
    is_full_key,
    is_short_key,
    make_key,
    make_short_key,
    parse_key,
    parse_short_key,
)


def test_full_key_roundtrip():
    key = make_key("RootPOA", b"oid-1")
    assert parse_key(key) == ("RootPOA", b"oid-1")


def test_full_key_with_empty_object_id():
    assert parse_key(make_key("P", b"")) == ("P", b"")


def test_full_key_unicode_poa_name():
    assert parse_key(make_key("pöa", b"x"))[0] == "pöa"


def test_short_key_roundtrip():
    assert parse_short_key(make_short_key(0xDEADBEEF)) == 0xDEADBEEF


def test_key_kind_predicates():
    full = make_key("P", b"x")
    short = make_short_key(1)
    assert is_full_key(full) and not is_short_key(full)
    assert is_short_key(short) and not is_full_key(short)
    assert not is_full_key(b"") and not is_short_key(b"")


def test_parse_key_rejects_short_key():
    with pytest.raises(ProtocolError):
        parse_key(make_short_key(1))


def test_parse_key_rejects_truncation():
    key = make_key("RootPOA", b"oid")
    with pytest.raises(ProtocolError):
        parse_key(key[:2])
    with pytest.raises(ProtocolError):
        parse_key(key[:5])


def test_parse_short_key_rejects_wrong_length():
    with pytest.raises(ProtocolError):
        parse_short_key(b"\x01\x00\x00")
    with pytest.raises(ProtocolError):
        parse_short_key(make_key("P", b"x"))


def test_distinct_objects_get_distinct_keys():
    assert make_key("P", b"a") != make_key("P", b"b")
    assert make_key("P", b"a") != make_key("Q", b"a")
