"""Unit tests for the POA."""

import pytest

from repro.errors import ObjectNotFound, OrbError
from repro.giop.messages import ReplyStatus, RequestMessage
from repro.orb.objectkey import make_key
from repro.orb.poa import POA
from repro.orb.servant import CorbaUserException, Servant, operation


class Echo(Servant):
    @operation
    def echo(self, x):
        return x

    @operation
    def boom(self):
        raise CorbaUserException("nope", exception_id="IDL:Nope:1.0")

    @operation
    def crash(self):
        raise RuntimeError("servant bug")

    @operation(oneway=True)
    def note(self, x):
        self.last = x


def make_request(key, op, args=(), response_expected=True):
    return RequestMessage(request_id=1, object_key=key, operation=op,
                          args=args, response_expected=response_expected)


def test_activate_returns_full_key():
    poa = POA("P")
    key = poa.activate_object(Echo())
    assert key[:1] == b"\x00"
    assert poa.servant_for_key(key) is not None


def test_activate_with_explicit_object_id():
    poa = POA("P")
    key = poa.activate_object(Echo(), object_id=b"myid")
    assert poa.servant_for_id(b"myid") is poa.servant_for_key(key)


def test_double_activation_of_same_id_rejected():
    poa = POA("P")
    poa.activate_object(Echo(), object_id=b"x")
    with pytest.raises(OrbError):
        poa.activate_object(Echo(), object_id=b"x")


def test_generated_ids_are_unique():
    poa = POA("P")
    assert poa.activate_object(Echo()) != poa.activate_object(Echo())


def test_deactivate_removes_servant():
    poa = POA("P")
    poa.activate_object(Echo(), object_id=b"x")
    poa.deactivate_object(b"x")
    with pytest.raises(ObjectNotFound):
        poa.servant_for_id(b"x")


def test_deactivate_unknown_raises():
    with pytest.raises(ObjectNotFound):
        POA("P").deactivate_object(b"x")


def test_servant_for_key_checks_poa_name():
    poa = POA("P")
    poa.activate_object(Echo(), object_id=b"x")
    wrong = make_key("OTHER", b"x")
    with pytest.raises(ObjectNotFound):
        poa.servant_for_key(wrong)


def test_dispatch_normal_reply():
    poa = POA("P")
    servant = Echo()
    key = poa.activate_object(servant)
    reply = poa.dispatch(make_request(key, "echo", (41,)), servant)
    assert reply.reply_status is ReplyStatus.NO_EXCEPTION
    assert reply.result == 41
    assert reply.request_id == 1


def test_dispatch_user_exception():
    poa = POA("P")
    servant = Echo()
    key = poa.activate_object(servant)
    reply = poa.dispatch(make_request(key, "boom"), servant)
    assert reply.reply_status is ReplyStatus.USER_EXCEPTION
    assert reply.exception_id == "IDL:Nope:1.0"


def test_dispatch_system_exception_for_servant_bug():
    poa = POA("P")
    servant = Echo()
    key = poa.activate_object(servant)
    reply = poa.dispatch(make_request(key, "crash"), servant)
    assert reply.reply_status is ReplyStatus.SYSTEM_EXCEPTION
    assert "RuntimeError" in reply.result


def test_dispatch_oneway_returns_none():
    poa = POA("P")
    servant = Echo()
    key = poa.activate_object(servant)
    request = make_request(key, "note", ("x",), response_expected=False)
    assert poa.dispatch(request, servant) is None
    assert servant.last == "x"


def test_oneway_swallows_exceptions():
    poa = POA("P")
    servant = Echo()
    key = poa.activate_object(servant)
    request = make_request(key, "crash", (), response_expected=False)
    assert poa.dispatch(request, servant) is None


def test_active_count():
    poa = POA("P")
    assert poa.active_count == 0
    poa.activate_object(Echo())
    assert poa.active_count == 1
