"""Unit tests for the ORB core."""

import pytest

from repro.errors import ObjectNotFound, OrbError, ProtocolError
from repro.giop.messages import (
    CloseConnectionMessage,
    ReplyStatus,
    encode_message,
)
from repro.orb.orb import Orb
from repro.orb.proxy import unwrap_reply
from repro.orb.servant import CorbaUserException, Servant, operation


class Counter(Servant):
    type_id = "IDL:Counter:1.0"

    def __init__(self):
        self.value = 0

    @operation
    def increment(self, n=1):
        self.value += n
        return self.value


class Pump:
    """Client+server ORB pair with a synchronous byte pump."""

    def __init__(self):
        self.server = Orb("server", host="grp")
        self.servant = Counter()
        self.ior = self.server.activate(self.servant)
        self.client = Orb("client")
        self.client.set_client_transport(self._transport)
        self.proxy = self.client.connect(self.ior)
        self.conn_id = "client->grp"

    def _transport(self, host, port, data):
        decoded = self.server.decode_request(self.conn_id, data)
        if decoded is None:
            return
        reply = self.server.execute_request(decoded)
        if reply is not None:
            self.client.handle_reply(host, port, reply)


def test_invoke_roundtrip():
    pump = Pump()
    results = []
    pump.proxy.invoke("increment", 5,
                      on_reply=lambda r: results.append(unwrap_reply(r)))
    assert results == [5]
    assert pump.servant.value == 5


def test_default_reply_handler_used_without_callback():
    pump = Pump()
    seen = []
    pump.client.set_default_reply_handler(
        lambda conn, op, reply: seen.append((conn, op, reply.result))
    )
    pump.proxy.invoke("increment", 2)
    assert seen == [("grp:2809", "increment", 2)]


def test_connect_reuses_connection_per_endpoint():
    pump = Pump()
    proxy2 = pump.client.connect(pump.ior)
    assert proxy2.connection is pump.proxy.connection


def test_missing_transport_raises():
    orb = Orb("lonely")
    proxy = orb.connect(Pump().ior)
    with pytest.raises(OrbError):
        proxy.invoke("increment", 1)


def test_unknown_object_key_raises():
    pump = Pump()
    from repro.orb.objectkey import make_key
    from repro.giop.messages import RequestMessage
    request = RequestMessage(request_id=0,
                             object_key=make_key("RootPOA", b"ghost"),
                             operation="increment", args=(1,))
    with pytest.raises(ObjectNotFound):
        pump.server.decode_request("c", encode_message(request))


def test_unknown_poa_raises():
    pump = Pump()
    from repro.orb.objectkey import make_key
    from repro.giop.messages import RequestMessage
    request = RequestMessage(request_id=0,
                             object_key=make_key("NoSuchPOA", b"x"),
                             operation="increment", args=(1,))
    with pytest.raises(ObjectNotFound):
        pump.server.decode_request("c", encode_message(request))


def test_decode_request_rejects_non_request():
    pump = Pump()
    with pytest.raises(ProtocolError):
        pump.server.decode_request("c",
                                   encode_message(CloseConnectionMessage()))


def test_handle_reply_rejects_non_reply():
    pump = Pump()
    from repro.giop.messages import RequestMessage
    wire = encode_message(RequestMessage(request_id=0, object_key=b"k",
                                         operation="x"))
    with pytest.raises(ProtocolError):
        pump.client.handle_reply("grp", 2809, wire)


def test_reply_for_unknown_connection_discarded():
    pump = Pump()
    from repro.giop.messages import ReplyMessage
    wire = encode_message(ReplyMessage(request_id=0, result=None))
    assert pump.client.handle_reply("other-host", 1, wire) is False


def test_duplicate_poa_name_rejected():
    orb = Orb("x")
    orb.create_poa("P")
    with pytest.raises(OrbError):
        orb.create_poa("P")


def test_poa_lookup():
    orb = Orb("x")
    poa = orb.create_poa("P")
    assert orb.poa("P") is poa
    with pytest.raises(OrbError):
        orb.poa("Q")


def test_user_exception_raised_via_unwrap():
    class Bad(Servant):
        @operation
        def fail(self):
            raise CorbaUserException("no", exception_id="IDL:No:1.0")

    server = Orb("s", host="g")
    ior = server.activate(Bad())
    client = Orb("c")

    def transport(host, port, data):
        reply = server.execute_request(server.decode_request("c->g", data))
        client.handle_reply(host, port, reply)

    client.set_client_transport(transport)
    caught = []

    def on_reply(reply):
        with pytest.raises(CorbaUserException):
            unwrap_reply(reply)
        caught.append(reply.exception_id)

    client.connect(ior).invoke("fail", on_reply=on_reply)
    assert caught == ["IDL:No:1.0"]


def test_oneway_produces_no_reply():
    pump = Pump()
    replies = []
    pump.client.set_default_reply_handler(
        lambda conn, op, reply: replies.append(reply)
    )
    pump.proxy.oneway("increment", 3)
    assert pump.servant.value == 3
    assert replies == []


def test_server_discard_counts():
    """A short-key request on a fresh server connection is discarded and
    counted (the §4.2.2 failure surface)."""
    pump = Pump()
    # complete the handshake on conn A
    pump.proxy.invoke("increment", 1)
    short_wire = pump.proxy.connection.build_request(
        pump.ior.object_key, "increment", (1,)
    )
    # replay the short-key request on a *different* server connection
    assert pump.server.decode_request("other-conn", short_wire) is None
    assert pump.server.requests_discarded == 1
