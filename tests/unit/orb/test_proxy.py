"""Unit tests for the client-side proxy helpers."""

import pytest

from repro.giop.messages import ReplyMessage, ReplyStatus
from repro.orb.orb import Orb
from repro.orb.proxy import unwrap_reply
from repro.orb.servant import CorbaUserException, Servant, operation


class Thing(Servant):
    type_id = "IDL:Thing:1.0"

    @operation
    def get(self):
        return {"x": 1}


def test_unwrap_returns_result():
    reply = ReplyMessage(request_id=0, result=[1, 2])
    assert unwrap_reply(reply) == [1, 2]


def test_unwrap_raises_user_exception():
    reply = ReplyMessage(request_id=0,
                         reply_status=ReplyStatus.USER_EXCEPTION,
                         exception_id="IDL:Oops:1.0", result="detail")
    with pytest.raises(CorbaUserException) as info:
        unwrap_reply(reply)
    assert info.value.exception_id == "IDL:Oops:1.0"
    assert "detail" in str(info.value)


def test_unwrap_raises_system_exception():
    reply = ReplyMessage(request_id=0,
                         reply_status=ReplyStatus.SYSTEM_EXCEPTION,
                         exception_id="IDL:omg.org/CORBA/UNKNOWN:1.0",
                         result="bug")
    with pytest.raises(CorbaUserException):
        unwrap_reply(reply)


def test_invoke_returns_assigned_request_id():
    server = Orb("s", host="grp")
    ior = server.activate(Thing())
    client = Orb("c")
    sent = []
    client.set_client_transport(lambda h, p, d: sent.append(d))
    proxy = client.connect(ior)
    assert proxy.invoke("get") == 0
    assert proxy.invoke("get") == 1
    assert len(sent) == 2


def test_oneway_assigns_no_outstanding():
    server = Orb("s", host="grp")
    ior = server.activate(Thing())
    client = Orb("c")
    client.set_client_transport(lambda h, p, d: None)
    proxy = client.connect(ior)
    proxy.oneway("get")
    assert proxy.connection.outstanding_request_ids == []


def test_proxy_exposes_ior_and_connection():
    server = Orb("s", host="grp")
    ior = server.activate(Thing())
    client = Orb("c")
    proxy = client.connect(ior)
    assert proxy.ior == ior
    assert proxy.connection is client.client_connection(ior.host, ior.port)
