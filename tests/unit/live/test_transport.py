"""Unit tests for the live runtime's frame codec and scheduler."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import NetworkError
from repro.live.clock import LiveScheduler
from repro.live.transport import (
    LIVE_MTU_PAYLOAD,
    decode_frame,
    encode_frame,
)
from repro.totem.messages import (DataMsg, FormMsg, JoinMsg, PackedDataMsg,
                                  PackedPayload, ProbeMsg, Token)
from repro.totem.wire import BulkFetch, BulkNack, BulkPage

FRAMES = [
    DataMsg(ring_id=3, seq=17, sender="n2", msg_id=("n2", 4),
            frag_index=0, frag_count=1, chunk=b"\x00" * 100),
    DataMsg(ring_id=1, seq=2, sender="n1", msg_id=("n1", 1),
            frag_index=2, frag_count=5, chunk=b"", retransmit=True),
    PackedDataMsg(ring_id=7, seq=90, sender="n3", payloads=(
        PackedPayload(("n3", 11), 0, 1, b"alpha"),
        PackedPayload(("n3", 12), 1, 3, b"beta" * 50),
    )),
    Token(ring_id=4, seq=1000, aru=990, aru_id="n2", rtr=[991, 995],
          rotations=62, ring_key=0xDEADBEEF, commit_phase=0),
    Token(ring_id=5, seq=0, aru=0, commit_phase=2, ring_key=1),
    JoinMsg(sender="n4", ring_id_seen=2, delivered_aru=40,
            held=frozenset({41, 42, 45}), fresh=False,
            view_members=("n1", "n4"), base_seen=30),
    JoinMsg(sender="n5", ring_id_seen=0, delivered_aru=0,
            held=frozenset(), fresh=True),
    FormMsg(ring_id=9, leader="n1", members=("n1", "n2", "n3"),
            flush_seq=55, base_seq=55, holders={54: "n2", 55: "n3"},
            fresh_members=("n3",)),
    ProbeMsg(ring_id=6, sender="n1", members=("n1", "n2")),
    # recovery bulk-lane frames ride the same codec as the Totem ring
    BulkFetch(session_id="rec:store:s1:e0:1", requester="s1",
              first_page=0, last_page=127),
    BulkPage(session_id="rec:store:s1:e0:1", sender="s2", index=5,
             crc=0xDEADBEEF, page=b"\xAB" * 1024),
    BulkNack(session_id="rec:store:s1:e0:1", sender="s2",
             reason="pending"),
]


@pytest.mark.parametrize("msg", FRAMES, ids=lambda m: type(m).__name__)
def test_frame_round_trip_every_totem_type(msg):
    src, decoded = decode_frame(encode_frame("n1", msg))
    assert src == "n1"
    assert decoded == msg
    assert type(decoded) is type(msg)


def test_non_totem_payload_rejected_at_encode():
    # The binary codec only speaks Totem frames — arbitrary objects (which
    # the original pickle codec would happily carry) are refused.
    with pytest.raises(NetworkError):
        encode_frame("n1", {"op": "echo", "args": (1, "two", b"three")})


def test_encoded_data_frame_is_compact():
    chunk = b"\xAB" * 1400
    msg = DataMsg(ring_id=1, seq=10, sender="n1", msg_id=("n1", 1),
                  frag_index=0, frag_count=1, chunk=chunk)
    encoded = encode_frame("n1", msg)
    # Codec overhead must stay a small constant over the declared frame
    # size — the loopback MTU headroom the module docstring promises.
    assert len(encoded) <= msg.size_bytes + 64


@pytest.mark.parametrize("data", [
    b"",                                  # empty
    b"xy",                                # shorter than the header
    b"BAD\x00\x00\x01a" + b"junk",        # wrong magic
    encode_frame("node", Token(1, 0, 0))[:8],   # truncated source id
    b"ET1\x00\x00\x02n1\x01\x02\x03",     # old pickle-codec magic
    b"ET2\x00\x00\x02n1\x63\x01",         # unknown wire version (0x63)
    b"ET2\x00\x00\x02n1\x01\x63",         # unknown frame tag (0x63)
    encode_frame("node", Token(1, 5, 5))[:-3],  # truncated body
])
def test_malformed_frames_raise_network_error(data):
    with pytest.raises(NetworkError):
        decode_frame(data)


def test_mtu_matches_simulated_ethernet():
    assert LIVE_MTU_PAYLOAD == 1500


# ---------------------------------------------------------------------------
# Syscall accounting (live.sys.* counters; see repro.obs.profiling)
# ---------------------------------------------------------------------------

@pytest.fixture()
def udp_pair():
    """Two UdpTransports on loopback sharing a tracer, driven directly
    (no event loop: `_on_readable`/`_send` are called by hand)."""
    from repro.live.clock import LiveScheduler
    from repro.live.transport import UdpTransport, bind_udp_socket
    from repro.runtime.host import BaseHost
    from repro.runtime.trace import Tracer

    loop = asyncio.new_event_loop()
    scheduler = LiveScheduler(loop)
    tracer = Tracer()
    socks = {"a": bind_udp_socket(), "b": bind_udp_socket()}
    peers = {n: s.getsockname() for n, s in socks.items()}
    transports = {
        n: UdpTransport(BaseHost(scheduler, n), socks[n], peers,
                        ("127.0.0.1", 1), tracer=tracer)
        for n in socks
    }
    yield transports, tracer
    for sock in socks.values():
        sock.close()
    loop.close()


def _drain(transport, tracer, *, expect: int):
    # Loopback delivery is asynchronous to the sender: poll until the
    # expected number of datagrams has been drained.
    import time as wallclock
    deadline = wallclock.monotonic() + 2.0
    while (tracer.count("live.sys.recv_datagrams") < expect
           and wallclock.monotonic() < deadline):
        transport._on_readable()
        wallclock.sleep(0.005)


def test_recv_syscall_counters_account_for_the_drain_loop(udp_pair):
    transports, tracer = udp_pair
    transports["b"].unicast("a", Token(ring_id=1, seq=5, aru=5), 50)
    assert tracer.count("live.sys.sendto") == 1
    _drain(transports["a"], tracer, expect=1)
    assert tracer.count("live.sys.recv_datagrams") == 1
    # Every wakeup ends in EAGAIN, so recvfrom = datagrams + eagain and
    # wakeups = eagain (each batch terminates exactly once).
    assert tracer.count("live.sys.recvfrom") == (
        tracer.count("live.sys.recv_datagrams")
        + tracer.count("live.sys.recv_eagain"))
    assert tracer.count("live.sys.recv_batches") == \
        tracer.count("live.sys.recv_eagain")
    assert tracer.count("live.codec.bytes_in") > 0


def test_empty_wakeup_counts_one_probe_and_no_datagrams(udp_pair):
    transports, tracer = udp_pair
    transports["a"]._on_readable()
    assert tracer.count("live.sys.recv_batches") == 1
    assert tracer.count("live.sys.recvfrom") == 1
    assert tracer.count("live.sys.recv_eagain") == 1
    assert tracer.count("live.sys.recv_datagrams") == 0


def test_bad_frame_still_counts_as_received_datagram(udp_pair):
    transports, tracer = udp_pair
    sock_b = transports["b"]._sock
    sock_b.sendto(b"not a frame", transports["a"].local_addr)
    _drain(transports["a"], tracer, expect=1)
    assert tracer.count("live.sys.recv_datagrams") == 1
    assert tracer.count("live.bad_frame") == 1
    assert tracer.count("live.codec.bytes_in") == 0


def test_send_eagain_counted_apart_from_generic_drops(udp_pair):
    transports, tracer = udp_pair
    transport = transports["a"]

    class FullSocket:
        def sendto(self, data, addr):
            raise BlockingIOError

    class DeadPeerSocket:
        def sendto(self, data, addr):
            raise OSError("ECONNREFUSED")

    transport._sock = FullSocket()
    transport.unicast("b", Token(ring_id=1, seq=1, aru=1), 50)
    assert tracer.count("live.sys.sendto") == 1
    assert tracer.count("live.sys.send_eagain") == 1
    assert tracer.count("live.send_drop") == 1

    transport._sock = DeadPeerSocket()
    transport.broadcast(Token(ring_id=1, seq=2, aru=2), 50)
    assert tracer.count("live.sys.sendto") == 2
    assert tracer.count("live.sys.send_eagain") == 1   # unchanged
    assert tracer.count("live.send_drop") == 2


def test_live_scheduler_clamps_past_deadlines():
    loop = asyncio.new_event_loop()
    try:
        scheduler = LiveScheduler(loop)
        fired = []
        # Both a negative delay and an already-passed absolute time must
        # run "as soon as possible" rather than raising — wall time moves
        # while code runs, unlike the simulator's clock.
        scheduler.call_after(-5.0, fired.append, "after")
        scheduler.call_at(scheduler.now - 1.0, fired.append, "at")
        loop.run_until_complete(asyncio.sleep(0.02))
        assert sorted(fired) == ["after", "at"]
    finally:
        loop.close()


def test_live_scheduler_cancel():
    loop = asyncio.new_event_loop()
    try:
        scheduler = LiveScheduler(loop)
        fired = []
        handle = scheduler.call_after(0.005, fired.append, "no")
        handle.cancel()
        loop.run_until_complete(asyncio.sleep(0.02))
        assert fired == []
    finally:
        loop.close()
