"""Unit tests for the live runtime's frame codec and scheduler."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import NetworkError
from repro.live.clock import LiveScheduler
from repro.live.transport import (
    LIVE_MTU_PAYLOAD,
    decode_frame,
    encode_frame,
)
from repro.totem.messages import (DataMsg, FormMsg, JoinMsg, PackedDataMsg,
                                  PackedPayload, ProbeMsg, Token)
from repro.totem.wire import BulkFetch, BulkNack, BulkPage

FRAMES = [
    DataMsg(ring_id=3, seq=17, sender="n2", msg_id=("n2", 4),
            frag_index=0, frag_count=1, chunk=b"\x00" * 100),
    DataMsg(ring_id=1, seq=2, sender="n1", msg_id=("n1", 1),
            frag_index=2, frag_count=5, chunk=b"", retransmit=True),
    PackedDataMsg(ring_id=7, seq=90, sender="n3", payloads=(
        PackedPayload(("n3", 11), 0, 1, b"alpha"),
        PackedPayload(("n3", 12), 1, 3, b"beta" * 50),
    )),
    Token(ring_id=4, seq=1000, aru=990, aru_id="n2", rtr=[991, 995],
          rotations=62, ring_key=0xDEADBEEF, commit_phase=0),
    Token(ring_id=5, seq=0, aru=0, commit_phase=2, ring_key=1),
    JoinMsg(sender="n4", ring_id_seen=2, delivered_aru=40,
            held=frozenset({41, 42, 45}), fresh=False,
            view_members=("n1", "n4"), base_seen=30),
    JoinMsg(sender="n5", ring_id_seen=0, delivered_aru=0,
            held=frozenset(), fresh=True),
    FormMsg(ring_id=9, leader="n1", members=("n1", "n2", "n3"),
            flush_seq=55, base_seq=55, holders={54: "n2", 55: "n3"},
            fresh_members=("n3",)),
    ProbeMsg(ring_id=6, sender="n1", members=("n1", "n2")),
    # recovery bulk-lane frames ride the same codec as the Totem ring
    BulkFetch(session_id="rec:store:s1:e0:1", requester="s1",
              first_page=0, last_page=127),
    BulkPage(session_id="rec:store:s1:e0:1", sender="s2", index=5,
             crc=0xDEADBEEF, page=b"\xAB" * 1024),
    BulkNack(session_id="rec:store:s1:e0:1", sender="s2",
             reason="pending"),
]


@pytest.mark.parametrize("msg", FRAMES, ids=lambda m: type(m).__name__)
def test_frame_round_trip_every_totem_type(msg):
    src, decoded = decode_frame(encode_frame("n1", msg))
    assert src == "n1"
    assert decoded == msg
    assert type(decoded) is type(msg)


def test_non_totem_payload_rejected_at_encode():
    # The binary codec only speaks Totem frames — arbitrary objects (which
    # the original pickle codec would happily carry) are refused.
    with pytest.raises(NetworkError):
        encode_frame("n1", {"op": "echo", "args": (1, "two", b"three")})


def test_encoded_data_frame_is_compact():
    chunk = b"\xAB" * 1400
    msg = DataMsg(ring_id=1, seq=10, sender="n1", msg_id=("n1", 1),
                  frag_index=0, frag_count=1, chunk=chunk)
    encoded = encode_frame("n1", msg)
    # Codec overhead must stay a small constant over the declared frame
    # size — the loopback MTU headroom the module docstring promises.
    assert len(encoded) <= msg.size_bytes + 64


@pytest.mark.parametrize("data", [
    b"",                                  # empty
    b"xy",                                # shorter than the header
    b"BAD\x00\x00\x01a" + b"junk",        # wrong magic
    encode_frame("node", Token(1, 0, 0))[:8],   # truncated source id
    b"ET1\x00\x00\x02n1\x01\x02\x03",     # old pickle-codec magic
    b"ET2\x00\x00\x02n1\x63\x01",         # unknown wire version (0x63)
    b"ET2\x00\x00\x02n1\x01\x63",         # unknown frame tag (0x63)
    encode_frame("node", Token(1, 5, 5))[:-3],  # truncated body
])
def test_malformed_frames_raise_network_error(data):
    with pytest.raises(NetworkError):
        decode_frame(data)


def test_mtu_matches_simulated_ethernet():
    assert LIVE_MTU_PAYLOAD == 1500


# ---------------------------------------------------------------------------
# Syscall accounting (live.sys.* counters; see repro.obs.profiling)
# ---------------------------------------------------------------------------

def _make_pair(force_portable=False):
    from repro.live.clock import LiveScheduler
    from repro.live.transport import UdpTransport, bind_udp_socket
    from repro.runtime.host import BaseHost
    from repro.runtime.trace import Tracer

    loop = asyncio.new_event_loop()
    scheduler = LiveScheduler(loop)
    tracer = Tracer()
    socks = {"a": bind_udp_socket(), "b": bind_udp_socket()}
    peers = {n: s.getsockname() for n, s in socks.items()}
    transports = {
        n: UdpTransport(BaseHost(scheduler, n), socks[n], peers,
                        ("127.0.0.1", 1), tracer=tracer)
        for n in socks
    }
    if force_portable:
        for transport in transports.values():
            transport._mmsg = None
    return loop, socks, transports, tracer


@pytest.fixture()
def udp_pair():
    """Two UdpTransports on loopback sharing a tracer, driven directly
    (no event loop: `_on_readable`/`_send` are called by hand), pinned
    to the portable (recvfrom/sendto) path so the syscall counters the
    tests assert on are deterministic."""
    loop, socks, transports, tracer = _make_pair(force_portable=True)
    yield transports, tracer
    for sock in socks.values():
        sock.close()
    loop.close()


@pytest.fixture()
def udp_pair_batched():
    """Same as ``udp_pair`` but on whatever path the platform provides
    (sendmmsg/recvmmsg when available)."""
    loop, socks, transports, tracer = _make_pair()
    yield transports, tracer
    for sock in socks.values():
        sock.close()
    loop.close()


def _drain(transport, tracer, *, expect: int):
    # Loopback delivery is asynchronous to the sender: poll until the
    # expected number of datagrams has been drained.
    import time as wallclock
    deadline = wallclock.monotonic() + 2.0
    while (tracer.count("live.sys.recv_datagrams") < expect
           and wallclock.monotonic() < deadline):
        transport._on_readable()
        wallclock.sleep(0.005)


def test_recv_syscall_counters_account_for_the_drain_loop(udp_pair):
    transports, tracer = udp_pair
    transports["b"].unicast("a", Token(ring_id=1, seq=5, aru=5), 50)
    # A token send outside a receive drain goes straight through (the
    # rotation's critical path never queues).
    assert tracer.count("live.sys.send_flushes") == 1
    assert tracer.count("live.sys.sendto") == 1
    _drain(transports["a"], tracer, expect=1)
    assert tracer.count("live.sys.recv_datagrams") == 1
    # Every wakeup ends in EAGAIN, so recvfrom = datagrams + eagain and
    # wakeups = eagain (each batch terminates exactly once).
    assert tracer.count("live.sys.recvfrom") == (
        tracer.count("live.sys.recv_datagrams")
        + tracer.count("live.sys.recv_eagain"))
    assert tracer.count("live.sys.recv_batches") == \
        tracer.count("live.sys.recv_eagain")
    assert tracer.count("live.codec.bytes_in") > 0


def test_recv_batch_record_is_sampled_one_in_32(udp_pair):
    transports, tracer = udp_pair
    receiver = transports["a"]
    for _ in range(64):
        receiver._on_readable()     # empty wakeups still tick the sampler
    assert tracer.count("live.sys.recv_batches") == 64
    # The histogram record fires on every 32nd wakeup only; the exact
    # counters above carry the full accounting.
    assert tracer.count("live.recv_batch") == 2


def test_mmsg_path_batches_syscalls():
    from repro.live import _mmsg
    if not _mmsg.available():
        pytest.skip("sendmmsg/recvmmsg unavailable")
    loop, socks, transports, tracer = _make_pair()
    try:
        assert transports["a"].batching
        sender = transports["b"]
        # Simulate a deep burst issued inside a receive drain: the
        # frames queue and flush once, in a single sendmmsg syscall
        # (a flush shallower than _MMSG_SEND_MIN uses a sendto loop).
        sender._in_drain = True
        for seq in range(20):
            sender.unicast("a", Token(ring_id=1, seq=seq, aru=seq), 50)
        assert tracer.count("live.sys.send_flushes") == 0   # queued
        sender._in_drain = False
        sender._flush_sends()
        assert tracer.count("live.sys.send_flushes") == 1
        assert tracer.count("live.sys.sendmmsg") == 1
        assert tracer.count("live.sys.sendto") == 0
        _drain(transports["a"], tracer, expect=20)
        assert tracer.count("live.sys.recv_datagrams") == 20
        # Hybrid drain: the first few datagrams of a wakeup use the
        # C-speed recvfrom_into, then recvmmsg moves the deep remainder.
        assert tracer.count("live.sys.recvmmsg") >= 1
        assert tracer.count("live.sys.recvfrom") >= 2
    finally:
        for sock in socks.values():
            sock.close()
        loop.close()


def test_sends_during_a_drain_coalesce_into_one_flush():
    """End-to-end: replies a delivery handler issues while the wakeup's
    drain loop is running queue up and flush once at the end of the
    wakeup; sends outside any drain go straight out."""
    from repro.live import _mmsg
    loop, socks, transports, tracer = _make_pair()
    try:
        a, b = transports["a"], transports["b"]

        def reply_three(src, payload):
            for seq in range(3):
                a.unicast("b", Token(ring_id=2, seq=seq, aru=seq), 50)

        a.deliver = reply_three
        b.unicast("a", Token(ring_id=1, seq=0, aru=0), 50)
        # Outside a drain the frame goes straight out: one flush, now.
        assert tracer.count("live.sys.send_flushes") == 1
        _drain(a, tracer, expect=1)
        # The three replies issued mid-drain coalesced into one flush
        # (shallow, so it went out as a sendto loop, not sendmmsg).
        assert tracer.count("live.sys.send_flushes") == 2
        assert tracer.count("live.sys.sendmmsg") == 0
        assert tracer.count("live.sys.sendto") == 4     # 1 direct + 3 flush
    finally:
        for sock in socks.values():
            sock.close()
        loop.close()


def test_out_of_drain_data_sends_coalesce_per_loop_pass():
    """Ordinary frames sent outside any drain (timer-callback bursts,
    e.g. the container's reply completions) queue behind a flush
    scheduled for the next event-loop pass — one flush per iteration —
    while token sends skip the queue entirely."""
    loop, socks, transports, tracer = _make_pair(force_portable=True)
    try:
        sender = transports["b"]
        sender._loop = loop     # open() would do this; no reader needed
        for seq in range(3):
            sender.unicast("a", DataMsg(
                ring_id=1, seq=seq, sender="b", msg_id=("b", seq),
                frag_index=0, frag_count=1, chunk=b"x"), 200)
        # Nothing on the wire yet: the flush awaits the next loop pass.
        assert tracer.count("live.sys.sendto") == 0
        assert tracer.count("live.sys.send_flushes") == 0
        loop.run_until_complete(asyncio.sleep(0))
        assert tracer.count("live.sys.send_flushes") == 1
        assert tracer.count("live.sys.sendto") == 3
        # A token forward bypasses the queue: sent immediately.
        sender.unicast("a", Token(ring_id=1, seq=9, aru=9), 50)
        assert tracer.count("live.sys.sendto") == 4
        assert tracer.count("live.sys.send_flushes") == 2
    finally:
        for sock in socks.values():
            sock.close()
        loop.close()


def test_empty_wakeup_counts_one_probe_and_no_datagrams(udp_pair):
    transports, tracer = udp_pair
    transports["a"]._on_readable()
    assert tracer.count("live.sys.recv_batches") == 1
    assert tracer.count("live.sys.recvfrom") == 1
    assert tracer.count("live.sys.recv_eagain") == 1
    assert tracer.count("live.sys.recv_datagrams") == 0


def test_bad_frame_still_counts_as_received_datagram(udp_pair):
    transports, tracer = udp_pair
    sock_b = transports["b"]._sock
    sock_b.sendto(b"not a frame", transports["a"].local_addr)
    _drain(transports["a"], tracer, expect=1)
    assert tracer.count("live.sys.recv_datagrams") == 1
    assert tracer.count("live.bad_frame") == 1
    assert tracer.count("live.codec.bytes_in") == 0


def test_malformed_datagrams_do_not_tear_down_the_transport(udp_pair):
    """A fuzzing peer (or bit-rot on the wire) must cost exactly one
    dropped frame per bad datagram: the reader stays registered and the
    next well-formed frame still delivers."""
    import os as os_mod

    transports, tracer = udp_pair
    a = transports["a"]
    delivered = []
    a.deliver = lambda src, payload: delivered.append((src, payload))
    raw = transports["b"]._sock
    good = encode_frame("b", Token(ring_id=1, seq=9, aru=9))
    hostile = [
        b"",                                    # zero-length datagram
        b"xy",                                  # shorter than the header
        b"ET1\x00\x00\x02n1\x01\x02\x03",       # old pickle-codec magic
        b"XT2\x00" + good[4:],                  # bit-flipped magic
        good[:-3],                              # truncated body
        b"ET2\x00\x00\x02n1\x63\x01",           # unknown wire version
        b"ET2\x00\x00\x02n1\x01\x63",           # unknown frame tag
        os_mod.urandom(48),                     # junk
    ]
    for frame in hostile:
        raw.sendto(frame, a.local_addr)
    raw.sendto(good, a.local_addr)
    _drain(a, tracer, expect=len(hostile) + 1)
    assert tracer.count("live.sys.recv_datagrams") == len(hostile) + 1
    assert tracer.count("live.bad_frame") == len(hostile)
    assert delivered == [("b", Token(ring_id=1, seq=9, aru=9))]


def test_repro_no_mmsg_forces_portable_path(monkeypatch):
    from repro.live import _mmsg

    monkeypatch.setenv("REPRO_NO_MMSG", "1")
    assert not _mmsg.available()
    assert _mmsg.new_batch() is None
    loop, socks, transports, tracer = _make_pair()
    try:
        assert not transports["a"].batching
        transports["b"].unicast("a", Token(ring_id=1, seq=5, aru=5), 50)
        _drain(transports["a"], tracer, expect=1)
        assert tracer.count("live.sys.recv_datagrams") == 1
        assert tracer.count("live.sys.recvmmsg") == 0
        assert tracer.count("live.sys.sendmmsg") == 0
        assert tracer.count("live.sys.sendto") == 1
    finally:
        for sock in socks.values():
            sock.close()
        loop.close()


def test_send_eagain_counted_apart_from_generic_drops(udp_pair):
    import errno as errno_mod

    transports, tracer = udp_pair
    transport = transports["a"]

    class FullSocket:
        def sendto(self, data, addr):
            raise BlockingIOError

    class DeadPeerSocket:
        def sendto(self, data, addr):
            raise OSError(errno_mod.ECONNREFUSED, "connection refused")

    class BrokenSocket:
        def sendto(self, data, addr):
            raise OSError(errno_mod.EPERM, "operation not permitted")

    transport._sock = FullSocket()
    transport.unicast("b", Token(ring_id=1, seq=1, aru=1), 50)
    assert tracer.count("live.sys.sendto") == 1
    assert tracer.count("live.sys.send_eagain") == 1
    assert tracer.count("live.send_drop") == 1

    # Dead-peer errnos (kill-test noise) are classified apart from
    # generic send drops.
    transport._sock = DeadPeerSocket()
    transport.broadcast(Token(ring_id=1, seq=2, aru=2), 50)
    assert tracer.count("live.sys.sendto") == 2
    assert tracer.count("live.sys.send_dead_peer") == 1
    assert tracer.count("live.send_dead_peer") == 1
    assert tracer.count("live.sys.send_eagain") == 1   # unchanged
    assert tracer.count("live.send_drop") == 1          # unchanged

    transport._sock = BrokenSocket()
    transport.broadcast(Token(ring_id=1, seq=3, aru=3), 50)
    assert tracer.count("live.send_drop") == 2
    assert tracer.count("live.sys.send_dead_peer") == 1  # unchanged


def test_mmsg_send_result_classified_into_counters(udp_pair_batched):
    """The batched-send outcome maps onto the same counter taxonomy the
    portable path uses: EAGAIN vs dead-peer vs generic drops."""
    from repro.live._mmsg import SendResult

    transports, tracer = udp_pair_batched
    transport = transports["a"]

    class FakeBatch:
        def send(self, fd, items):
            return SendResult(sent=len(items) - 4, eagain=2, dead_peer=1,
                              other=1, syscalls=3)

    transport._mmsg = FakeBatch()
    # Queue a deep mid-drain burst so the flush takes the batched path
    # (a flush shallower than _MMSG_SEND_MIN uses a sendto loop).
    transport._in_drain = True
    for seq in range(16):
        transport.unicast("b", Token(ring_id=1, seq=seq, aru=seq), 50)
    transport._in_drain = False
    transport._flush_sends()
    assert tracer.count("live.sys.sendmmsg") == 3
    assert tracer.count("live.sys.send_eagain") == 2
    assert tracer.count("live.sys.send_dead_peer") == 1
    assert tracer.count("live.send_dead_peer") == 1
    assert tracer.count("live.send_drop") == 2 + 1


def test_live_scheduler_clamps_past_deadlines():
    loop = asyncio.new_event_loop()
    try:
        scheduler = LiveScheduler(loop)
        fired = []
        # Both a negative delay and an already-passed absolute time must
        # run "as soon as possible" rather than raising — wall time moves
        # while code runs, unlike the simulator's clock.
        scheduler.call_after(-5.0, fired.append, "after")
        scheduler.call_at(scheduler.now - 1.0, fired.append, "at")
        loop.run_until_complete(asyncio.sleep(0.02))
        assert sorted(fired) == ["after", "at"]
    finally:
        loop.close()


def test_live_scheduler_cancel():
    loop = asyncio.new_event_loop()
    try:
        scheduler = LiveScheduler(loop)
        fired = []
        handle = scheduler.call_after(0.005, fired.append, "no")
        handle.cancel()
        loop.run_until_complete(asyncio.sleep(0.02))
        assert fired == []
    finally:
        loop.close()
