"""Unit tests for the live runtime's frame codec and scheduler."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import NetworkError
from repro.live.clock import LiveScheduler
from repro.live.transport import (
    LIVE_MTU_PAYLOAD,
    decode_frame,
    encode_frame,
)
from repro.totem.messages import DataMsg


def test_frame_round_trip():
    payload = {"op": "echo", "args": (1, "two", b"three")}
    src, decoded = decode_frame(encode_frame("n1", payload))
    assert src == "n1"
    assert decoded == payload


def test_frame_round_trip_totem_message():
    msg = DataMsg(ring_id=3, seq=17, sender="n2", msg_id=("n2", 4),
                  frag_index=0, frag_count=1, chunk=b"\x00" * 100)
    src, decoded = decode_frame(encode_frame("n2", msg))
    assert src == "n2"
    assert decoded == msg


@pytest.mark.parametrize("data", [
    b"",                                  # empty
    b"xy",                                # shorter than the header
    b"BAD\x00\x00\x01a" + b"junk",        # wrong magic
    encode_frame("node", {})[:8],         # truncated source id
    b"ET1\x00\x00\x02n1\x01\x02\x03",     # unpicklable payload
])
def test_malformed_frames_raise_network_error(data):
    with pytest.raises(NetworkError):
        decode_frame(data)


def test_mtu_matches_simulated_ethernet():
    assert LIVE_MTU_PAYLOAD == 1500


def test_live_scheduler_clamps_past_deadlines():
    loop = asyncio.new_event_loop()
    try:
        scheduler = LiveScheduler(loop)
        fired = []
        # Both a negative delay and an already-passed absolute time must
        # run "as soon as possible" rather than raising — wall time moves
        # while code runs, unlike the simulator's clock.
        scheduler.call_after(-5.0, fired.append, "after")
        scheduler.call_at(scheduler.now - 1.0, fired.append, "at")
        loop.run_until_complete(asyncio.sleep(0.02))
        assert sorted(fired) == ["after", "at"]
    finally:
        loop.close()


def test_live_scheduler_cancel():
    loop = asyncio.new_event_loop()
    try:
        scheduler = LiveScheduler(loop)
        fired = []
        handle = scheduler.call_after(0.005, fired.append, "no")
        handle.cancel()
        loop.run_until_complete(asyncio.sleep(0.02))
        assert fired == []
    finally:
        loop.close()
