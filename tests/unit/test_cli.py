"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_version_command(capsys):
    assert main(["version"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out and "DSN 2001" in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "demo" in capsys.readouterr().out


def test_demo_runs_and_reports_consistency(capsys):
    assert main(["demo", "--state-size", "1000"]) == 0
    out = capsys.readouterr().out
    assert "replica reinstated" in out
    assert "equal=True" in out


def test_fig6_quick(capsys):
    assert main(["fig6", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "recovery_ms" in out
    assert "350000" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
