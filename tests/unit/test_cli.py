"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_version_command(capsys):
    assert main(["version"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out and "DSN 2001" in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "demo" in capsys.readouterr().out


def test_demo_runs_and_reports_consistency(capsys):
    assert main(["demo", "--state-size", "1000"]) == 0
    out = capsys.readouterr().out
    assert "replica reinstated" in out
    assert "equal=True" in out


def test_fig6_quick(capsys):
    assert main(["fig6", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "recovery_ms" in out
    assert "350000" in out


def test_fig6_record_and_compare_round_trip(tmp_path, capsys):
    from repro.bench.regression import SCHEMA, BenchRecord

    path = tmp_path / "BENCH_fig6.json"
    assert main(["fig6", "--quick", "--record", str(path)]) == 0
    capsys.readouterr()
    record = BenchRecord.load(str(path))
    assert record.schema == SCHEMA
    assert record.name == "fig6"
    assert "350000" in record.points
    # the simulation is deterministic: a re-run matches its own baseline
    assert main(["fig6", "--quick", "--compare", str(path)]) == 0
    assert "PASS:" in capsys.readouterr().out


def test_fig6_compare_fails_on_regression(tmp_path, capsys):
    from repro.bench.regression import BenchRecord

    path = tmp_path / "BENCH_fig6.json"
    assert main(["fig6", "--quick", "--record", str(path)]) == 0
    capsys.readouterr()
    record = BenchRecord.load(str(path))
    # shrink the baseline: the real run now exceeds any tolerance
    tightened = BenchRecord.from_points(
        record.name, record.metric, record.unit,
        {k: v / 10 for k, v in record.points.items()})
    tightened.write(str(path))
    assert main(["fig6", "--quick", "--compare", str(path)]) == 1
    assert "FAIL:" in capsys.readouterr().out


def test_health_command_emits_parseable_exposition(capsys):
    from repro.obs.health import parse_exposition

    assert main(["health", "--state-size", "1000"]) == 0
    out = capsys.readouterr().out
    parsed = parse_exposition(out)
    names = {name for name, _, _ in parsed}
    assert "eternal_node_alive" in names
    assert "eternal_replica_operational" in names
    assert "eternal_audit_ok" in names
    values = {name: value for name, labels, value in parsed if not labels}
    assert values["eternal_audit_ok"] == 1.0


def test_demo_health_flag_prints_snapshot(capsys):
    assert main(["demo", "--state-size", "1000", "--health"]) == 0
    out = capsys.readouterr().out
    assert "health snapshot:" in out
    assert "eternal_audit_ok 1" in out
    assert "audit: OK" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_fig6_compare_missing_baseline_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope" / "BENCH_fig6.json"
    assert main(["fig6", "--quick", "--compare", str(missing)]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def test_fig6_compare_corrupt_baseline_exits_2(tmp_path, capsys):
    path = tmp_path / "BENCH_fig6.json"
    path.write_text("{not json")
    assert main(["fig6", "--quick", "--compare", str(path)]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def test_live_rejects_too_few_nodes(capsys):
    assert main(["live", "--nodes", "2"]) == 1
    assert "--nodes" in capsys.readouterr().err


def test_live_rejects_kill_after_beyond_duration(capsys):
    assert main(["live", "--kill-after", "9", "--duration", "5"]) == 1
    assert "--kill-after" in capsys.readouterr().err
