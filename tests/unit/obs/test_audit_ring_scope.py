"""Auditor ring scoping: every shadow structure is keyed by the shard.

In a sharded deployment each ring is an independent ordering domain, so
invariant evidence is only comparable *within* a ring: two rings will
legitimately produce different order digests for the same (cfg, seq)
coordinates, re-use the same request ids, and run recoveries with
colliding transfer ids.  These tests feed the auditor synthetic
multi-ring streams (via ``ScopedTracer`` views, exactly how sharded
sub-systems emit) and assert that cross-ring coincidences never produce
findings — while a genuine divergence inside one ring is still caught
and names that ring.
"""

from repro.obs.audit import (
    DUPLICATE_DELIVERY,
    ORDER_DIGEST,
    STATE_DIGEST,
    ConsistencyAuditor,
    state_digest,
)
from repro.simnet.trace import Tracer


def make_sharded_stream():
    """One shared tracer + auditor, with per-ring scoped views — the
    wiring ShardedEternalSystem gives each sub-system."""
    tracer = Tracer(keep_records=True)
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    auditor = ConsistencyAuditor().bind(tracer)
    ring_a = tracer.scoped(ring="rA")
    ring_b = tracer.scoped(ring="rB")
    return ring_a, ring_b, auditor


# ---------------------------------------------------------------------------
# order-digest
# ---------------------------------------------------------------------------

def test_same_order_coordinates_in_different_rings_never_compared():
    """(cfg, base, seq) collide across rings by construction — every
    ring starts its sequence numbers from the same place."""
    ring_a, ring_b, auditor = make_sharded_stream()
    ring_a.emit("audit", "order_digest", node="rA.s1", cfg="7:abcd1234",
                base=0, seq=32, digest="11111111")
    ring_b.emit("audit", "order_digest", node="rB.s1", cfg="7:abcd1234",
                base=0, seq=32, digest="22222222")
    assert auditor.finish() == []


def test_divergence_inside_one_ring_is_caught_and_names_the_ring():
    ring_a, ring_b, auditor = make_sharded_stream()
    # rB agrees with itself at the same coordinates — must stay clean.
    for node in ("rB.s1", "rB.s2"):
        ring_b.emit("audit", "order_digest", node=node, cfg="7:abcd1234",
                    base=0, seq=32, digest="feedface")
    ring_a.emit("audit", "order_digest", node="rA.s1", cfg="7:abcd1234",
                base=0, seq=32, digest="11111111")
    ring_a.emit("audit", "order_digest", node="rA.s2", cfg="7:abcd1234",
                base=0, seq=32, digest="deadbeef")
    (finding,) = auditor.findings
    assert finding.invariant == ORDER_DIGEST
    assert finding.ring == "rA"
    assert finding.node == "rA.s2"


def test_finding_in_one_ring_does_not_poison_the_other():
    """After a finding in rA, rB's shadow state must be untouched: its
    own agreeing digests at the same coordinates still pass."""
    ring_a, ring_b, auditor = make_sharded_stream()
    ring_a.emit("audit", "order_digest", node="rA.s1", cfg="7:abcd1234",
                base=0, seq=32, digest="11111111")
    ring_a.emit("audit", "order_digest", node="rA.s2", cfg="7:abcd1234",
                base=0, seq=32, digest="diverged")
    assert len(auditor.findings) == 1
    for node in ("rB.s1", "rB.s2"):
        ring_b.emit("audit", "order_digest", node=node, cfg="7:abcd1234",
                    base=0, seq=32, digest="33333333")
    assert len(auditor.findings) == 1        # still only rA's
    assert all(f.ring == "rA" for f in auditor.findings)


# ---------------------------------------------------------------------------
# state-digest
# ---------------------------------------------------------------------------

def test_colliding_transfer_ids_across_rings_never_compared():
    ring_a, ring_b, auditor = make_sharded_stream()
    ring_a.emit("audit", "state_digest", node="rA.s1", group="store",
                transfer="rec:store:x:e0:1", role="responder",
                digest=state_digest(b"ring A state"))
    ring_b.emit("audit", "state_digest", node="rB.s1", group="store",
                transfer="rec:store:x:e0:1", role="responder",
                digest=state_digest(b"ring B state"))
    assert auditor.finish() == []


def test_state_divergence_names_the_ring():
    ring_a, _, auditor = make_sharded_stream()
    ring_a.emit("audit", "state_digest", node="rA.s1", group="store",
                transfer="rec:store:x:e0:1", role="responder",
                digest=state_digest(b"good"))
    ring_a.emit("audit", "state_digest", node="rA.s2", group="store",
                transfer="rec:store:x:e0:1", role="responder",
                digest=state_digest(b"bad"))
    (finding,) = auditor.findings
    assert finding.invariant == STATE_DIGEST
    assert finding.ring == "rA"
    assert "ring=rA" in str(finding)


# ---------------------------------------------------------------------------
# duplicate-delivery
# ---------------------------------------------------------------------------

def test_request_id_reuse_across_rings_is_not_a_duplicate():
    """Bridged traffic aside, connections in different rings allocate
    request ids independently — identical (conn, request_id, kind)
    delivered once per ring is normal operation."""
    ring_a, ring_b, auditor = make_sharded_stream()
    for view, node in ((ring_a, "rA.s1"), (ring_b, "rB.s1")):
        view.emit("replication", "delivered", node=node, group="store",
                  conn="drv->store", request_id=7, kind="REQUEST")
    assert auditor.finish() == []


def test_double_delivery_inside_a_ring_is_still_caught():
    ring_a, _, auditor = make_sharded_stream()
    for _ in range(2):
        ring_a.emit("replication", "delivered", node="rA.s1", group="store",
                    conn="drv->store", request_id=7, kind="REQUEST")
    (finding,) = auditor.findings
    assert finding.invariant == DUPLICATE_DELIVERY
    assert finding.ring == "rA"
