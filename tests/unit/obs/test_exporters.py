"""Unit tests for the JSONL and Chrome trace_event exporters."""

import io
import json

from repro.obs.exporters import (
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
)
from repro.obs.spans import SpanEmitter
from repro.simnet.trace import Tracer


def traced_run():
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    spans = SpanEmitter(tracer, node_id="s2")
    tracer.emit("fault", "crash", node="s2", group="store")
    root = spans.start("recovery.total", span_id="t1", node="s2",
                       group="store")
    clock["now"] = 0.001
    child = spans.start("recovery.capture", span_id="t1/cap", parent=root,
                        node="s1", group="store", payload=b"\x00\x01")
    clock["now"] = 0.002
    spans.end(child)
    clock["now"] = 0.005
    spans.end(root)
    spans.start("rpc.roundtrip", span_id="rpc:1", node="c1", group="drv")
    return tracer


def test_export_jsonl_writes_one_line_per_record():
    tracer = traced_run()
    buffer = io.StringIO()
    count = export_jsonl(tracer.records, buffer)
    lines = buffer.getvalue().splitlines()
    assert count == len(lines) == len(tracer.records)
    first = json.loads(lines[0])
    assert first["category"] == "fault" and first["event"] == "crash"
    # bytes payloads are summarized, not serialized
    start = json.loads(lines[2])
    assert start["fields"]["payload"] == "<2 bytes>"


def test_chrome_trace_complete_and_unfinished_spans():
    events = chrome_trace_events(traced_run().records)
    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    assert set(complete) == {"recovery.total", "recovery.capture"}
    assert complete["recovery.total"]["dur"] == 5000.0       # µs
    assert complete["recovery.capture"]["ts"] == 1000.0
    assert complete["recovery.capture"]["args"]["parent_id"] == "t1"
    begins = [e for e in events if e["ph"] == "B"]
    assert [e["name"] for e in begins] == ["rpc.roundtrip"]


def test_chrome_trace_lanes_and_instants():
    events = chrome_trace_events(traced_run().records)
    instants = [e for e in events if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["fault.crash"]
    assert instants[0]["pid"] == "store" and instants[0]["tid"] == "s2"
    lane_names = {(e["pid"], e.get("tid"), e["args"]["name"])
                  for e in events if e["ph"] == "M"}
    assert ("store", None, "group store") in lane_names
    assert ("store", "s1", "node s1") in lane_names


def test_chrome_trace_instants_can_be_excluded():
    events = chrome_trace_events(traced_run().records,
                                 include_instants=False)
    assert not any(e["ph"] == "i" for e in events)


def test_export_chrome_trace_writes_valid_json(tmp_path):
    tracer = traced_run()
    path = tmp_path / "trace.json"
    count = export_chrome_trace(tracer.records, str(path))
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    non_meta = [e for e in data["traceEvents"] if e["ph"] != "M"]
    assert count == len(non_meta) == 4       # 2 X + 1 B + 1 instant
