"""Unit tests for the JSONL and Chrome trace_event exporters."""

import io
import json

from repro.obs.exporters import (
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
)
from repro.obs.spans import SpanEmitter
from repro.simnet.trace import Tracer


def traced_run():
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    spans = SpanEmitter(tracer, node_id="s2")
    tracer.emit("fault", "crash", node="s2", group="store")
    root = spans.start("recovery.total", span_id="t1", node="s2",
                       group="store")
    clock["now"] = 0.001
    child = spans.start("recovery.capture", span_id="t1/cap", parent=root,
                        node="s1", group="store", payload=b"\x00\x01")
    clock["now"] = 0.002
    spans.end(child)
    clock["now"] = 0.005
    spans.end(root)
    spans.start("rpc.roundtrip", span_id="rpc:1", node="c1", group="drv")
    return tracer


def test_export_jsonl_writes_one_line_per_record():
    tracer = traced_run()
    buffer = io.StringIO()
    count = export_jsonl(tracer.records, buffer)
    lines = buffer.getvalue().splitlines()
    assert count == len(lines) == len(tracer.records)
    first = json.loads(lines[0])
    assert first["category"] == "fault" and first["event"] == "crash"
    # bytes payloads are summarized, not serialized
    start = json.loads(lines[2])
    assert start["fields"]["payload"] == "<2 bytes>"


def test_chrome_trace_complete_and_unfinished_spans():
    events = chrome_trace_events(traced_run().records)
    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    assert set(complete) == {"recovery.total", "recovery.capture"}
    assert complete["recovery.total"]["dur"] == 5000.0       # µs
    assert complete["recovery.capture"]["ts"] == 1000.0
    assert complete["recovery.capture"]["args"]["parent_id"] == "t1"
    begins = [e for e in events if e["ph"] == "B"]
    assert [e["name"] for e in begins] == ["rpc.roundtrip"]


def test_chrome_trace_lanes_and_instants():
    events = chrome_trace_events(traced_run().records)
    instants = [e for e in events if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["fault.crash"]
    assert instants[0]["pid"] == "store" and instants[0]["tid"] == "s2"
    lane_names = {(e["pid"], e.get("tid"), e["args"]["name"])
                  for e in events if e["ph"] == "M"}
    assert ("store", None, "group store") in lane_names
    assert ("store", "s1", "node s1") in lane_names


def test_chrome_trace_instants_can_be_excluded():
    events = chrome_trace_events(traced_run().records,
                                 include_instants=False)
    assert not any(e["ph"] == "i" for e in events)


def test_export_chrome_trace_writes_valid_json(tmp_path):
    tracer = traced_run()
    path = tmp_path / "trace.json"
    count = export_chrome_trace(tracer.records, str(path))
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    non_meta = [e for e in data["traceEvents"] if e["ph"] != "M"]
    assert count == len(non_meta) == 4       # 2 X + 1 B + 1 instant


# ---------------------------------------------------------------------------
# Streaming Chrome writer (valid JSON however the run ends)
# ---------------------------------------------------------------------------

def streaming_run(writer_buffer, **writer_kwargs):
    from repro.obs.exporters import ChromeTraceWriter

    writer = ChromeTraceWriter(writer_buffer, register_atexit=False,
                               **writer_kwargs)
    tracer = traced_run()
    for record in tracer.records:
        writer.feed(record)
    return writer


def test_streaming_writer_matches_batch_exporter_event_for_event():
    buffer = io.StringIO()
    writer = streaming_run(buffer)
    writer.close()
    streamed = json.loads(buffer.getvalue())["traceEvents"]
    batch = chrome_trace_events(traced_run().records)

    def key(event):
        return (event["ph"], event["name"], event["ts"] if "ts" in event
                else 0, event.get("dur"))

    streamed_real = sorted([key(e) for e in streamed if e["ph"] != "M"])
    batch_real = sorted([key(e) for e in batch if e["ph"] != "M"])
    assert streamed_real == batch_real
    assert writer.events_written == len(streamed_real)


def test_streaming_writer_document_is_valid_without_close():
    """The abrupt-termination guarantee: every flush leaves the stream one
    ``]}`` away from a valid document (a reader can repair a truncated
    capture mechanically, and ``close`` — atexit-registered in production —
    only appends the suffix, never rewrites)."""
    buffer = io.StringIO()
    streaming_run(buffer)
    # Not closed: a repaired read parses and holds every flushed event.
    repaired = json.loads(buffer.getvalue() + "\n]}")
    assert any(e["ph"] == "X" for e in repaired["traceEvents"])


def test_streaming_writer_close_flushes_open_spans_as_begin_events():
    buffer = io.StringIO()
    writer = streaming_run(buffer)
    writer.close()
    events = json.loads(buffer.getvalue())["traceEvents"]
    begins = [e for e in events if e["ph"] == "B"]
    # traced_run leaves one rpc.roundtrip span open.
    assert [e["name"] for e in begins] == ["rpc.roundtrip"]


def test_streaming_writer_close_is_idempotent_and_feed_after_close_noops():
    buffer = io.StringIO()
    writer = streaming_run(buffer)
    writer.close()
    sealed = buffer.getvalue()
    writer.close()
    writer.feed(traced_run().records[0])
    assert buffer.getvalue() == sealed
    json.loads(sealed)


def test_streaming_writer_can_exclude_instants():
    buffer = io.StringIO()
    writer = streaming_run(buffer, include_instants=False)
    writer.close()
    events = json.loads(buffer.getvalue())["traceEvents"]
    assert not any(e["ph"] == "i" for e in events)
    assert any(e["ph"] == "X" for e in events)
