"""Unit tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    MetricsRegistry,
    StreamingHistogram,
    merge_registries,
)
from repro.simnet.trace import Tracer


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------

def test_counter_increments_and_rejects_negatives():
    counter = CounterMetric()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_merge_sums():
    a, b = CounterMetric(), CounterMetric()
    a.inc(3)
    b.inc(7)
    a.merge(b)
    assert a.value == 10


def test_gauge_set_inc_and_merge():
    gauge = GaugeMetric()
    gauge.set(10)
    gauge.inc(-3)
    assert gauge.value == 7
    other = GaugeMetric()
    other.set(42)
    gauge.merge(other)
    assert gauge.value == 42        # last write wins


# ---------------------------------------------------------------------------
# Histogram quantile math — exact values on known distributions
# ---------------------------------------------------------------------------

def test_histogram_quantiles_exact_on_bimodal_distribution():
    # 50 samples of 10 and 50 samples of 20: every bucket holds identical
    # values, so nearest-rank quantiles are exact.
    hist = StreamingHistogram()
    for _ in range(50):
        hist.record(10.0)
    for _ in range(50):
        hist.record(20.0)
    assert hist.count == 100
    assert hist.quantile(0.50) == 10.0      # rank 50 falls in the 10-bucket
    assert hist.quantile(0.51) == 20.0      # rank 51 is the first 20
    assert hist.p95 == 20.0
    assert hist.p99 == 20.0
    assert hist.mean == 15.0
    assert hist.min == 10.0 and hist.max == 20.0


def test_histogram_quantiles_exact_on_single_value():
    hist = StreamingHistogram()
    for _ in range(7):
        hist.record(0.125)
    for q in (0.01, 0.5, 0.95, 0.99, 1.0):
        assert hist.quantile(q) == 0.125


def test_histogram_quantile_error_bounded_by_growth_factor():
    hist = StreamingHistogram(growth=1.04)
    values = [float(v) for v in range(1, 1001)]
    for v in values:
        hist.record(v)
    for q in (0.10, 0.50, 0.90, 0.95, 0.99):
        true = values[max(0, int(q * len(values)) - 1)]
        estimate = hist.quantile(q)
        assert true / 1.04 <= estimate <= true * 1.04, (q, true, estimate)


def test_histogram_empty_and_bad_quantiles():
    hist = StreamingHistogram()
    assert hist.quantile(0.5) == 0.0
    assert hist.mean == 0.0
    with pytest.raises(ValueError):
        hist.quantile(0.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_underflow_bucket_and_constructor_validation():
    hist = StreamingHistogram(min_value=1e-3)
    hist.record(1e-6)
    hist.record(0.0)
    assert hist.count == 2
    assert hist.quantile(1.0) == pytest.approx(5e-7)
    with pytest.raises(ValueError):
        StreamingHistogram(min_value=0)
    with pytest.raises(ValueError):
        StreamingHistogram(growth=1.0)


def test_histogram_merge_combines_and_requires_same_bucketing():
    a, b = StreamingHistogram(), StreamingHistogram()
    for _ in range(10):
        a.record(1.0)
    for _ in range(10):
        b.record(100.0)
    a.merge(b)
    assert a.count == 20
    assert a.p50 == 1.0
    assert a.p95 == 100.0
    assert a.min == 1.0 and a.max == 100.0
    with pytest.raises(ValueError):
        a.merge(StreamingHistogram(growth=2.0))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_series_keyed_by_name_and_labels():
    registry = MetricsRegistry()
    registry.counter("reqs", node="a").inc()
    registry.counter("reqs", node="b").inc(2)
    assert registry.counter("reqs", node="a").value == 1
    assert registry.counter("reqs", node="b").value == 2
    # label order does not matter
    h1 = registry.histogram("lat", node="a", group="g")
    h2 = registry.histogram("lat", group="g", node="a")
    assert h1 is h2


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_find_and_snapshot():
    registry = MetricsRegistry()
    registry.counter("a.one").inc()
    registry.gauge("b.two").set(5)
    registry.histogram("a.three").record(1.0)
    assert [name for name, _, _ in registry.find("a.")] == ["a.one", "a.three"]
    rows = {row["name"]: row for row in registry.snapshot()}
    assert rows["a.one"]["value"] == 1
    assert rows["a.three"]["count"] == 1
    assert rows["a.three"]["kind"] == "histogram"


def test_registry_bound_to_tracer_records_span_durations():
    tracer = Tracer(keep_records=False)
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    registry = MetricsRegistry()
    registry.bind(tracer)

    tracer.emit("span", "span_start", span="s1", name="recovery.capture",
                node="n1", group="g")
    assert registry.gauge("spans.open").value == 1
    clock["now"] = 0.25
    tracer.emit("span", "span_end", span="s1")
    assert registry.gauge("spans.open").value == 0
    hist = registry.histogram("span.recovery.capture", node="n1", group="g")
    assert hist.count == 1
    assert hist.quantile(1.0) == pytest.approx(0.25)


def test_registry_ignores_unmatched_span_ends_and_non_spans():
    tracer = Tracer(keep_records=False)
    registry = MetricsRegistry()
    registry.bind(tracer)
    tracer.emit("span", "span_end", span="never-started")
    tracer.emit("recovery", "recovered", node="n1")
    assert registry.find("span.") == []


def test_merge_registries_folds_series():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("lat", node="n").record(1.0)
    b.histogram("lat", node="n").record(3.0)
    b.counter("c").inc(2)
    merged = merge_registries([a, b])
    assert merged.histogram("lat", node="n").count == 2
    assert merged.counter("c").value == 2
    # sources untouched
    assert a.histogram("lat", node="n").count == 1


def test_merge_histograms_with_disjoint_label_sets_pins_quantiles():
    """Series absent from the target must be adopted with the SOURCE's
    bucketing — merging a custom-parameter histogram into a registry that
    has never seen the series used to raise on mismatched buckets."""
    from repro.obs.metrics import _label_key

    a, b = MetricsRegistry(), MetricsRegistry()
    # a has only node=n1; b has node=n2 with non-default bucketing
    a.histogram("lat", node="n1").record(1.0)
    custom = StreamingHistogram(min_value=1e-3, growth=1.5)
    b._metrics[("lat", _label_key({"node": "n2"}))] = custom
    for value in (10.0, 10.0, 10.0, 40.0):
        custom.record(value)
    merged = merge_registries([a, b])
    adopted = merged.histogram("lat", node="n2")
    assert adopted.count == 4
    # buckets hold identical values, so the merged quantiles are exact
    assert adopted.quantile(0.50) == 10.0
    assert adopted.p95 == 40.0
    assert adopted.min == 10.0 and adopted.max == 40.0
    # and merging b in AGAIN folds into the adopted bucketing cleanly
    merged2 = merge_registries([merged, b])
    assert merged2.histogram("lat", node="n2").count == 8


def test_merge_rejects_kind_conflicts_across_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x").inc()
    b.gauge("x").set(1)
    with pytest.raises(TypeError):
        merge_registries([a, b])


def test_fault_detector_records_feed_counters():
    tracer = Tracer(keep_records=False)
    registry = MetricsRegistry()
    registry.bind(tracer)
    tracer.emit("fault_detector", "suspect", node="s1", group="g", strikes=1)
    tracer.emit("fault_detector", "suspect", node="s1", group="g", strikes=2)
    tracer.emit("fault_detector", "report", node="s1", group="g")
    tracer.emit("fault_detector", "refuted", node="s2", group="g", strikes=1)
    # only the FIRST strike of an episode counts as one suspicion
    assert registry.counter("fault_detector.suspicions",
                            node="s1", group="g").value == 1
    assert registry.counter("fault_detector.reports",
                            node="s1", group="g").value == 1
    assert registry.counter("fault_detector.false_positives",
                            node="s2", group="g").value == 1


def test_format_table_renders_histograms_and_scalars():
    registry = MetricsRegistry()
    registry.histogram("span.x", node="n").record(0.002)
    registry.counter("frames").inc(9)
    table = registry.format_table(scale=1000.0, unit="ms")
    assert "span.x" in table and "node=n" in table
    assert "2.000" in table     # 0.002 s scaled to ms
    assert "frames" in table and "(counter)" in table


def test_delta_records_feed_counters():
    tracer = Tracer(keep_records=False)
    registry = MetricsRegistry()
    registry.bind(tracer)
    tracer.emit("delta", "delta_sent", node="s1", group="g",
                pages_sent=4, pages_skipped=36,
                wire_bytes=5000, full_bytes=40000)
    tracer.emit("delta", "full_sent", node="s1", group="g",
                reason="base_mismatch", full_bytes=40000)
    tracer.emit("delta", "fallback", node="s2", group="g",
                reason="DeltaMismatch")
    tracer.emit("delta", "resync_requested", node="s2", group="g")
    assert registry.counter("delta.transfers_delta",
                            node="s1", group="g").value == 1
    assert registry.counter("delta.pages_sent",
                            node="s1", group="g").value == 4
    assert registry.counter("delta.pages_skipped",
                            node="s1", group="g").value == 36
    assert registry.counter("delta.wire_bytes",
                            node="s1", group="g").value == 5000
    assert registry.counter("delta.transfers_full", node="s1", group="g",
                            reason="base_mismatch").value == 1
    assert registry.counter("delta.fallbacks",
                            node="s2", group="g").value == 1
    assert registry.counter("delta.resyncs",
                            node="s2", group="g").value == 1


def test_packed_frame_records_feed_histogram():
    tracer = Tracer(keep_records=False)
    registry = MetricsRegistry()
    registry.bind(tracer)
    for payloads in (1, 3, 3, 7):
        tracer.emit("totem", "packed_frame", node="s1", seq=payloads,
                    payloads=payloads, size=1000)
    hist = registry.histogram("totem.payloads_per_frame", node="s1")
    assert hist.count == 4
    assert hist.min == 1 and hist.max == 7
    assert hist.p50 == 3.0


# ---------------------------------------------------------------------------
# Token ring health: inter-arrival and jitter streams
# ---------------------------------------------------------------------------

def token_tracer():
    tracer = Tracer(keep_records=False)
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    registry = MetricsRegistry()
    registry.bind(tracer)
    return tracer, registry, clock


def test_token_receipts_feed_interarrival_and_jitter_histograms():
    tracer, registry, clock = token_tracer()
    for now in (0.0, 0.10, 0.25, 0.30):
        clock["now"] = now
        tracer.emit("totem", "token", node="s1", src="s2", seq=1)
    # First receipt only primes the stream: 3 deltas from 4 receipts.
    rtt = registry.histogram("totem.token_interarrival", node="s1",
                             peer="s2")
    assert rtt.count == 3
    assert rtt.min == pytest.approx(0.05) and rtt.max == pytest.approx(0.15)
    # Jitter needs two consecutive deltas: |0.15-0.10| then |0.05-0.15|.
    jitter = registry.histogram("totem.token_jitter", node="s1")
    assert jitter.count == 2
    assert jitter.min == pytest.approx(0.05)
    assert jitter.max == pytest.approx(0.10)


def test_token_without_src_uses_node_only_series():
    tracer, registry, clock = token_tracer()
    for now in (0.0, 0.1):
        clock["now"] = now
        tracer.emit("totem", "token", node="s1", seq=1)
    assert registry.histogram("totem.token_interarrival",
                              node="s1").count == 1
    # No peer-labelled series was created.
    assert all(labels.get("peer") is None for _, labels, _ in
               registry.find("totem.token_interarrival"))


def test_token_streams_are_independent_per_node():
    tracer, registry, clock = token_tracer()
    # Interleaved receipts at two nodes must not cross-contaminate the
    # per-node deltas (a shared last-seen time would halve them).
    for now, node in ((0.0, "s1"), (0.05, "s2"), (0.10, "s1"),
                      (0.15, "s2")):
        clock["now"] = now
        tracer.emit("totem", "token", node=node, src="peer", seq=1)
    for node in ("s1", "s2"):
        hist = registry.histogram("totem.token_interarrival",
                                  node=node, peer="peer")
        assert hist.count == 1
        assert hist.min == pytest.approx(0.10)


def test_token_records_without_node_are_ignored():
    tracer, registry, clock = token_tracer()
    clock["now"] = 0.0
    tracer.emit("totem", "token", seq=1)
    clock["now"] = 0.1
    tracer.emit("totem", "token", seq=2)
    assert registry.find("totem.token_interarrival") == []
