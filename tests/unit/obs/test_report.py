"""Unit tests for the per-phase recovery report."""

import pytest

from repro.obs.report import (
    RECOVERY_PHASES,
    recovery_phase_report,
    render_phase_table,
)
from repro.obs.spans import SpanEmitter
from repro.simnet.trace import Tracer


def synthetic_recovery():
    """Emit a hand-built recovery span tree with known durations."""
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    spans = SpanEmitter(tracer)

    def at(t):
        clock["now"] = t

    root = spans.start("recovery.total", span_id="t1", node="s2",
                       group="store")
    ann = spans.start("recovery.announce", span_id="t1/ann", parent=root)
    at(0.001)
    spans.end(ann)
    cap = spans.start("recovery.capture", span_id="t1/cap@s1", parent=root)
    qui = spans.start("recovery.quiesce", span_id="t1/q@s1", parent=cap)
    at(0.003)
    spans.end(qui)
    at(0.004)
    spans.end(cap, app_bytes=5000)
    xfer = spans.start("recovery.xfer", span_id="t1/x@s1", parent=root,
                       app_bytes=5000)
    tracer.emit("totem", "frame")            # two frames inside the window
    at(0.006)
    tracer.emit("totem", "frame")
    spans.end(xfer)
    at(0.0065)
    tracer.emit("totem", "frame")            # outside: not attributed
    apply_ = spans.start("recovery.apply", span_id="t1/apply", parent=root)
    at(0.007)
    spans.end(apply_)
    drain = spans.start("recovery.drain", span_id="t1/drain", parent=root,
                        drained=3)
    at(0.0075)
    spans.end(drain)
    spans.end(root)
    return tracer


def test_phase_report_extracts_durations_and_extras():
    [report] = recovery_phase_report(synthetic_recovery())
    assert report.transfer_id == "t1"
    assert report.group == "store" and report.node == "s2"
    assert report.complete and report.total == 0.0075
    approx = pytest.approx
    assert report.phases["announce"] == approx(0.001)
    assert report.phases["quiesce"] == approx(0.002)   # nested inside capture
    assert report.phases["capture"] == approx(0.003)
    assert report.phases["xfer"] == approx(0.002)
    assert report.phases["apply"] == approx(0.0005)
    assert report.phases["drain"] == approx(0.0005)
    assert report.state_bytes == 5000
    assert report.transfer_frames == 2
    assert report.drained_messages == 3


def test_phase_report_concurrent_responders_take_max():
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    spans = SpanEmitter(tracer)
    root = spans.start("recovery.total", span_id="t1", node="s3", group="g")
    slow = spans.start("recovery.capture", span_id="t1/cap@s1", parent=root)
    fast = spans.start("recovery.capture", span_id="t1/cap@s2", parent=root)
    clock["now"] = 0.001
    spans.end(fast)
    clock["now"] = 0.004
    spans.end(slow)
    spans.end(root)
    [report] = recovery_phase_report(tracer)
    assert report.phases["capture"] == 0.004


def test_phase_report_skips_incomplete_children_keeps_open_root():
    tracer = Tracer()
    spans = SpanEmitter(tracer)
    root = spans.start("recovery.total", span_id="t1", node="n", group="g")
    spans.start("recovery.announce", span_id="t1/ann", parent=root)
    [report] = recovery_phase_report(tracer)
    assert not report.complete and report.total is None
    assert report.phases == {}


def test_phase_report_ignores_non_recovery_roots():
    tracer = Tracer()
    spans = SpanEmitter(tracer)
    sid = spans.start("rpc.roundtrip")
    spans.end(sid)
    assert recovery_phase_report(tracer) == []


def test_render_phase_table_lists_every_phase_column():
    table = render_phase_table(synthetic_recovery())
    for phase in RECOVERY_PHASES:
        assert phase in table
    assert "store@s2" in table
    assert "5000" in table


def test_render_phase_table_empty_trace():
    assert "no recovery spans" in render_phase_table(Tracer())
