"""Unit tests for the per-phase recovery report."""

import pytest

from repro.obs.report import (
    RECOVERY_PHASES,
    recovery_phase_report,
    render_phase_table,
)
from repro.obs.spans import SpanEmitter
from repro.simnet.trace import Tracer


def synthetic_recovery():
    """Emit a hand-built recovery span tree with known durations."""
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    spans = SpanEmitter(tracer)

    def at(t):
        clock["now"] = t

    root = spans.start("recovery.total", span_id="t1", node="s2",
                       group="store")
    ann = spans.start("recovery.announce", span_id="t1/ann", parent=root)
    at(0.001)
    spans.end(ann)
    cap = spans.start("recovery.capture", span_id="t1/cap@s1", parent=root)
    qui = spans.start("recovery.quiesce", span_id="t1/q@s1", parent=cap)
    at(0.003)
    spans.end(qui)
    at(0.004)
    spans.end(cap, app_bytes=5000)
    xfer = spans.start("recovery.xfer", span_id="t1/x@s1", parent=root,
                       app_bytes=5000)
    tracer.emit("totem", "frame")            # two frames inside the window
    at(0.006)
    tracer.emit("totem", "frame")
    spans.end(xfer)
    at(0.0065)
    tracer.emit("totem", "frame")            # outside: not attributed
    apply_ = spans.start("recovery.apply", span_id="t1/apply", parent=root)
    at(0.007)
    spans.end(apply_)
    drain = spans.start("recovery.drain", span_id="t1/drain", parent=root,
                        drained=3)
    at(0.0075)
    spans.end(drain)
    spans.end(root)
    return tracer


def test_phase_report_extracts_durations_and_extras():
    [report] = recovery_phase_report(synthetic_recovery())
    assert report.transfer_id == "t1"
    assert report.group == "store" and report.node == "s2"
    assert report.complete and report.total == 0.0075
    approx = pytest.approx
    assert report.phases["announce"] == approx(0.001)
    assert report.phases["quiesce"] == approx(0.002)   # nested inside capture
    assert report.phases["capture"] == approx(0.003)
    assert report.phases["xfer"] == approx(0.002)
    assert report.phases["apply"] == approx(0.0005)
    assert report.phases["drain"] == approx(0.0005)
    assert report.state_bytes == 5000
    assert report.transfer_frames == 2
    assert report.drained_messages == 3


def test_phase_report_concurrent_responders_take_max():
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    spans = SpanEmitter(tracer)
    root = spans.start("recovery.total", span_id="t1", node="s3", group="g")
    slow = spans.start("recovery.capture", span_id="t1/cap@s1", parent=root)
    fast = spans.start("recovery.capture", span_id="t1/cap@s2", parent=root)
    clock["now"] = 0.001
    spans.end(fast)
    clock["now"] = 0.004
    spans.end(slow)
    spans.end(root)
    [report] = recovery_phase_report(tracer)
    assert report.phases["capture"] == 0.004


def test_phase_report_skips_incomplete_children_keeps_open_root():
    tracer = Tracer()
    spans = SpanEmitter(tracer)
    root = spans.start("recovery.total", span_id="t1", node="n", group="g")
    spans.start("recovery.announce", span_id="t1/ann", parent=root)
    [report] = recovery_phase_report(tracer)
    assert not report.complete and report.total is None
    assert report.phases == {}


def test_phase_report_ignores_non_recovery_roots():
    tracer = Tracer()
    spans = SpanEmitter(tracer)
    sid = spans.start("rpc.roundtrip")
    spans.end(sid)
    assert recovery_phase_report(tracer) == []


def test_render_phase_table_lists_every_phase_column():
    table = render_phase_table(synthetic_recovery())
    for phase in RECOVERY_PHASES:
        assert phase in table
    assert "store@s2" in table
    assert "5000" in table


def test_render_phase_table_empty_trace():
    assert "no recovery spans" in render_phase_table(Tracer())


# ---------------------------------------------------------------------------
# Cross-node invocation stitching
# ---------------------------------------------------------------------------

def invocation_records(trace="op:c1->store#7"):
    """One invocation's records as three per-node tracers would emit them
    (client c1, replicas s1 and s2), deliberately out of causal order to
    exercise the sort."""
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])

    def at(t):
        clock["now"] = t

    span_id = f"rpc:{trace}"
    tracer.emit("interceptor", "request", node="c1", trace=trace,
                operation="echo")
    tracer.emit("span", "span_start", span=span_id, name="rpc.roundtrip",
                node="c1", trace=trace, operation="echo")
    at(0.002)
    tracer.emit("replication", "delivered", node="s1", kind="REQUEST",
                trace=trace)
    at(0.0025)
    tracer.emit("replication", "delivered", node="s2", kind="REQUEST",
                trace=trace)
    at(0.003)
    tracer.emit("interceptor", "reply", node="s1", trace=trace)
    at(0.005)
    tracer.emit("replication", "delivered", node="c1", kind="REPLY",
                trace=trace)
    at(0.0055)
    tracer.emit("span", "span_end", span=span_id)
    return tracer.records


def test_stitch_invocations_builds_causal_cross_node_timeline():
    from repro.obs.report import stitch_invocations

    [timeline] = stitch_invocations(invocation_records())
    assert timeline.trace_id == "op:c1->store#7"
    assert timeline.operation == "echo"
    assert [e.stage for e in timeline.events] == [
        "client_send", "execute", "execute", "reply_send",
        "reply_deliver", "client_done"]
    assert timeline.nodes == ("c1", "s1", "s2")
    assert timeline.total == pytest.approx(0.0055)


def test_stitch_groups_interleaved_invocations_separately():
    from repro.obs.report import stitch_invocations

    first = invocation_records("op:c1->store#1")
    second = invocation_records("op:c1->store#2")
    # Interleave the two records streams by time.
    merged = sorted(first + second, key=lambda r: r.time)
    timelines = stitch_invocations(merged)
    assert [t.trace_id for t in timelines] == ["op:c1->store#1",
                                               "op:c1->store#2"]
    assert all(t.total is not None for t in timelines)


def test_stitch_ignores_records_without_trace_ids():
    from repro.obs.report import stitch_invocations

    tracer = Tracer()
    tracer.bind_clock(lambda: 0.0)
    tracer.emit("interceptor", "request", node="c1")      # no trace field
    tracer.emit("totem", "frame", node="s1")
    assert stitch_invocations(tracer.records) == []


def test_stitch_jsonl_streams_merges_and_dedupes(tmp_path):
    from repro.obs.exporters import export_jsonl
    from repro.obs.report import stitch_invocations, stitch_jsonl_streams

    records = invocation_records()
    # Two overlapping dumps, as two nodes' flight recorders would write
    # them (each carries the shared global-lane records).
    a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    export_jsonl(records, a)
    export_jsonl(records[2:], b)
    merged = stitch_jsonl_streams([a, b])
    assert len(merged) == len(records)
    assert [r.time for r in merged] == sorted(r.time for r in records)
    [timeline] = stitch_invocations(merged)
    assert timeline.total == pytest.approx(0.0055)


def test_render_invocation_timeline_lists_offsets_and_nodes():
    from repro.obs.report import (render_invocation_timeline,
                                  stitch_invocations)

    [timeline] = stitch_invocations(invocation_records())
    out = render_invocation_timeline(timeline)
    lines = out.splitlines()
    assert lines[0].startswith("op:c1->store#7 echo()")
    assert "5.500 ms end-to-end" in lines[0]
    assert len(lines) == 1 + len(timeline.events)
    assert any("client_send" in line and "@ c1" in line for line in lines)
    assert any("execute" in line and "@ s2" in line for line in lines)
