"""Unit tests for the Prometheus-style health exposition."""

import pytest

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle
from repro.obs.health import parse_exposition, render_health


def deploy():
    return build_client_server(style=ReplicationStyle.ACTIVE,
                               server_replicas=2, state_size=100,
                               warmup=0.2, keep_trace_records=True)


# ---------------------------------------------------------------------------
# The parser (pins the exposition format)
# ---------------------------------------------------------------------------

def test_parse_plain_and_labelled_series():
    text = ('up 1\n'
            '# a comment\n'
            '\n'
            'lat{node="s1",quantile="0.95"} 2.5\n')
    assert parse_exposition(text) == [
        ("up", {}, 1.0),
        ("lat", {"node": "s1", "quantile": "0.95"}, 2.5),
    ]


def test_parse_unescapes_label_values():
    text = 'm{k="a\\"b\\\\c\\nd"} 0\n'
    ((_, labels, _),) = parse_exposition(text)
    assert labels["k"] == 'a"b\\c\nd'


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError, match="line 1"):
        parse_exposition("not a metric line at all !\n")


# ---------------------------------------------------------------------------
# The renderer on a live system
# ---------------------------------------------------------------------------

def test_every_line_parses_and_core_series_present():
    deployment = deploy()
    system = deployment.system
    text = render_health(system)
    series = {(name, tuple(sorted(labels.items()))): value
              for name, labels, value in parse_exposition(text)}

    for node in ("m", "c1", "s1", "s2"):
        assert series[("eternal_node_alive", (("node", node),))] == 1.0
    for node in ("s1", "s2"):
        key = (("group", "store"), ("node", node))
        assert series[("eternal_replica_operational", key)] == 1.0
    assert series[("eternal_group_members", (("group", "store"),))] == 2.0
    assert series[("eternal_group_operational_members",
                   (("group", "store"),))] == 2.0


def test_dead_node_and_degraded_group_reflected():
    deployment = deploy()
    system = deployment.system
    system.kill_node("s2")
    system.run_for(0.3)
    parsed = parse_exposition(render_health(system))
    by_name = {}
    for name, labels, value in parsed:
        by_name.setdefault(name, []).append((labels, value))
    alive = {labels["node"]: value
             for labels, value in by_name["eternal_node_alive"]}
    assert alive["s2"] == 0.0 and alive["s1"] == 1.0
    # the dead node exports no replica series
    assert all(labels["node"] != "s2"
               for labels, _ in by_name["eternal_replica_operational"])


def test_audit_section_present_when_auditor_attached():
    deployment = deploy()
    system = deployment.system
    system.attach_auditor()
    system.run_for(0.2)
    system.auditor.finish()
    parsed = parse_exposition(render_health(system))
    values = {name: value for name, labels, value in parsed if not labels}
    assert values["eternal_audit_ok"] == 1.0
    assert values["eternal_audit_records_scanned"] > 0
    assert values["eternal_audit_findings_total"] == 0.0


def test_metrics_registry_histograms_render_as_quantile_series():
    deployment = deploy()
    system = deployment.system
    system.metrics.histogram("span.demo", node="s1").record(0.25)
    parsed = parse_exposition(render_health(system))
    quantiles = {labels["quantile"]: value
                 for name, labels, value in parsed
                 if name == "repro_span_demo"}
    assert set(quantiles) == {"0.5", "0.95", "0.99"}
    assert quantiles["0.5"] == pytest.approx(0.25, rel=0.05)
    counts = [value for name, labels, value in parsed
              if name == "repro_span_demo_count"]
    assert counts == [1.0]


def test_fault_detector_strikes_exported():
    deployment = deploy()
    system = deployment.system
    parsed = parse_exposition(render_health(system))
    strikes = [(labels, value) for name, labels, value in parsed
               if name == "eternal_fault_detector_strikes"]
    assert strikes, "expected fault-detector series on hosting nodes"
    assert all(value == 0.0 for _, value in strikes)


def test_totem_partial_count_gauge_exported():
    deployment = deploy()
    text = render_health(deployment.system)
    series = {(name, tuple(sorted(labels.items()))): value
              for name, labels, value in parse_exposition(text)}
    nodes = [node for node in deployment.system.stacks
             if deployment.system.stacks[node].process.alive]
    for node in nodes:
        key = ("eternal_totem_partial_count", (("node", node),))
        assert key in series
        assert series[key] == 0     # quiescent system: nothing mid-reassembly


def test_bulk_lane_gauges_and_counters_round_trip():
    """The bulk lane shows up twice: live session gauges on every hosting
    node, and lane-split byte counters from the metrics registry — and the
    whole snapshot still parses."""
    from repro.bench.deployments import measure_recovery

    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2,
                                     state_size=256 * 1024, warmup=0.2)
    measure_recovery(deployment, "s1")
    text = render_health(deployment.system)
    series = {(name, tuple(sorted(labels.items()))): value
              for name, labels, value in parse_exposition(text)}

    # gauges: present for every replica-hosting node, quiescent after
    # recovery completed
    for node in ("s1", "s2"):
        key = (("node", node),)
        assert series[("eternal_bulk_sessions_active", key)] == 0.0
        assert series[("eternal_bulk_stripes_in_flight", key)] == 0.0
        assert ("eternal_bulk_store_entries", key) in series

    # counters (labelled by node/group): the transfer ran out-of-band
    def total(metric, **want):
        return sum(value for name, labels, value in parse_exposition(text)
                   if name == metric
                   and all(labels.get(k) == v for k, v in want.items()))

    assert total("repro_bulk_sessions_started") == 1.0
    assert total("repro_bulk_sessions_completed") == 1.0
    assert total("repro_bulk_manifests_sent") >= 1.0
    assert total("repro_state_bytes", lane="oob") >= 256 * 1024


def test_store_gauges_round_trip():
    """Per-node, per-group durable-store gauges render and parse; the
    fsync-latency histogram appears once real fsyncs happened (journal
    backend only, so here just the counter-style gauges)."""
    from repro.store.memory import MemoryStore

    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE, server_replicas=2, state_size=4_000,
        checkpoint_interval=0.1, warmup=0.3,
        store_factory=lambda node_id: MemoryStore())
    text = render_health(deployment.system)
    series = {(name, tuple(sorted(labels.items()))): value
              for name, labels, value in parse_exposition(text)}

    for node in ("s1", "s2"):
        key = (("group", "store"), ("node", node))
        assert series[("eternal_store_bytes", key)] > 0
        assert series[("eternal_store_checkpoints_written", key)] >= 1.0
        assert ("eternal_store_pending_messages", key) in series
        assert ("eternal_store_segments", key) in series


def test_store_section_absent_without_stores():
    text = render_health(deploy().system)
    assert "eternal_store_" not in text
