"""Unit tests for span-scoped resource attribution and the stack sampler."""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    DEFAULT_ALLOC_SPANS,
    UNATTRIBUTED,
    InSituProbe,
    PhaseCost,
    ProfileSession,
    ProfilingConfig,
    SpanResourceProfiler,
    StackSampler,
    fold_frames,
    merge_phase_costs,
    phase_table_rows,
    render_cost_table,
    render_folded,
    syscall_counters,
)
from repro.runtime.trace import TraceRecord, Tracer

GOLDEN = Path(__file__).parent / "data" / "folded_golden.txt"


def span_record(event: str, span_id: str, *, t: float = 0.0, **fields):
    return TraceRecord(time=t, category="span", event=event,
                      fields={"span": span_id, **fields})


def start(span_id: str, name: str, *, t: float = 0.0, **fields):
    return span_record("span_start", span_id, t=t, name=name, **fields)


def end(span_id: str, *, t: float = 0.0, **fields):
    return span_record("span_end", span_id, t=t, **fields)


def make_profiler(**overrides) -> SpanResourceProfiler:
    config = ProfilingConfig(enabled=True, alloc_spans=None, **overrides)
    return SpanResourceProfiler(config)


# ---------------------------------------------------------------------------
# Span resource attribution
# ---------------------------------------------------------------------------

def burn_cpu(n: int = 20_000) -> int:
    total = 0
    for i in range(n):
        total += i * i
    return total


def test_nested_spans_attribute_inclusive_and_self_cpu():
    prof = make_profiler()
    prof.observe_span(start("outer", "recovery.total", t=0.0))
    burn_cpu()
    prof.observe_span(start("inner", "recovery.capture", t=1.0))
    burn_cpu()
    prof.observe_span(end("inner", t=2.0))
    burn_cpu()
    prof.observe_span(end("outer", t=3.0))

    outer = prof.phases["recovery.total"]
    inner = prof.phases["recovery.capture"]
    assert outer.spans == 1 and inner.spans == 1
    assert outer.wall_s == pytest.approx(3.0)
    assert inner.wall_s == pytest.approx(1.0)
    # Inclusive CPU of the outer span covers the inner span too.
    assert outer.cpu_ns >= inner.cpu_ns > 0
    # Self CPU splits the same interval exclusively: the two shares can
    # never exceed the outer inclusive total.
    assert outer.self_cpu_ns + inner.self_cpu_ns <= outer.cpu_ns
    assert outer.self_cpu_ns > 0 and inner.self_cpu_ns > 0


def test_allocation_attribution_net_blocks():
    prof = make_profiler()
    prof.observe_span(start("s", "recovery.capture"))
    keep = [bytearray(64) for _ in range(5000)]
    prof.observe_span(end("s"))
    assert prof.phases["recovery.capture"].alloc_blocks >= 4000
    del keep


def test_net_free_clamps_counter_but_not_phase_cost():
    prof = make_profiler()
    prof.metrics = MetricsRegistry()
    junk = [bytearray(64) for _ in range(5000)]
    prof.observe_span(start("s", "recovery.apply"))
    junk.clear()
    prof.observe_span(end("s"))
    prof.flush_to_metrics()
    # The monotone counter clamps the net-free interval to zero ...
    counter = prof.metrics.counter("profile.alloc_blocks",
                                   phase="recovery.apply")
    assert counter.value == 0
    # ... while the raw phase cost keeps the (negative) net delta.
    assert prof.phases["recovery.apply"].alloc_blocks < 0


def test_out_of_lifo_span_ends_are_tolerated():
    # §5.1 spans may start on one component and end on another, so ends
    # can arrive in non-stack order.
    prof = make_profiler()
    prof.observe_span(start("a", "recovery.xfer", t=0.0))
    prof.observe_span(start("b", "rpc.roundtrip", t=1.0))
    prof.observe_span(end("a", t=2.0))      # outer ends before inner
    prof.observe_span(end("b", t=3.0))
    assert prof.phases["recovery.xfer"].spans == 1
    assert prof.phases["rpc.roundtrip"].spans == 1
    assert prof.current_phase() is None


def test_duplicate_starts_and_orphan_ends_are_dropped():
    prof = make_profiler()
    prof.observe_span(start("s", "recovery.total", t=0.0))
    prof.observe_span(start("s", "recovery.total", t=1.0))   # dup start
    prof.observe_span(end("ghost", t=1.5))                   # orphan end
    prof.observe_span(end("s", t=2.0))
    prof.observe_span(end("s", t=3.0))                       # dup end
    cost = prof.phases["recovery.total"]
    assert cost.spans == 1
    assert cost.wall_s == pytest.approx(2.0)


def test_observe_record_dispatches_span_category_only():
    prof = make_profiler()
    prof.observe_record(TraceRecord(time=0.0, category="totem",
                                    event="frame", fields={"span": "x"}))
    assert prof.phases == {}
    prof.observe_record(start("s", "totem.rotation"))
    assert prof.current_phase() == "totem.rotation"


def test_disabled_profiler_never_subscribes():
    tracer = Tracer()
    prof = SpanResourceProfiler(ProfilingConfig()).attach(tracer)
    assert not prof.enabled
    tracer.emit("span", "span_start", span="s", name="recovery.total")
    tracer.emit("span", "span_end", span="s")
    assert prof.phases == {}


def test_alloc_spans_prefix_gates_allocation_probes():
    prof = SpanResourceProfiler(ProfilingConfig(enabled=True))
    assert prof.config.alloc_spans == DEFAULT_ALLOC_SPANS
    prof.observe_span(start("r", "totem.rotation"))
    keep = [bytearray(64) for _ in range(3000)]
    prof.observe_span(end("r"))
    # Rotation spans are outside the default granularity: CPU is still
    # attributed, allocations are not probed.
    assert prof.phases["totem.rotation"].cpu_ns > 0
    assert prof.phases["totem.rotation"].alloc_blocks == 0
    del keep


def test_flush_to_metrics_is_incremental_and_idempotent():
    prof = make_profiler()
    prof.metrics = MetricsRegistry()
    prof.observe_span(start("1", "totem.rotation", node="n1"))
    prof.observe_span(end("1"))
    prof.flush_to_metrics()
    spans = prof.metrics.counter("profile.spans", phase="totem.rotation")
    cpu = prof.metrics.counter("profile.node_cpu_ns", node="n1")
    assert spans.value == 1
    first_cpu = cpu.value
    assert first_cpu > 0
    prof.flush_to_metrics()     # no new spans: flush must not re-count
    assert spans.value == 1
    assert cpu.value == first_cpu
    prof.observe_span(start("2", "totem.rotation", node="n1"))
    prof.observe_span(end("2"))
    prof.flush_to_metrics()
    assert spans.value == 2
    assert cpu.value > first_cpu


def test_merge_phase_costs_folds_sweep_results():
    a = {"recovery.total": PhaseCost(spans=1, wall_s=1.0, cpu_ns=100)}
    b = {"recovery.total": PhaseCost(spans=2, wall_s=0.5, cpu_ns=50),
         "rpc.roundtrip": PhaseCost(spans=9, cpu_ns=9)}
    merged = merge_phase_costs([a, b])
    assert merged["recovery.total"].spans == 3
    assert merged["recovery.total"].cpu_ns == 150
    assert merged["rpc.roundtrip"].spans == 9


def test_phase_table_orders_protocol_phases_first():
    phases = {"custom.hot": PhaseCost(cpu_ns=999),
              "recovery.capture": PhaseCost(cpu_ns=1),
              "totem.rotation": PhaseCost(cpu_ns=5)}
    names = [name for name, _ in phase_table_rows(phases)]
    assert names == ["recovery.capture", "totem.rotation", "custom.hot"]


def test_render_cost_table_includes_syscall_section():
    table = render_cost_table(
        {"recovery.total": PhaseCost(spans=1, wall_s=0.01, cpu_ns=10**6)},
        syscalls={"live.sys.recvfrom": 10, "live.sys.recv_datagrams": 8,
                  "live.sys.recv_batches": 4},
    )
    assert "recovery.total" in table
    assert "live.sys.recvfrom" in table
    assert "(datagrams per wakeup)" in table
    assert "2.00" in table      # 8 datagrams / 4 wakeups


def test_syscall_counters_filters_tracer_counters():
    counters = {"live.sys.sendto": 3, "live.codec.bytes_out": 900,
                "totem.frame": 12}
    assert syscall_counters(counters) == {"live.sys.sendto": 3}


# ---------------------------------------------------------------------------
# Folded stacks and the sampler
# ---------------------------------------------------------------------------

def test_render_folded_matches_golden_file():
    samples = {
        ("recovery.capture",
         ("system.py:run", "transfer.py:StateTransfer.capture")): 3,
        ("recovery.capture",
         ("system.py:run", "transfer.py:StateTransfer.capture",
          "codec.py:encode")): 1,
        ("totem.rotation", ("member.py:RingMember.on_token",)): 7,
        (UNATTRIBUTED, ("scheduler.py:Scheduler.step",)): 2,
    }
    assert render_folded(samples) == GOLDEN.read_text()


def test_render_folded_empty_is_empty_string():
    assert render_folded({}) == ""


def test_fold_frames_walks_root_first():
    def inner():
        import sys
        return fold_frames(sys._getframe())
    stack = inner()
    # Root-first: the innermost frame (inner) is last.
    assert stack[-1].endswith(":inner") or "inner" in stack[-1]
    assert all(":" in frame for frame in stack)


def test_sampler_tags_samples_with_current_phase():
    phase = {"name": "recovery.capture"}
    sampler = StackSampler(interval=0.001,
                           phase_provider=lambda: phase["name"])
    assert sampler.sample_once() == 1
    phase["name"] = None
    assert sampler.sample_once() == 1
    folded = sampler.folded()
    assert "recovery.capture;" in folded
    assert UNATTRIBUTED + ";" in folded


def test_sampler_start_stop_idempotent_and_thread_safe():
    sampler = StackSampler(interval=0.001)
    sampler.start()
    sampler.start()                 # second start: no second thread
    assert sampler.running
    deadline = time.monotonic() + 2.0
    while sampler.samples_taken == 0 and time.monotonic() < deadline:
        time.sleep(0.005)
    sampler.stop()
    sampler.stop()                  # second stop: no-op
    assert not sampler.running
    assert sampler.samples_taken > 0
    # Restart still works after a stop.
    sampler.start()
    sampler.stop()


def test_sampler_snapshot_consistent_under_concurrent_sampling():
    sampler = StackSampler(interval=0.0005)
    sampler.start()
    errors = []

    def reader():
        try:
            for _ in range(50):
                snap = sampler.snapshot()
                assert all(count > 0 for count in snap.values())
                render_folded(snap)
        except Exception as exc:    # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    sampler.stop()
    assert errors == []


def test_sampler_write_folded_counts_lines(tmp_path):
    sampler = StackSampler(interval=1.0)
    sampler.sample_once()
    out = tmp_path / "out.folded"
    lines = sampler.write_folded(str(out))
    text = out.read_text()
    assert lines == text.count("\n") >= 1
    # Every line is "frames... count" with a positive integer count.
    for line in text.splitlines():
        frames, count = line.rsplit(" ", 1)
        assert frames and int(count) > 0


# ---------------------------------------------------------------------------
# InSituProbe
# ---------------------------------------------------------------------------

class Workload:
    def busy(self, n: int) -> int:
        total = 0
        for i in range(n):
            total += i
        return total

    def idle(self) -> None:
        pass


def test_probe_accumulates_inside_patched_methods():
    with InSituProbe() as probe:
        probe.patch(Workload, "busy")
        w = Workload()
        assert w.busy(10_000) == sum(range(10_000))
        w.idle()
    assert probe.calls == 1
    assert probe.seconds > 0
    # Restored on exit: further calls are unprobed.
    Workload().busy(1000)
    assert probe.calls == 1


def test_probe_restore_reinstates_original_methods():
    original = Workload.busy
    probe = InSituProbe().patch(Workload, "busy")
    assert Workload.busy is not original
    assert Workload.busy.__wrapped__ is original
    probe.restore()
    assert Workload.busy is original


def test_probe_overhead_ratio_semantics():
    probe = InSituProbe()
    assert probe.overhead_ratio(1.0) == 1.0        # nothing probed
    probe.seconds = 0.25
    assert probe.overhead_ratio(1.0) == pytest.approx(1.0 / 0.75)
    probe.seconds = 2.0
    assert probe.overhead_ratio(1.0) == float("inf")


# ---------------------------------------------------------------------------
# ProfileSession
# ---------------------------------------------------------------------------

class FakeSystem:
    def __init__(self, profiler):
        self.profiler = profiler


def test_session_probes_allocs_on_every_span():
    session = ProfileSession()
    assert session.config.enabled
    assert session.config.alloc_spans is None


def test_session_merges_attached_systems_and_follows_latest_phase():
    session = ProfileSession()
    first = SpanResourceProfiler(session.config)
    second = SpanResourceProfiler(session.config)
    session.attach(FakeSystem(first))
    first.observe_span(start("a", "recovery.total"))
    first.observe_span(end("a"))
    session.attach(FakeSystem(second))
    second.observe_span(start("b", "totem.rotation"))
    assert session._current_phase() == "totem.rotation"
    merged = session.merged_phases()
    assert merged["recovery.total"].spans == 1


def test_session_write_folded_guarantees_a_sample(tmp_path):
    session = ProfileSession()
    out = tmp_path / "short.folded"
    assert session.sampler.samples_taken == 0
    lines = session.write_folded(str(out))
    assert lines >= 1
    assert out.read_text().strip()
