"""Unit tests for the lease-window audit rule (synthetic streams).

The auditor shadows the leader-lease read fast path
(:mod:`repro.core.readfast`): every ``lease.read_served`` event must fall
inside the serving node's *installed* Totem ring.  Each test below feeds
a hand-built record stream straight into a live auditor and checks one
branch of the rule.
"""

from repro.obs.audit import LEASE_WINDOW, ConsistencyAuditor
from repro.simnet.trace import Tracer


def make_stream():
    tracer = Tracer(keep_records=True)
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    auditor = ConsistencyAuditor().bind(tracer)
    return tracer, auditor, clock


def _install(tracer, node, ring_id, members):
    tracer.emit("totem", "install", node=node, ring_id=ring_id,
                members=tuple(members))


def _serve(tracer, node, ring_id, group="store"):
    tracer.emit("lease", "read_served", node=node, ring_id=ring_id,
                group=group, conn="c", request_id=1)


def test_serve_inside_installed_ring_passes():
    tracer, auditor, _ = make_stream()
    _install(tracer, "s1", 2, ["s1", "s2"])
    _serve(tracer, "s1", 2)
    assert auditor.findings == []


def test_serve_during_gather_flagged():
    tracer, auditor, _ = make_stream()
    _install(tracer, "s1", 2, ["s1", "s2"])
    tracer.emit("totem", "gather", node="s1")
    _serve(tracer, "s1", 2)
    (finding,) = auditor.findings
    assert finding.invariant == LEASE_WINDOW
    assert "GATHER" in finding.detail


def test_serve_under_stale_ring_flagged():
    tracer, auditor, _ = make_stream()
    _install(tracer, "s1", 2, ["s1", "s2"])
    _install(tracer, "s1", 3, ["s1", "s2"])
    _serve(tracer, "s1", 2)
    (finding,) = auditor.findings
    assert finding.invariant == LEASE_WINDOW
    assert "installed ring is 3" in finding.detail


def test_serve_by_node_outside_its_ring_flagged():
    tracer, auditor, _ = make_stream()
    _install(tracer, "s1", 2, ["s2", "s3"])
    _serve(tracer, "s1", 2)
    (finding,) = auditor.findings
    assert finding.invariant == LEASE_WINDOW
    assert "outside its own ring" in finding.detail


def test_newer_ring_excluding_server_revokes_lease():
    # Cross-node evidence: the server's own install was never observed,
    # but a survivor installed a newer ring that excludes it — its lease
    # was revoked when that ring became operational.
    tracer, auditor, _ = make_stream()
    _install(tracer, "s2", 5, ["s2", "s3"])
    _serve(tracer, "s1", 4)
    (finding,) = auditor.findings
    assert finding.invariant == LEASE_WINDOW
    assert "ring 5" in finding.detail


def test_newer_ring_including_server_is_no_evidence():
    # A newer ring that still contains the server proves nothing about
    # *when* the serve happened relative to the transition; the rule only
    # fires on exclusion.
    tracer, auditor, _ = make_stream()
    _install(tracer, "s2", 5, ["s1", "s2", "s3"])
    _serve(tracer, "s1", 4)
    assert auditor.findings == []
