"""Unit tests for span emission, reconstruction, and nesting checks."""

from repro.obs.spans import SpanEmitter, SpanTracker
from repro.simnet.trace import NullTracer, Tracer


def make_tracer():
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    return tracer, clock


# ---------------------------------------------------------------------------
# SpanEmitter
# ---------------------------------------------------------------------------

def test_emitter_start_end_round_trip():
    tracer, clock = make_tracer()
    spans = SpanEmitter(tracer, node_id="n1")
    sid = spans.start("recovery.capture", span_id="t1/capture", group="g")
    clock["now"] = 1.5
    spans.end(sid, app_bytes=100)
    tracker = SpanTracker.from_tracer(tracer)
    [span] = tracker.spans
    assert span.span_id == "t1/capture"
    assert span.name == "recovery.capture"
    assert span.complete and span.duration == 1.5
    assert span.attrs["group"] == "g" and span.attrs["app_bytes"] == 100


def test_emitter_auto_ids_are_unique_per_emitter():
    tracer, _ = make_tracer()
    spans = SpanEmitter(tracer, node_id="n1")
    assert spans.start("a") != spans.start("a")


def test_emitter_duplicate_start_is_idempotent():
    tracer, _ = make_tracer()
    a = SpanEmitter(tracer, node_id="n1")
    b = SpanEmitter(tracer, node_id="n2")     # same tracer, other component
    a.start("recovery.xfer", span_id="t1/xfer")
    b.start("recovery.xfer", span_id="t1/xfer")
    assert tracer.count("span.span_start") == 1


def test_emitter_end_of_unknown_or_closed_span_is_dropped():
    tracer, _ = make_tracer()
    spans = SpanEmitter(tracer)
    spans.end("never-started")
    sid = spans.start("x")
    spans.end(sid)
    spans.end(sid)                            # double end
    assert tracer.count("span.span_end") == 1
    assert SpanTracker.from_tracer(tracer).orphan_ends == []


def test_emitter_cross_component_end():
    # A span started on one node can be ended by another emitter sharing
    # the tracer — the §5.1 wire-transfer span works exactly like this.
    tracer, clock = make_tracer()
    sender = SpanEmitter(tracer, node_id="s1")
    receiver = SpanEmitter(tracer, node_id="s2")
    sid = sender.start("recovery.xfer", span_id="t1/xfer@s1")
    clock["now"] = 0.004
    receiver.end(sid)
    [span] = SpanTracker.from_tracer(tracer).spans
    assert span.complete and span.duration == 0.004


def test_emitter_on_null_tracer_is_inert():
    null = NullTracer()
    spans = SpanEmitter(null, node_id="n1")
    sid = spans.start("x")
    spans.end(sid)
    assert null.records == [] and null.counters == {}
    assert null.open_spans is None


# ---------------------------------------------------------------------------
# SpanTracker
# ---------------------------------------------------------------------------

def test_tracker_parent_child_nesting():
    tracer, clock = make_tracer()
    spans = SpanEmitter(tracer)
    root = spans.start("recovery.total", span_id="t1")
    clock["now"] = 0.1
    child = spans.start("recovery.capture", span_id="t1/cap", parent=root)
    clock["now"] = 0.2
    spans.end(child)
    clock["now"] = 0.3
    spans.end(root)
    tracker = SpanTracker.from_tracer(tracer)
    assert [s.span_id for s in tracker.roots()] == ["t1"]
    assert [s.span_id for s in tracker.children("t1")] == ["t1/cap"]
    assert tracker.nesting_violations() == []
    assert tracker.named("recovery.capture")[0].duration == 0.1


def test_tracker_detects_nesting_violation():
    tracer, clock = make_tracer()
    spans = SpanEmitter(tracer)
    root = spans.start("a", span_id="r")
    child = spans.start("b", span_id="c", parent=root)
    clock["now"] = 1.0
    spans.end(root)
    clock["now"] = 2.0
    spans.end(child)                  # outlives its parent
    tracker = SpanTracker.from_tracer(tracer)
    assert [s.span_id for s in tracker.nesting_violations()] == ["c"]


def test_tracker_child_ending_with_parent_is_not_a_violation():
    tracer, clock = make_tracer()
    spans = SpanEmitter(tracer)
    root = spans.start("a", span_id="r")
    child = spans.start("b", span_id="c", parent=root)
    clock["now"] = 1.0
    spans.end(child)
    spans.end(root)                   # same instant: closed bounds
    assert SpanTracker.from_tracer(tracer).nesting_violations() == []


def test_tracker_unfinished_and_orphans():
    tracer, _ = make_tracer()
    tracer.emit("span", "span_start", span="open", name="x", parent=None)
    tracer.emit("span", "span_end", span="ghost")
    tracker = SpanTracker.from_tracer(tracer)
    assert [s.span_id for s in tracker.unfinished] == ["open"]
    assert len(tracker.orphan_ends) == 1
    assert tracker.orphan_ends[0].fields["span"] == "ghost"


def test_tracker_live_feed_via_subscription():
    tracer, _ = make_tracer()
    tracker = SpanTracker()
    tracer.subscribe(tracker.feed)
    spans = SpanEmitter(tracer)
    sid = spans.start("x")
    spans.end(sid)
    assert len(tracker.spans) == 1 and tracker.spans[0].complete


def test_tracker_ignores_non_span_records():
    tracer, _ = make_tracer()
    tracer.emit("recovery", "recovered", node="n1")
    tracer.emit("span", "span_start")         # missing span id
    assert SpanTracker.from_tracer(tracer).spans == []
