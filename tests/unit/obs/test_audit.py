"""Unit tests for the online consistency auditor (synthetic streams)."""

import pytest

from repro.obs.audit import (
    DUPLICATE_DELIVERY,
    ORDER_DIGEST,
    RECOVERY_WINDOW,
    SET_STATE_WINDOW,
    SPAN_STRUCTURE,
    STATE_DIGEST,
    AuditViolation,
    ConsistencyAuditor,
    state_digest,
)
from repro.obs.metrics import MetricsRegistry
from repro.simnet.trace import Tracer


def make_stream():
    """A live tracer/auditor pair with a controllable clock."""
    tracer = Tracer(keep_records=True)
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    auditor = ConsistencyAuditor().bind(tracer)
    return tracer, auditor, clock


# ---------------------------------------------------------------------------
# The digest helper
# ---------------------------------------------------------------------------

def test_state_digest_is_stable_and_content_sensitive():
    assert state_digest(b"abc") == state_digest(b"abc")
    assert state_digest(b"abc") != state_digest(b"abd")
    assert len(state_digest(b"")) == 16        # blake2b-8 hex


def test_state_digest_is_boundary_sensitive():
    # length prefixes make ("ab","c") and ("a","bc") distinct
    assert state_digest(b"ab", b"c") != state_digest(b"a", b"bc")
    assert state_digest(b"ab", b"c") != state_digest(b"abc")


# ---------------------------------------------------------------------------
# state-digest
# ---------------------------------------------------------------------------

def test_agreeing_responder_digests_pass():
    tracer, auditor, _ = make_stream()
    for node in ("s1", "s2", "s3"):
        tracer.emit("audit", "state_digest", node=node, group="g",
                    transfer="rec:g:s4:e0:1", role="responder",
                    digest=state_digest(b"same"))
    assert auditor.finish() == []


def test_disagreeing_digest_names_replica_and_span():
    tracer, auditor, _ = make_stream()
    tracer.emit("audit", "state_digest", node="s1", group="g",
                transfer="rec:g:s3:e0:1", role="responder",
                digest=state_digest(b"good"))
    tracer.emit("audit", "state_digest", node="s2", group="g",
                transfer="rec:g:s3:e0:1", role="responder",
                digest=state_digest(b"diverged"))
    (finding,) = auditor.findings
    assert finding.invariant == STATE_DIGEST
    assert finding.node == "s2"
    assert finding.group == "g"
    assert finding.span_id == "rec:g:s3:e0:1"
    assert "s1" in finding.detail


def test_digests_of_distinct_transfers_never_compared():
    tracer, auditor, _ = make_stream()
    tracer.emit("audit", "state_digest", node="s1", group="g",
                transfer="rec:g:s3:e0:1", digest=state_digest(b"one"))
    tracer.emit("audit", "state_digest", node="s1", group="g",
                transfer="rec:g:s3:e0:2", digest=state_digest(b"two"))
    tracer.emit("audit", "state_digest", node="s1", group="other",
                transfer="rec:g:s3:e0:1", digest=state_digest(b"three"))
    assert auditor.ok


# ---------------------------------------------------------------------------
# order-digest
# ---------------------------------------------------------------------------

def test_matching_order_digests_pass():
    tracer, auditor, _ = make_stream()
    for node in ("s1", "s2"):
        tracer.emit("audit", "order_digest", node=node, cfg="7:abcd1234",
                    base=0, seq=32, digest="deadbeef")
    assert auditor.ok
    assert auditor._order_checked == 2


def test_diverged_order_digest_flagged():
    tracer, auditor, _ = make_stream()
    tracer.emit("audit", "order_digest", node="s1", cfg="7:abcd1234",
                base=0, seq=32, digest="deadbeef")
    tracer.emit("audit", "order_digest", node="s2", cfg="7:abcd1234",
                base=0, seq=32, digest="0badf00d")
    (finding,) = auditor.findings
    assert finding.invariant == ORDER_DIGEST
    assert finding.node == "s2"
    assert finding.message_id == "seq:32"


def test_order_digests_scoped_to_ring_and_base():
    """Hashes from different rings (or different join points in the same
    ring) are incomparable and must not be cross-checked."""
    tracer, auditor, _ = make_stream()
    tracer.emit("audit", "order_digest", node="s1", cfg="7:aaaa0000",
                base=0, seq=32, digest="11111111")
    tracer.emit("audit", "order_digest", node="s2", cfg="8:bbbb0000",
                base=0, seq=32, digest="22222222")
    tracer.emit("audit", "order_digest", node="s3", cfg="7:aaaa0000",
                base=16, seq=32, digest="33333333")
    assert auditor.ok


# ---------------------------------------------------------------------------
# duplicate-delivery
# ---------------------------------------------------------------------------

def _deliver(tracer, request_id, *, node="s1", kind="REQUEST"):
    tracer.emit("replication", "delivered", node=node, group="g",
                conn="c->g", request_id=request_id, kind=kind)


def test_duplicate_operation_id_flagged():
    tracer, auditor, _ = make_stream()
    _deliver(tracer, 1)
    _deliver(tracer, 2)
    _deliver(tracer, 1)
    (finding,) = auditor.findings
    assert finding.invariant == DUPLICATE_DELIVERY
    assert finding.node == "s1"
    assert finding.message_id == "c->g#1/REQUEST"


def test_request_and_reply_with_same_id_are_distinct_operations():
    tracer, auditor, _ = make_stream()
    _deliver(tracer, 1, kind="REQUEST")
    _deliver(tracer, 1, kind="REPLY")
    assert auditor.ok


def test_new_incarnation_resets_the_duplicate_shadow():
    tracer, auditor, _ = make_stream()
    _deliver(tracer, 1)
    tracer.emit("replication", "binding_destroyed", node="s1", group="g")
    tracer.emit("replication", "binding_created", node="s1", group="g")
    _deliver(tracer, 1)        # fresh incarnation: not a duplicate
    assert auditor.ok


# ---------------------------------------------------------------------------
# quiesced windows
# ---------------------------------------------------------------------------

def test_execution_inside_recovery_window_flagged():
    tracer, auditor, clock = make_stream()
    tracer.emit("recovery", "sync_point", node="s1", group="g",
                transfer="rec:g:s1:e0:1")
    clock["now"] = 0.5
    tracer.emit("replica", "executed", node="s1", group="g",
                operation="echo")
    (finding,) = auditor.findings
    assert finding.invariant == RECOVERY_WINDOW
    assert finding.span_id == "rec:g:s1:e0:1"
    assert "echo" in finding.detail


def test_execution_after_recovered_passes():
    tracer, auditor, _ = make_stream()
    tracer.emit("recovery", "sync_point", node="s1", group="g",
                transfer="rec:g:s1:e0:1")
    tracer.emit("replica", "set_state", node="s1", group="g", size=10)
    tracer.emit("recovery", "recovered", node="s1", group="g")
    tracer.emit("replica", "executed", node="s1", group="g",
                operation="echo")
    assert auditor.ok


def test_set_state_outside_any_window_flagged():
    tracer, auditor, _ = make_stream()
    tracer.emit("replica", "set_state", node="s1", group="g", size=10)
    (finding,) = auditor.findings
    assert finding.invariant == SET_STATE_WINDOW
    assert finding.node == "s1"


def test_failover_window_admits_set_state():
    tracer, auditor, _ = make_stream()
    tracer.emit("recovery", "failover_begin", node="s2", group="g")
    tracer.emit("replica", "set_state", node="s2", group="g", size=10)
    tracer.emit("recovery", "recovered", node="s2", group="g")
    assert auditor.ok


def test_checkpoint_grants_admit_and_are_capped():
    tracer, auditor, _ = make_stream()
    for _ in range(5):          # grants cap at 2 — stale ones must not pool
        tracer.emit("recovery", "checkpoint_logged", node="s2", group="g")
    tracer.emit("replica", "set_state", node="s2", group="g", size=10)
    tracer.emit("replica", "set_state", node="s2", group="g", size=10)
    assert auditor.ok
    tracer.emit("replica", "set_state", node="s2", group="g", size=10)
    (finding,) = auditor.findings
    assert finding.invariant == SET_STATE_WINDOW


# ---------------------------------------------------------------------------
# span-structure and lifecycle
# ---------------------------------------------------------------------------

def test_orphan_span_end_flagged_at_finish():
    tracer, auditor, _ = make_stream()
    tracer.emit("span", "span_end", span="never-started")
    assert auditor.ok                        # streaming phase stays silent
    findings = auditor.finish()
    assert [f.invariant for f in findings] == [SPAN_STRUCTURE]
    assert findings[0].span_id == "never-started"


def test_spans_open_before_bind_are_not_orphans():
    """Attaching mid-stream: ends of spans that started before the
    subscription must not be flagged."""
    tracer = Tracer(keep_records=True)
    tracer.bind_clock(lambda: 0.0)
    # SpanRecorder maintains tracer.open_spans for real emitters; mimic it
    tracer.emit("span", "span_start", span="old", name="rpc")
    tracer.open_spans.add("old")
    auditor = ConsistencyAuditor().bind(tracer)
    tracer.open_spans.discard("old")
    tracer.emit("span", "span_end", span="old")
    assert auditor.finish() == []


def test_unfinished_spans_are_not_findings():
    tracer, auditor, _ = make_stream()
    tracer.emit("span", "span_start", span="abandoned", name="recovery")
    assert auditor.finish() == []


def test_finish_is_idempotent_and_raises_in_hard_fail_mode():
    tracer, auditor, _ = make_stream()
    tracer.emit("span", "span_end", span="orphan")
    assert len(auditor.finish()) == 1
    assert len(auditor.finish()) == 1        # not double-counted
    with pytest.raises(AuditViolation) as excinfo:
        auditor.finish(raise_on_findings=True)
    assert SPAN_STRUCTURE in str(excinfo.value)


def test_findings_feed_the_metrics_registry():
    registry = MetricsRegistry()
    tracer = Tracer(keep_records=True)
    tracer.bind_clock(lambda: 0.0)
    auditor = ConsistencyAuditor(metrics=registry).bind(tracer)
    tracer.emit("replica", "set_state", node="s1", group="g", size=1)
    assert registry.counter("audit.findings",
                            invariant=SET_STATE_WINDOW).value == 1
    auditor.finish()
    assert registry.gauge("audit.ok").value == 0.0


def test_from_records_replays_a_retained_trace():
    tracer, live, _ = make_stream()
    tracer.emit("replica", "set_state", node="s1", group="g", size=1)
    replayed = ConsistencyAuditor.from_records(tracer.records)
    assert len(replayed.findings) == len(live.findings) == 1
    assert replayed.records_scanned == len(tracer.records)


def test_summary_mentions_status_and_findings():
    tracer, auditor, _ = make_stream()
    assert "OK" in auditor.summary()
    tracer.emit("replica", "set_state", node="s1", group="g", size=1)
    summary = auditor.summary()
    assert "VIOLATED" in summary and SET_STATE_WINDOW in summary
