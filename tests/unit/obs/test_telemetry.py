"""Unit tests for the telemetry plane: flight recorder, metrics history,
queue-depth polling, ``top`` rendering, and the crash hooks."""

import json
import sys

import pytest

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import load_trace_jsonl
from repro.obs.telemetry import (
    GLOBAL_LANE,
    FlightRecorder,
    MetricsHistory,
    TelemetryConfig,
    TelemetryPlane,
    install_crash_hooks,
    render_top,
)
from repro.simnet.trace import Tracer


def make_recorder(**overrides):
    config = TelemetryConfig(**overrides)
    clock = {"now": 0.0}
    recorder = FlightRecorder(config, lambda: clock["now"])
    tracer = Tracer()
    tracer.bind_clock(lambda: clock["now"])
    tracer.subscribe(recorder.note)
    return recorder, tracer, clock


# ---------------------------------------------------------------------------
# FlightRecorder: rings, trimming, auto-dump
# ---------------------------------------------------------------------------

def test_rings_partition_by_node_and_merge_with_global_lane():
    recorder, tracer, clock = make_recorder(flight_exclude=())
    tracer.emit("admin", "group_created", group="g")          # no node
    clock["now"] = 1.0
    tracer.emit("replica", "executed", node="s1", seq=1)
    clock["now"] = 2.0
    tracer.emit("replica", "executed", node="s2", seq=2)
    s1 = recorder.records_for("s1")
    assert [(r.category, r.event) for r in s1] == [
        ("admin", "group_created"), ("replica", "executed")]
    assert s1[-1].fields["node"] == "s1"
    # The global lane alone: only the node-less records.
    assert [r.category for r in recorder.records_for(GLOBAL_LANE)] == \
        ["admin"]


def test_ring_keeps_at_least_capacity_most_recent_records():
    recorder, tracer, _ = make_recorder(flight_capacity=8,
                                        flight_exclude=())
    for seq in range(100):
        tracer.emit("replica", "executed", node="s1", seq=seq)
    kept = [r.fields["seq"] for r in recorder.records_for("s1")]
    # Batch trimming retains *at least* the last ``capacity`` records and
    # reads return exactly the newest ``capacity`` of them, in order.
    assert kept == list(range(92, 100))


def test_crash_record_auto_dumps_the_dead_nodes_ring(tmp_path):
    recorder, tracer, clock = make_recorder(flight_dir=str(tmp_path),
                                            flight_exclude=())
    tracer.emit("replica", "executed", node="s1", seq=1)
    tracer.emit("replica", "executed", node="s2", seq=2)
    clock["now"] = 3.0
    tracer.emit("fault", "crash", node="s1")
    (dump,) = recorder.dumps
    assert dump.node == "s1" and dump.reason == "crash"
    assert dump.time == 3.0
    # The dump holds s1's history (crash record included), not s2's.
    events = [(r.category, r.fields.get("node")) for r in dump.records]
    assert ("replica", "s1") in events and ("fault", "s1") in events
    assert all(node != "s2" for _, node in events)
    # … and landed on disk in the stitchable JSONL format.
    assert dump.path is not None
    reloaded = load_trace_jsonl(dump.path)
    assert [(r.category, r.event) for r in reloaded] == \
        [(r.category, r.event) for r in dump.records]


def test_audit_finding_rings_a_record_and_dumps():
    recorder, tracer, _ = make_recorder()

    class Finding:
        node = "s2"
        time = 1.5
        invariant = "same-order"
        detail = "divergent digest"

    tracer.emit("replica", "executed", node="s2", seq=9)
    recorder.record_finding(Finding())
    (dump,) = recorder.dumps
    assert dump.node == "s2" and dump.reason == "audit_violation"
    finding = dump.records[-1]
    assert (finding.category, finding.event) == ("audit", "finding")
    assert finding.fields["invariant"] == "same-order"


def test_dump_all_covers_every_node_or_global_lane(tmp_path):
    recorder, tracer, _ = make_recorder(flight_dir=str(tmp_path))
    tracer.emit("replica", "executed", node="s1")
    tracer.emit("replica", "executed", node="s2")
    dumps = recorder.dump_all("shutdown")
    assert [d.node for d in dumps] == ["s1", "s2"]
    assert all(d.path and d.reason == "shutdown" for d in dumps)
    # A recorder that saw only node-less records dumps the global lane.
    empty, tracer2, _ = make_recorder()
    tracer2.emit("admin", "group_created", group="g")
    assert [d.node for d in empty.dump_all()] == [GLOBAL_LANE]


# ---------------------------------------------------------------------------
# FlightRecorder: admission filtering
# ---------------------------------------------------------------------------

def test_flight_exclude_skips_categories_and_single_events():
    recorder, tracer, _ = make_recorder(
        flight_exclude=("net", "totem.deliver"))
    tracer.emit("net", "unicast", node="s1")           # whole category
    tracer.emit("totem", "deliver", node="s1")         # one event
    tracer.emit("totem", "frame", node="s1")           # same category, kept
    kept = [(r.category, r.event) for r in recorder.records_for("s1")]
    assert kept == [("totem", "frame")]


def test_flight_exclude_whole_category_wins_over_event_entries():
    recorder, _, _ = make_recorder(
        flight_exclude=("totem.deliver", "totem", "totem.frame"))
    assert recorder._skip["totem"] is True


def test_default_exclusions_drop_fanout_but_keep_causal_stream():
    recorder, tracer, _ = make_recorder()     # default flight_exclude
    tracer.emit("totem", "deliver", node="s1", seq=1)
    tracer.emit("net", "unicast", node="s1")
    tracer.emit("replication", "duplicate", node="s1")
    tracer.emit("replication", "delivered", node="s1", kind="REQUEST")
    kept = [(r.category, r.event) for r in recorder.records_for("s1")]
    assert kept == [("replication", "delivered")]


# ---------------------------------------------------------------------------
# MetricsHistory
# ---------------------------------------------------------------------------

def test_history_counters_sample_as_deltas():
    metrics = MetricsRegistry()
    history = MetricsHistory(metrics, capacity=8)
    metrics.counter("requests", node="s1").inc(5)
    history.sample(1.0)
    metrics.counter("requests", node="s1").inc(2)
    history.sample(2.0)
    key = MetricsHistory.series_key("requests", {"node": "s1"})
    assert history.series(key) == [[1.0, 5.0], [2.0, 2.0]]


def test_history_counter_reset_yields_zero_delta_not_negative():
    metrics = MetricsRegistry()
    history = MetricsHistory(metrics, capacity=8)
    counter = metrics.counter("requests", node="s1")
    counter.inc(10)
    history.sample(1.0)
    # A rebuilt registry (e.g. after ``spawn_empty``) restarts from zero:
    # the next delta must clamp at 0, never go negative.
    fresh = MetricsRegistry()
    fresh.counter("requests", node="s1").inc(3)
    history._metrics = fresh
    history.sample(2.0)
    key = MetricsHistory.series_key("requests", {"node": "s1"})
    assert history.series(key) == [[1.0, 10.0], [2.0, 0.0]]


def test_history_gauges_and_histograms_and_capacity_bound():
    metrics = MetricsRegistry()
    history = MetricsHistory(metrics, capacity=3)
    gauge = metrics.gauge("depth", node="s1")
    metrics.histogram("lat", node="s1").record(0.5)
    for tick in range(5):
        gauge.set(tick)
        history.sample(float(tick))
    gauge_key = MetricsHistory.series_key("depth", {"node": "s1"})
    # Ring capacity: only the newest 3 points survive.
    assert history.series(gauge_key) == [[2.0, 2.0], [3.0, 3.0],
                                         [4.0, 4.0]]
    hist_key = MetricsHistory.series_key("lat", {"node": "s1"})
    last = history.series(hist_key)[-1]
    assert last[0] == 4.0 and last[1] == pytest.approx(0.5, rel=0.1)
    assert last[3] == 1          # count rides along
    snapshot = history.snapshot()
    assert snapshot["series"][gauge_key]["kind"] == "gauge"
    assert snapshot["series"][hist_key]["labels"] == {"node": "s1"}
    json.dumps(snapshot)         # the /metrics/history body is plain data


# ---------------------------------------------------------------------------
# TelemetryPlane on a running system
# ---------------------------------------------------------------------------

def deploy(**telemetry_overrides):
    return build_client_server(
        style=ReplicationStyle.ACTIVE, server_replicas=2, state_size=100,
        warmup=0.3, telemetry=TelemetryConfig(**telemetry_overrides))


def test_plane_polls_queue_depth_gauges_and_samples_series():
    system = deploy(sample_interval=0.1).system
    snapshot = system.telemetry.history.snapshot()
    series = snapshot["series"]
    named = {key.split("{", 1)[0] for key in series}
    assert {"totem.send_queue_depth", "totem.retransmit_buffer",
            "totem.reassembly_pending", "eternal.outstanding_invocations",
            "eternal.recovery_queue_depth"} <= named
    # The sampler ran repeatedly during the warmup …
    depth_series = next(points for key, slot in series.items()
                        for points in [slot["points"]]
                        if key.startswith("totem.send_queue_depth"))
    assert len(depth_series) >= 2
    # … and dead nodes stop being polled: their gauges freeze at the
    # last pre-kill value (sampling continues, recording the frozen
    # value — the post-mortem keeps its final reading).
    system.kill_node("s1")
    frozen = system.metrics.gauge("totem.send_queue_depth",
                                  node="s1").value
    system.run_for(0.5)
    assert system.metrics.gauge("totem.send_queue_depth",
                                node="s1").value == frozen


def test_disabled_plane_neither_rings_nor_samples():
    system = deploy(enabled=False).system
    assert system.telemetry.flight._rings == {}
    assert system.telemetry.history.snapshot() == {"series": {}}


def test_kill_produces_flight_dump_with_recent_context():
    deployment = deploy()
    system = deployment.system
    system.run_for(0.2)
    system.kill_node("s2")
    dumps = [d for d in system.telemetry.flight.dumps if d.node == "s2"]
    assert dumps and dumps[-1].reason == "crash"
    categories = {r.category for r in dumps[-1].records}
    assert "replication" in categories     # causal stream pre-crash
    assert ("fault", "crash") in {(r.category, r.event)
                                  for r in dumps[-1].records}


def test_render_top_tabulates_latest_sample_per_node():
    system = deploy().system
    out = render_top(system.telemetry.history.snapshot())
    lines = out.splitlines()
    assert "node" in lines[0] and "sendq" in lines[0]
    nodes = {line.split()[0] for line in lines[2:-1]}
    assert {"s1", "s2"} <= nodes
    assert "latest sample at" in lines[-1]


def test_render_top_on_empty_snapshot():
    assert render_top({"series": {}}).count("\n") == 1     # header + rule


# ---------------------------------------------------------------------------
# Crash hooks
# ---------------------------------------------------------------------------

def make_plane(**overrides):
    tracer = Tracer()
    tracer.bind_clock(lambda: 0.0)
    return TelemetryPlane(TelemetryConfig(**overrides), tracer=tracer,
                          metrics=MetricsRegistry(),
                          clock=lambda: 0.0), tracer


def test_crash_hooks_dump_once_on_exception_and_uninstall_restores():
    plane, tracer = make_plane()
    tracer.emit("replica", "executed", node="s1")
    seen = []
    previous_hook = sys.excepthook
    chained = []

    def recorder_hook(*exc):
        chained.append(exc)

    sys.excepthook = recorder_hook
    try:
        uninstall = install_crash_hooks(plane, on_dump=seen.extend)
        assert sys.excepthook is not recorder_hook
        sys.excepthook(ValueError, ValueError("boom"), None)
        assert [d.reason for d in seen] == ["exception"]
        assert chained, "previous excepthook must still run"
        # Second trigger: already dumped, no duplicates.
        sys.excepthook(ValueError, ValueError("again"), None)
        assert len(seen) == 1
        uninstall()
        assert sys.excepthook is recorder_hook
    finally:
        sys.excepthook = previous_hook


def test_uninstall_before_any_dump_suppresses_atexit_dump():
    plane, tracer = make_plane()
    tracer.emit("replica", "executed", node="s1")
    seen = []
    previous_hook = sys.excepthook
    try:
        uninstall = install_crash_hooks(plane, on_dump=seen.extend)
        uninstall()
        assert sys.excepthook is previous_hook
        # The hooks treat the orderly uninstall as "already dumped":
        # nothing fired, and a later atexit pass will not dump either.
        assert seen == []
        assert plane.flight.dumps == []
    finally:
        sys.excepthook = previous_hook
