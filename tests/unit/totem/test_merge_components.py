"""Unit tests for the healed-partition merge component analysis."""

from repro.totem.member import TotemMember
from repro.totem.messages import JoinMsg


def join(sender, view, fresh=False, ring=1, aru=0):
    return JoinMsg(sender=sender, ring_id_seen=ring, delivered_aru=aru,
                   held=frozenset(), fresh=fresh,
                   view_members=tuple(view))


def components(joins):
    return TotemMember._view_components(joins)


def test_single_ring_is_one_component():
    comps = components([join("a", ["a", "b"]), join("b", ["a", "b"])])
    assert len(comps) == 1


def test_disjoint_views_split():
    comps = components([
        join("a", ["a", "b"]), join("b", ["a", "b"]),
        join("c", ["c", "d"]), join("d", ["c", "d"]),
    ])
    assert len(comps) == 2
    sides = sorted(sorted(j.sender for j in comp) for comp in comps)
    assert sides == [["a", "b"], ["c", "d"]]


def test_lagging_member_connects_via_stale_view():
    """A member one ring generation behind still lists current members in
    its (stale) view — same history, one component."""
    comps = components([
        join("a", ["a", "b"], ring=6),
        join("b", ["a", "b"], ring=6),
        join("c", ["a", "b", "c"], ring=5),     # lagging, overlapping view
    ])
    assert len(comps) == 1


def test_viewless_join_connects_to_anything():
    comps = components([
        join("a", ["a", "b"]),
        join("x", []),           # never installed a ring: cannot diverge
    ])
    assert len(comps) == 1


def test_singleton_partition_detected():
    comps = components([
        join("a", ["a", "b", "c"]),
        join("b", ["a", "b", "c"]),
        join("z", ["z"]),        # reformed alone: disjoint history
    ])
    assert len(comps) == 2


def test_bridge_join_merges_components():
    """A view spanning both sides (observed mid-reformation) unifies them —
    conservative: they share a lineage."""
    comps = components([
        join("a", ["a", "b"]),
        join("c", ["c", "d"]),
        join("e", ["a", "e", "c"]),   # bridges both
    ])
    assert len(comps) == 1


def test_empty_input():
    assert components([]) == []
