"""Unit tests for message fragmentation and reassembly."""

import pytest

from repro.errors import FragmentationError
from repro.totem.fragmentation import Fragmenter, Reassembler


def test_small_payload_single_fragment():
    frags = Fragmenter("n", 100).fragment(b"hello")
    assert len(frags) == 1
    msg_id, index, count, chunk = frags[0]
    assert (index, count, chunk) == (0, 1, b"hello")


def test_empty_payload_still_one_fragment():
    frags = Fragmenter("n", 100).fragment(b"")
    assert len(frags) == 1
    assert frags[0][3] == b""


def test_large_payload_splits_at_max_chunk():
    frags = Fragmenter("n", 10).fragment(b"x" * 25)
    assert [len(f[3]) for f in frags] == [10, 10, 5]
    assert [f[1] for f in frags] == [0, 1, 2]
    assert all(f[2] == 3 for f in frags)


def test_exact_multiple_has_no_empty_tail():
    frags = Fragmenter("n", 10).fragment(b"x" * 20)
    assert [len(f[3]) for f in frags] == [10, 10]


def test_msg_ids_are_unique_and_ordered():
    fragmenter = Fragmenter("n", 10)
    first = fragmenter.fragment(b"a")[0][0]
    second = fragmenter.fragment(b"b")[0][0]
    assert first != second
    assert first[0] == second[0] == "n"
    assert second[1] > first[1]


def test_fragment_count_helper():
    assert Fragmenter.fragment_count(0, 10) == 1
    assert Fragmenter.fragment_count(10, 10) == 1
    assert Fragmenter.fragment_count(11, 10) == 2
    assert Fragmenter.fragment_count(350_000, 1468) == 239


def test_invalid_max_chunk_rejected():
    with pytest.raises(FragmentationError):
        Fragmenter("n", 0)


def test_reassembly_roundtrip():
    fragmenter = Fragmenter("n", 7)
    reassembler = Reassembler()
    payload = bytes(range(100))
    result = None
    for msg_id, index, count, chunk in fragmenter.fragment(payload):
        result = reassembler.add(msg_id, index, count, chunk)
    assert result == payload
    assert reassembler.pending == 0


def test_single_fragment_returns_immediately():
    assert Reassembler().add(("n", 1), 0, 1, b"x") == b"x"


def test_incomplete_message_returns_none():
    reassembler = Reassembler()
    assert reassembler.add(("n", 1), 0, 3, b"a") is None
    assert reassembler.pending == 1


def test_interleaved_messages_reassemble_independently():
    reassembler = Reassembler()
    assert reassembler.add(("n", 1), 0, 2, b"a") is None
    assert reassembler.add(("m", 9), 0, 2, b"x") is None
    assert reassembler.add(("n", 1), 1, 2, b"b") == b"ab"
    assert reassembler.add(("m", 9), 1, 2, b"y") == b"xy"


def test_mid_message_joiner_skips_message():
    """A fresh member whose first fragment of a message has index > 0 must
    skip that message entirely (Eternal restores its state instead)."""
    reassembler = Reassembler()
    assert reassembler.add(("n", 1), 2, 4, b"c") is None
    assert reassembler.add(("n", 1), 3, 4, b"d") is None
    assert reassembler.pending == 0
    # the next message from the same origin works normally
    assert reassembler.add(("n", 2), 0, 1, b"ok") == b"ok"


def test_mid_message_joiner_last_fragment_only():
    reassembler = Reassembler()
    assert reassembler.add(("n", 1), 3, 4, b"d") is None
    assert reassembler.add(("n", 2), 0, 1, b"ok") == b"ok"


def test_bad_indices_rejected():
    reassembler = Reassembler()
    with pytest.raises(FragmentationError):
        reassembler.add(("n", 1), 0, 0, b"")
    with pytest.raises(FragmentationError):
        reassembler.add(("n", 1), 5, 3, b"")
    with pytest.raises(FragmentationError):
        reassembler.add(("n", 1), 1, 1, b"")


def test_regressed_index_rejected():
    reassembler = Reassembler()
    reassembler.add(("n", 1), 0, 3, b"a")
    reassembler.add(("n", 1), 1, 3, b"b")
    with pytest.raises(FragmentationError):
        reassembler.add(("n", 1), 3, 3, b"d")
