"""Unit tests for Totem configuration validation and ring behaviours
driven by configuration (burst window, GC)."""

import pytest

from repro.simnet.endpoint import Endpoint
from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.totem.config import TotemConfig
from repro.totem.member import TotemMember


def test_defaults_valid():
    config = TotemConfig()
    assert config.token_timeout > config.token_hold


def test_token_timeout_must_exceed_hold():
    with pytest.raises(ValueError):
        TotemConfig(token_hold=0.05, token_timeout=0.01)


def test_max_burst_validated():
    with pytest.raises(ValueError):
        TotemConfig(max_burst=0)


def build_pair(config):
    scheduler = Scheduler()
    network = Network(scheduler)
    delivered = {"A": [], "B": []}
    members = {}
    for node in ("A", "B"):
        endpoint = Endpoint(Process(scheduler, node), network)
        members[node] = TotemMember(
            endpoint, config,
            on_deliver=lambda o, p, n=node: delivered[n].append(p),
        )
    return scheduler, members, delivered


def test_burst_window_paces_large_backlogs():
    """With max_burst=4, a 12-message backlog takes 3 token visits."""
    config = TotemConfig(max_burst=4)
    scheduler, members, delivered = build_pair(config)
    scheduler.run_until(0.05)
    for i in range(12):
        members["A"].multicast(bytes([i]))
    # after one immediate visit at most 4 messages are out
    scheduler.run_until(0.0502)
    assert len(delivered["B"]) <= 4
    scheduler.run_until(0.2)
    assert len(delivered["B"]) == 12
    assert delivered["A"] == delivered["B"]


def test_retained_messages_garbage_collected():
    config = TotemConfig(retain_safe_slack=8)
    scheduler, members, delivered = build_pair(config)
    scheduler.run_until(0.05)
    for i in range(200):
        members["A"].multicast(bytes([i % 256]))
    scheduler.run_until(0.5)
    # all delivered, and held buffers pruned down to the slack window
    assert len(delivered["B"]) == 200
    for member in members.values():
        assert len(member._held) <= 8 + config.max_burst + 4


def test_probe_interval_controls_probe_traffic():
    from repro.simnet.trace import Tracer
    config = TotemConfig(probe_interval=0.005)
    scheduler, members, delivered = build_pair(config)
    scheduler.run_until(0.5)
    # ~100 probes in 0.5 s at 5 ms; allow a broad band
    # (count via the network: probes are the only broadcast when idle
    # besides join/form during formation)
    # Instead assert the ring stays operational (probes are harmless).
    assert all(m.operational for m in members.values())
