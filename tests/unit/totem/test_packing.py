"""Edge cases for token-rotation frame packing.

Packing coalesces queued sub-MTU fragments into one multi-payload DATA
frame per token visit; these tests pin the boundary behaviours — empty
payloads, frames filled to exactly the MTU, ring changes racing in-flight
packed frames — and the reassembly-buffer eviction that rides along.
"""

from repro.runtime.trace import Tracer
from repro.totem.config import TotemConfig
from repro.totem.fragmentation import Reassembler
from repro.totem.messages import DATA_HEADER, PACKED_SUBHEADER

from .test_member import Ring


def _traced_ring(**kwargs):
    ring = Ring(**kwargs)
    tracer = Tracer()
    tracer.bind_clock(lambda: ring.scheduler.now)
    for member in ring.members.values():
        member.tracer = tracer
    return ring, tracer


def _packed_events(tracer):
    return [r for r in tracer.records
            if r.category == "totem" and r.event == "packed_frame"]


def test_burst_of_small_messages_packs_into_few_frames():
    ring, tracer = _traced_ring()
    ring.run(0.1)
    for i in range(12):
        ring.members["A"].multicast(b"m%d" % i)
    ring.run(0.3)
    packed = _packed_events(tracer)
    assert packed, "a burst of tiny messages should coalesce"
    # all 12 messages delivered everywhere, in one total order
    sequences = [ring.delivered[n] for n in "ABC"]
    assert sequences[0] == sequences[1] == sequences[2]
    assert [p for _, p in sequences[0]] == [b"m%d" % i for i in range(12)]


def test_empty_payload_travels_through_packing():
    ring, _ = _traced_ring()
    ring.run(0.1)
    ring.members["A"].multicast(b"")
    ring.members["A"].multicast(b"x")
    ring.members["A"].multicast(b"")
    ring.run(0.2)
    for node_id in "ABC":
        assert [p for _, p in ring.delivered[node_id]] == [b"", b"x", b""]


def test_payload_exactly_filling_packed_frame():
    ring, tracer = _traced_ring()
    ring.run(0.1)
    mtu = ring.members["A"].endpoint.mtu_payload
    # Two chunks sized so the packed frame hits the MTU exactly:
    # header + 2 sub-headers + a + b == mtu.
    budget = mtu - DATA_HEADER - 2 * PACKED_SUBHEADER
    a, b = 1000, budget - 1000
    ring.members["A"].multicast(b"\x01" * a)
    ring.members["A"].multicast(b"\x02" * b)
    ring.run(0.2)
    exact = [r for r in _packed_events(tracer) if r.fields["size"] == mtu]
    assert exact and exact[0].fields["payloads"] == 2
    for node_id in "ABC":
        assert [p for _, p in ring.delivered[node_id]] == \
            [b"\x01" * a, b"\x02" * b]


def test_full_mtu_fragment_stays_classic():
    # A fragment already at max_chunk cannot absorb the packed sub-header;
    # it must go out as a classic DataMsg, not an over-MTU packed frame.
    ring, tracer = _traced_ring()
    ring.run(0.1)
    mtu = ring.members["A"].endpoint.mtu_payload
    payload = b"\x03" * (3 * (mtu - DATA_HEADER))    # 3 full fragments
    ring.members["A"].multicast(payload)
    ring.run(0.2)
    assert _packed_events(tracer) == []
    for node_id in "ABC":
        assert ring.delivered[node_id] == [("A", payload)]


def test_packed_frames_spanning_ring_change():
    # A burst is queued, then a member crashes while the packed frames are
    # still circulating: survivors must agree on one gap-free total order.
    ring, _ = _traced_ring(seed=5)
    ring.run(0.1)
    for i in range(20):
        ring.members["A"].multicast(b"s%d" % i)
    ring.faults.crash("C")
    ring.run(0.6)
    assert ring.all_operational(["A", "B"])
    assert ring.delivered["A"] == ring.delivered["B"]
    payloads = [p for _, p in ring.delivered["A"]]
    assert payloads == [b"s%d" % i for i in range(20)]


def test_packing_disabled_restores_classic_frames():
    ring, tracer = _traced_ring(config=TotemConfig(frame_packing=False))
    ring.run(0.1)
    for i in range(8):
        ring.members["A"].multicast(b"c%d" % i)
    ring.run(0.2)
    assert _packed_events(tracer) == []
    for node_id in "ABC":
        assert [p for _, p in ring.delivered[node_id]] == \
            [b"c%d" % i for i in range(8)]


def test_departed_sender_partials_evicted_at_install():
    # A partial message from a sender that then leaves the ring can never
    # complete; installation of the new ring must drop it so the
    # reassembly gauge (eternal_totem_partial_count) returns to zero.
    ring, tracer = _traced_ring()
    ring.run(0.1)
    member = ring.members["B"]
    member._reassembler.add(("C", 99), 0, 3, b"orphaned")
    assert member.reassembly_pending == 1
    ring.faults.crash("C")
    ring.run(0.5)
    assert ring.all_operational(["A", "B"])
    assert member.reassembly_pending == 0
    evictions = [r for r in tracer.records
                 if r.category == "totem" and r.event == "reassembly_evicted"
                 and r.fields["node"] == "B"]
    assert evictions and evictions[-1].fields["count"] == 1


def test_reassembler_evicts_only_absent_origins():
    reasm = Reassembler()
    assert reasm.add(("gone", 1), 0, 3, b"g0") is None
    assert reasm.add(("kept", 1), 0, 2, b"k0") is None
    assert reasm.pending == 2
    assert reasm.evict_absent_origins(["kept", "other"]) == 1
    assert reasm.pending == 1
    # the surviving partial still completes
    assert reasm.add(("kept", 1), 1, 2, b"k1") == b"k0k1"
    # idempotent when nothing is stale
    assert reasm.evict_absent_origins(["kept"]) == 0
