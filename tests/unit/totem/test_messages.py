"""Unit tests for Totem wire messages (size accounting)."""

from repro.totem.messages import DataMsg, FormMsg, JoinMsg, Token


def test_data_msg_size_tracks_chunk():
    small = DataMsg(1, 1, "n", ("n", 1), 0, 1, b"x")
    large = DataMsg(1, 1, "n", ("n", 1), 0, 1, b"x" * 1000)
    assert large.size_bytes - small.size_bytes == 999


def test_token_size_grows_with_rtr():
    empty = Token(1, 10, 5)
    loaded = Token(1, 10, 5, rtr=[6, 7, 8])
    assert loaded.size_bytes == empty.size_bytes + 24


def test_join_size_uses_run_length_ranges():
    contiguous = JoinMsg("n", 1, 10, frozenset(range(11, 111)), False)
    holey = JoinMsg("n", 1, 10, frozenset(range(11, 111, 2)), False)
    assert contiguous._range_count() == 1
    assert holey._range_count() == 50
    assert contiguous.size_bytes < holey.size_bytes


def test_join_empty_held():
    join = JoinMsg("n", 1, 10, frozenset(), True)
    assert join._range_count() == 0


def test_join_stays_under_ethernet_mtu_for_contiguous_history():
    join = JoinMsg("n", 1, 10_000, frozenset(range(5000, 10_001)), False)
    assert join.size_bytes < 1500


def test_form_size_scales_with_members_and_holders():
    small = FormMsg(2, "a", ("a", "b"), 10, 10, {})
    big = FormMsg(2, "a", ("a", "b", "c"), 10, 10, {5: "a", 6: "b"})
    assert big.size_bytes > small.size_bytes


def test_data_msg_retransmit_flag_default_false():
    assert DataMsg(1, 1, "n", ("n", 1), 0, 1, b"").retransmit is False
