"""Unit/behaviour tests for the Totem ring member state machine."""

import pytest

from repro.errors import NotInRing, TotemError
from repro.simnet.endpoint import Endpoint
from repro.simnet.faults import FaultInjector
from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.totem.config import TotemConfig
from repro.totem.member import MemberState, TotemMember


class Ring:
    """A small harness around N ring members."""

    def __init__(self, node_ids=("A", "B", "C"), config=None, seed=0):
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler)
        self.faults = FaultInjector(self.network, seed=seed)
        self.config = config or TotemConfig()
        self.delivered = {n: [] for n in node_ids}
        self.views = {n: [] for n in node_ids}
        self.members = {}
        for node_id in node_ids:
            self._spawn(node_id)

    def _spawn(self, node_id):
        process = Process(self.scheduler, node_id)
        endpoint = Endpoint(process, self.network)
        self.members[node_id] = TotemMember(
            endpoint, self.config,
            on_deliver=lambda origin, payload, n=node_id:
                self.delivered[n].append((origin, payload)),
            on_view_change=lambda view, n=node_id:
                self.views[n].append(view),
        )
        return self.members[node_id]

    def respawn(self, node_id):
        """Re-launch a crashed node with a fresh (history-less) member."""
        process = self.network.process(node_id)
        process.restart()
        endpoint = Endpoint(process, self.network)
        return self._spawn(node_id)

    def run(self, duration):
        self.scheduler.run_until(self.scheduler.now + duration)

    def all_operational(self, node_ids=None):
        nodes = node_ids or list(self.members)
        return all(self.members[n].operational for n in nodes)


def test_ring_forms_from_cold_start():
    ring = Ring()
    ring.run(0.1)
    assert ring.all_operational()
    views = {ring.members[n].view for n in ring.members}
    assert len(views) == 1
    assert set(next(iter(views)).members) == {"A", "B", "C"}


def test_single_node_ring():
    ring = Ring(node_ids=("solo",))
    ring.run(0.1)
    member = ring.members["solo"]
    assert member.operational
    member.multicast(b"note")
    ring.run(0.1)
    assert ring.delivered["solo"] == [("solo", b"note")]


def test_multicast_delivered_to_all_in_same_order():
    ring = Ring()
    ring.run(0.1)
    ring.members["A"].multicast(b"1")
    ring.members["B"].multicast(b"2")
    ring.members["C"].multicast(b"3")
    ring.members["A"].multicast(b"4")
    ring.run(0.2)
    sequences = [ring.delivered[n] for n in "ABC"]
    assert sequences[0] == sequences[1] == sequences[2]
    assert len(sequences[0]) == 4


def test_sender_receives_own_message():
    ring = Ring()
    ring.run(0.1)
    ring.members["A"].multicast(b"self")
    ring.run(0.1)
    assert ("A", b"self") in ring.delivered["A"]


def test_large_message_fragments_and_reassembles():
    ring = Ring()
    ring.run(0.1)
    payload = bytes(range(256)) * 40   # > 6 fragments
    ring.members["A"].multicast(payload)
    ring.run(0.2)
    for node_id in "ABC":
        assert ring.delivered[node_id] == [("A", payload)]


def test_multicast_before_ring_forms_is_queued():
    ring = Ring()
    ring.members["A"].multicast(b"early")
    ring.run(0.2)
    for node_id in "ABC":
        assert ring.delivered[node_id] == [("A", b"early")]


def test_crash_triggers_reformation_without_victim():
    ring = Ring()
    ring.run(0.1)
    ring.faults.crash("C")
    ring.run(0.2)
    assert ring.all_operational(["A", "B"])
    assert set(ring.members["A"].view.members) == {"A", "B"}
    assert ring.members["A"].view == ring.members["B"].view


def test_delivery_continues_after_crash():
    ring = Ring()
    ring.run(0.1)
    ring.faults.crash("C")
    ring.run(0.2)
    ring.members["A"].multicast(b"post")
    ring.run(0.1)
    assert ("A", b"post") in ring.delivered["A"]
    assert ("A", b"post") in ring.delivered["B"]


def test_fresh_rejoin_skips_old_traffic():
    ring = Ring()
    ring.run(0.1)
    ring.members["A"].multicast(b"before")
    ring.run(0.1)
    ring.faults.crash("C")
    ring.run(0.2)
    pre_crash = list(ring.delivered["C"])
    ring.respawn("C")
    ring.run(0.3)
    assert ring.members["C"].operational
    assert ring.delivered["C"] == pre_crash   # no replay of old traffic
    ring.members["B"].multicast(b"after")
    ring.run(0.1)
    assert ("B", b"after") in ring.delivered["C"]


def test_message_loss_is_repaired_by_retransmission():
    ring = Ring(seed=3)
    ring.run(0.1)
    ring.faults.set_loss_rate(0.15)
    for i in range(30):
        ring.members["A"].multicast(bytes([i]))
    ring.run(1.0)
    ring.faults.set_loss_rate(0.0)
    ring.run(0.5)
    for node_id in "ABC":
        assert [p for _, p in ring.delivered[node_id]] == \
            [bytes([i]) for i in range(30)]


def test_total_order_under_loss():
    ring = Ring(seed=11)
    ring.run(0.1)
    ring.faults.set_loss_rate(0.1)
    for i in range(10):
        ring.members["A"].multicast(b"A%d" % i)
        ring.members["B"].multicast(b"B%d" % i)
    ring.run(1.0)
    ring.faults.set_loss_rate(0.0)
    ring.run(0.5)
    assert ring.delivered["A"] == ring.delivered["B"] == ring.delivered["C"]
    assert len(ring.delivered["A"]) == 20


def test_view_change_notified_on_membership_change():
    ring = Ring()
    ring.run(0.1)
    initial_views = {n: len(ring.views[n]) for n in "AB"}
    ring.faults.crash("C")
    ring.run(0.3)
    for node_id in "AB":
        assert len(ring.views[node_id]) == initial_views[node_id] + 1
        assert set(ring.views[node_id][-1].members) == {"A", "B"}


def test_ring_ids_increase_across_reformations():
    ring = Ring()
    ring.run(0.1)
    first = ring.members["A"].ring_id
    ring.faults.crash("C")
    ring.run(0.3)
    assert ring.members["A"].ring_id > first


def test_shutdown_member_rejects_multicast():
    ring = Ring()
    ring.run(0.1)
    ring.members["A"].shutdown()
    with pytest.raises(NotInRing):
        ring.members["A"].multicast(b"x")


def test_send_queue_overflow_guarded():
    config = TotemConfig(max_queue=5)
    ring = Ring(config=config)
    ring.run(0.1)
    ring.faults.partition([{"A"}, {"B", "C"}])   # A can't drain its queue
    # A's token is lost; it gathers forever and queues pile up
    with pytest.raises(TotemError):
        for i in range(10):
            ring.members["A"].multicast(b"x" * 10)


def test_partition_forms_two_rings():
    ring = Ring(node_ids=("A", "B", "C", "D"))
    ring.run(0.1)
    ring.faults.partition([{"A", "B"}, {"C", "D"}])
    ring.run(0.5)
    assert set(ring.members["A"].view.members) == {"A", "B"}
    assert set(ring.members["C"].view.members) == {"C", "D"}
    ring.members["A"].multicast(b"west")
    ring.members["C"].multicast(b"east")
    ring.run(0.2)
    assert ("A", b"west") in ring.delivered["B"]
    assert ("A", b"west") not in ring.delivered["C"]
    assert ("C", b"east") in ring.delivered["D"]


def test_partition_heal_remerges_ring():
    ring = Ring(node_ids=("A", "B", "C", "D"))
    ring.run(0.1)
    ring.faults.partition([{"A", "B"}, {"C", "D"}])
    ring.run(0.5)
    ring.faults.heal()
    ring.run(0.5)
    assert set(ring.members["A"].view.members) == {"A", "B", "C", "D"}
    ring.members["A"].multicast(b"joined")
    ring.run(0.2)
    assert ("A", b"joined") in ring.delivered["D"]


def test_no_spurious_retransmissions_in_steady_state():
    """The sender's own just-broadcast messages must not be treated as gaps
    (regression test for the retransmission-storm bug)."""
    from repro.simnet.trace import Tracer
    ring = Ring()
    tracer = Tracer(keep_records=False)
    tracer.bind_clock(lambda: ring.scheduler.now)
    for member in ring.members.values():
        member.tracer = tracer
    ring.run(0.1)
    for i in range(50):
        ring.members["A"].multicast(bytes([i]))
    ring.run(0.5)
    assert tracer.count("totem.retransmit") == 0
