"""Unit tests for fault tolerance properties."""

import pytest

from repro.errors import PropertyError
from repro.ftcorba.properties import FTProperties, ReplicationStyle


def test_defaults_are_valid():
    properties = FTProperties()
    assert properties.replication_style is ReplicationStyle.ACTIVE
    assert properties.initial_replicas >= properties.min_replicas


def test_is_passive_predicate():
    assert not ReplicationStyle.ACTIVE.is_passive
    assert ReplicationStyle.WARM_PASSIVE.is_passive
    assert ReplicationStyle.COLD_PASSIVE.is_passive


@pytest.mark.parametrize("kwargs", [
    {"initial_replicas": 0},
    {"min_replicas": 0},
    {"initial_replicas": 2, "min_replicas": 3},
    {"checkpoint_interval": 0},
    {"checkpoint_interval": -1},
    {"fault_monitoring_interval": 0},
    {"recovery_timeout": 0},
])
def test_invalid_values_rejected(kwargs):
    with pytest.raises(PropertyError):
        FTProperties(**kwargs)


def test_styles_roundtrip_through_value():
    for style in ReplicationStyle:
        assert ReplicationStyle(style.value) is style


def test_properties_are_immutable():
    properties = FTProperties()
    with pytest.raises(Exception):
        properties.initial_replicas = 5
