"""Unit tests for the Checkpointable interface (paper Figure 3)."""

import pytest

from repro.ftcorba.checkpointable import (
    Checkpointable,
    InvalidState,
    NoStateAvailable,
)


class WithState(Checkpointable):
    def __init__(self):
        self.data = {"x": 1}

    def get_state(self):
        return dict(self.data)

    def set_state(self, state):
        self.data = dict(state)


def test_default_get_state_raises_no_state_available():
    with pytest.raises(NoStateAvailable):
        Checkpointable().get_state()


def test_default_set_state_raises_invalid_state():
    with pytest.raises(InvalidState):
        Checkpointable().set_state({"x": 1})


def test_exception_ids_follow_ft_corba():
    assert "NoStateAvailable" in NoStateAvailable.exception_id
    assert "InvalidState" in InvalidState.exception_id
    assert NoStateAvailable.exception_id.startswith("IDL:omg.org/CORBA/FT/")


def test_get_set_roundtrip():
    a, b = WithState(), WithState()
    a.data = {"x": 42, "y": [1, 2]}
    b.set_state(a.get_state())
    assert b.data == {"x": 42, "y": [1, 2]}


def test_state_methods_are_dispatchable_operations():
    servant = WithState()
    assert servant._dispatch("get_state", ()) == {"x": 1}
    servant._dispatch("set_state", ({"x": 9},))
    assert servant.data == {"x": 9}


def test_state_methods_have_durations():
    servant = WithState()
    assert servant._operation_duration("get_state") > 0
    assert servant._operation_duration("set_state") > 0
