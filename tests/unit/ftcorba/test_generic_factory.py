"""Unit tests for the GenericFactory registry."""

import pytest

from repro.apps.counter import CounterServant
from repro.errors import ObjectGroupError
from repro.ftcorba.generic_factory import FactoryRegistry, GenericFactory


def test_create_object_instantiates():
    factory = GenericFactory("n1")
    factory.register("IDL:repro/Counter:1.0", CounterServant)
    servant = factory.create_object("IDL:repro/Counter:1.0")
    assert isinstance(servant, CounterServant)


def test_each_create_returns_fresh_instance():
    factory = GenericFactory("n1")
    factory.register("T", CounterServant)
    assert factory.create_object("T") is not factory.create_object("T")


def test_unknown_type_rejected():
    with pytest.raises(ObjectGroupError):
        GenericFactory("n1").create_object("T")


def test_versions_are_distinct():
    factory = GenericFactory("n1")
    factory.register("T", CounterServant, version=0)
    assert factory.supports("T", 0)
    assert not factory.supports("T", 1)
    with pytest.raises(ObjectGroupError):
        factory.create_object("T", 1)


def test_registry_creates_factories_on_demand():
    registry = FactoryRegistry()
    factory = registry.factory_for("n1")
    assert registry.factory_for("n1") is factory


def test_register_everywhere():
    registry = FactoryRegistry()
    registry.register_everywhere(["a", "b"], "T", CounterServant)
    assert registry.nodes_supporting("T") == ["a", "b"]
    assert registry.nodes_supporting("T", 1) == []


def test_nodes_supporting_sorted():
    registry = FactoryRegistry()
    registry.register_everywhere(["z", "a", "m"], "T", CounterServant)
    assert registry.nodes_supporting("T") == ["a", "m", "z"]
