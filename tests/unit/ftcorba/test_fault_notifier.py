"""Unit tests for the fault notifier."""

from repro.ftcorba.fault_notifier import FaultNotifier, FaultReport


def test_push_fans_out_to_consumers():
    notifier = FaultNotifier()
    seen_a, seen_b = [], []
    notifier.connect_consumer(seen_a.append)
    notifier.connect_consumer(seen_b.append)
    report = FaultReport(1.0, "n1")
    notifier.push_fault(report)
    assert seen_a == [report] and seen_b == [report]


def test_history_retained():
    notifier = FaultNotifier()
    notifier.push_fault(FaultReport(1.0, "n1"))
    notifier.push_fault(FaultReport(2.0, "n2", group_id="g"))
    assert [r.node_id for r in notifier.history] == ["n1", "n2"]


def test_disconnect_stops_delivery():
    notifier = FaultNotifier()
    seen = []
    notifier.connect_consumer(seen.append)
    notifier.disconnect_consumer(seen.append)
    notifier.push_fault(FaultReport(1.0, "n1"))
    assert seen == []


def test_disconnect_unknown_consumer_is_noop():
    FaultNotifier().disconnect_consumer(lambda r: None)


def test_report_defaults():
    report = FaultReport(0.5, "n1")
    assert report.group_id is None
    assert report.reason == "crash"
