"""Unit tests for object groups and IOGRs."""

import pytest

from repro.errors import ObjectGroupError
from repro.ftcorba.object_group import (
    GROUP_PORT,
    MemberInfo,
    ObjectGroup,
    ReplicaRole,
    elect_cold_seed,
)
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.giop.ior import IOR


def make_group(style=ReplicationStyle.ACTIVE):
    return ObjectGroup("grp", "IDL:T:1.0",
                       FTProperties(replication_style=style))


def test_iogr_addresses_the_group():
    group = make_group()
    iogr = group.iogr()
    assert iogr.host == "grp"
    assert iogr.port == GROUP_PORT
    assert IOR.from_string(iogr.stringify()) == iogr


def test_object_key_is_stable():
    group = make_group()
    assert group.object_key == group.iogr().object_key


def test_add_and_remove_members_bump_version():
    group = make_group()
    v0 = group.version
    group.add_member("n1", ReplicaRole.ACTIVE)
    assert group.version == v0 + 1
    group.remove_member("n1")
    assert group.version == v0 + 2


def test_duplicate_member_rejected():
    group = make_group()
    group.add_member("n1", ReplicaRole.ACTIVE)
    with pytest.raises(ObjectGroupError):
        group.add_member("n1", ReplicaRole.ACTIVE)


def test_remove_unknown_member_rejected():
    with pytest.raises(ObjectGroupError):
        make_group().remove_member("ghost")


def test_member_lookup():
    group = make_group()
    group.add_member("n1", ReplicaRole.ACTIVE)
    assert group.member("n1").role is ReplicaRole.ACTIVE
    with pytest.raises(ObjectGroupError):
        group.member("n2")


def test_operational_tracking():
    group = make_group()
    info = group.add_member("n1", ReplicaRole.ACTIVE)
    assert group.operational_nodes == []
    info.operational = True
    assert group.operational_nodes == ["n1"]


def test_default_role_active_style():
    assert make_group().default_role() is ReplicaRole.ACTIVE


def test_default_role_passive_first_is_primary():
    group = make_group(ReplicationStyle.WARM_PASSIVE)
    assert group.default_role() is ReplicaRole.PRIMARY
    group.add_member("n1", ReplicaRole.PRIMARY)
    assert group.default_role() is ReplicaRole.BACKUP


def test_promote_swaps_primary():
    group = make_group(ReplicationStyle.WARM_PASSIVE)
    group.add_member("n1", ReplicaRole.PRIMARY)
    group.add_member("n2", ReplicaRole.BACKUP)
    group.promote("n2")
    assert group.primary_node == "n2"
    assert group.member("n1").role is ReplicaRole.BACKUP


def test_primary_node_none_for_active():
    group = make_group()
    group.add_member("n1", ReplicaRole.ACTIVE)
    assert group.primary_node is None


class TestColdSeedElection:
    """The durable-store cold-boot rule: deepest journal wins, ties to
    the smallest node id, journal-less members never candidate."""

    def test_deepest_journal_wins(self):
        assert elect_cold_seed({"s1": 10, "s2": 42, "s3": 7}) == "s2"

    def test_tie_breaks_to_smallest_node_id(self):
        assert elect_cold_seed({"s3": 42, "s2": 42, "s1": 10}) == "s2"

    def test_journal_less_members_never_candidate(self):
        assert elect_cold_seed({"s1": -1, "s2": 0}) == "s2"
        assert elect_cold_seed({"s1": -1, "s2": -1}) is None
        assert elect_cold_seed({}) is None

    def test_every_partial_view_converges(self):
        # Any bidder that *includes the true winner* in its (possibly
        # partial) view elects that same winner — the convergence the
        # first-claim-wins ColdSeed multicast relies on.
        from itertools import combinations
        bids = {"s1": 5, "s2": 9, "s3": 9, "s4": 0}
        winner = elect_cold_seed(bids)
        assert winner == "s2"
        for r in range(1, len(bids) + 1):
            for view in combinations(bids, r):
                if winner in view:
                    assert elect_cold_seed(
                        {n: bids[n] for n in view}) == winner
