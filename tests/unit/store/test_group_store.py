"""GroupStore semantics tests: checkpoint/message journaling, the delta
chain, compaction, fsync policy, and corruption handling — exercised via
the in-memory backend (the journal backend shares every codepath above
the raw record transport)."""

import pytest

from repro.core.msglog import CheckpointRecord
from repro.errors import StoreCorruptError
from repro.runtime.trace import Tracer
from repro.store.base import GroupStore
from repro.store.journal import JournalStore
from repro.store.memory import MemoryBackend, MemoryStore
from repro.store.records import encode_checkpoint


def _ckpt(position, app_state, transfer_id=None):
    return CheckpointRecord(transfer_id or f"xfer-{position}", position,
                            app_state, b"orb-state", b"infra-state")


def _reopened(group):
    group.close()
    return group.load()


def test_empty_store_loads_empty():
    group = MemoryStore().group("g")
    state = group.load()
    assert state.empty
    assert state.checkpoint is None
    assert state.last_position == 0


def test_messages_roundtrip_across_reopen():
    group = MemoryStore().group("g")
    group.append_message(1, b"m1")
    group.append_message(2, b"m2")
    state = _reopened(group)
    assert state.messages == ((1, b"m1"), (2, b"m2"))
    assert state.last_position == 2


def test_append_message_is_idempotent_by_position():
    group = MemoryStore().group("g")
    group.append_message(1, b"m1")
    group.append_message(1, b"m1")          # replayed drain — skipped
    assert _reopened(group).messages == ((1, b"m1"),)


def test_checkpoint_prunes_covered_messages():
    group = MemoryStore().group("g")
    for position in (1, 2, 3):
        group.append_message(position, b"m%d" % position)
    group.commit_checkpoint(_ckpt(2, b"A" * 4096))
    state = _reopened(group)
    assert state.checkpoint.position == 2
    assert state.checkpoint.app_state == b"A" * 4096
    assert state.messages == ((3, b"m3"),)
    assert group.pending_messages == 1


def test_delta_chain_reconstructs_across_reopen():
    group = MemoryStore().group("g", page_size=1024)
    base = bytearray(b"A" * 8192)
    group.commit_checkpoint(_ckpt(10, bytes(base)))       # full + compact
    base[0:8] = b"BBBBBBBB"                               # dirty one page
    group.commit_checkpoint(_ckpt(20, bytes(base)))       # stored as delta
    state = _reopened(group)
    assert state.checkpoint.position == 20
    assert state.checkpoint.app_state == bytes(base)


def test_delta_only_when_it_saves_bytes():
    group = MemoryStore().group("g", page_size=1024)
    group.commit_checkpoint(_ckpt(1, b"A" * 4096))
    # Rewrite every page: the delta is bigger than the snapshot, so the
    # store falls back to a full record (and compacts again).
    group.commit_checkpoint(_ckpt(2, b"B" * 4096))
    assert group.compactions == 2
    assert _reopened(group).checkpoint.app_state == b"B" * 4096


def test_chain_bound_forces_periodic_full_checkpoint():
    store = MemoryStore(max_delta_chain=2)
    group = store.group("g", page_size=1024)
    blob = bytearray(b"A" * 8192)
    group.commit_checkpoint(_ckpt(1, bytes(blob)))        # full (no base)
    blob[0:4] = b"BBBB"
    group.commit_checkpoint(_ckpt(2, bytes(blob)))        # delta (chain 1)
    blob[0:4] = b"CCCC"
    group.commit_checkpoint(_ckpt(3, bytes(blob)))        # chain full → full
    assert group.compactions == 2
    assert _reopened(group).checkpoint.app_state == bytes(blob)


def test_compaction_rewrites_journal_to_live_set():
    store = MemoryStore()
    group = store.group("g")
    for position in range(1, 9):
        group.append_message(position, b"x" * 64)
    before = len(group.backend.blob)
    group.commit_checkpoint(_ckpt(8, b"S" * 32))          # full → compact
    # All eight messages are superseded: the journal shrinks to one record.
    assert len(group.backend.blob) < before
    state = _reopened(group)
    assert state.messages == ()
    assert state.checkpoint.position == 8


def test_public_compact_requires_checkpoint():
    group = MemoryStore().group("g")
    group.append_message(1, b"m")
    assert group.compact() is False
    group.commit_checkpoint(_ckpt(1, b"S"))
    assert group.compact() is True


def test_fsync_policy_counts():
    def run(policy):
        group = MemoryStore(fsync=policy).group("g", page_size=1024)
        blob = bytearray(b"A" * 4096)
        group.commit_checkpoint(_ckpt(1, bytes(blob)))   # full → rewrite path
        group.append_message(2, b"m")
        blob[0:4] = b"BBBB"
        group.commit_checkpoint(_ckpt(3, bytes(blob)))   # delta → append path
        return group.backend.sync_count

    assert run("always") == 2        # the message and the delta checkpoint
    assert run("checkpoint") == 1    # the delta checkpoint only
    assert run("never") == 0


def test_reset_discards_everything():
    group = MemoryStore().group("g")
    group.append_message(1, b"m")
    group.commit_checkpoint(_ckpt(1, b"S"))
    group.reset()
    assert group.load().empty
    assert group.pending_messages == 0


def test_delta_without_base_is_corruption():
    backend = MemoryBackend("g")
    backend.append(encode_checkpoint("xfer", 5, b"\x00" * 16, b"", b"",
                                     delta=True), sync=False)
    group = GroupStore("g", backend)
    with pytest.raises(StoreCorruptError):
        group.load()


def test_writer_on_corrupt_journal_starts_fresh():
    backend = MemoryBackend("g")
    backend.append(encode_checkpoint("xfer", 5, b"\x00" * 16, b"", b"",
                                     delta=True), sync=False)
    group = GroupStore("g", backend)
    # The write path quarantines the corrupt journal instead of dying —
    # recovery surfaces corruption on its own explicit load().
    group.append_message(6, b"m6")
    assert _reopened(group).messages == ((6, b"m6"),)


def test_memory_and_journal_backends_agree(tmp_path):
    def drive(group):
        blob = bytearray(b"A" * 4096)
        group.append_message(1, b"m1")
        group.commit_checkpoint(_ckpt(1, bytes(blob)))
        blob[0:4] = b"ZZZZ"
        group.append_message(2, b"m2")
        group.append_message(3, b"m3")
        group.commit_checkpoint(_ckpt(2, bytes(blob)))
        group.append_message(4, b"m4")
        return _reopened(group)

    mem = drive(MemoryStore().group("g", page_size=1024))
    disk = drive(JournalStore(str(tmp_path)).group("g", page_size=1024))
    assert mem.checkpoint == disk.checkpoint
    assert mem.messages == disk.messages


def test_stats_exposes_semantic_gauges():
    group = MemoryStore().group("g")
    group.append_message(1, b"m")
    group.commit_checkpoint(_ckpt(1, b"S"))
    group.append_message(2, b"m2")
    stats = group.stats()
    assert stats["pending_messages"] == 1
    assert stats["checkpoints_written"] == 1
    assert stats["compactions"] == 1
    assert stats["bytes"] > 0


def test_store_tracer_binding_reaches_backend():
    store = MemoryStore()
    group = store.group("g")
    tracer = Tracer()
    store.bind_tracer(tracer, "n1")
    group.append_message(1, b"m")
    group.commit_checkpoint(_ckpt(1, b"S" * 128))
    assert tracer.counters["store.checkpoint_full"] == 1
    assert tracer.counters["store.compacted"] == 1
