"""On-disk journal backend tests: manifest crash-safety at every hook
point, debris cleanup, torn-tail truncation of the real file, segment
rolling, and group-id escaping."""

import os

import pytest

from repro.errors import StoreCorruptError
from repro.store.journal import (
    JournalBackend,
    JournalStore,
    _safe_dirname,
    _segment_name,
)
from repro.store.records import MessagePayload, encode_message, frame


def _messages(backend):
    return [(p.position, p.envelope_bytes)
            for p in backend.load_payloads()
            if isinstance(p, MessagePayload)]


def _fill(backend, count, *, size=8, start=1):
    for i in range(start, start + count):
        backend.append(encode_message(i, bytes(size)), sync=False)


class _CrashAt:
    """Raise once at the named hook point, then disarm."""

    def __init__(self, label):
        self.label = label
        self.fired = False

    def __call__(self, label):
        if label == self.label and not self.fired:
            self.fired = True
            raise RuntimeError(f"simulated crash at {label}")


def test_append_and_reload(tmp_path):
    backend = JournalBackend("g", str(tmp_path / "g"))
    _fill(backend, 3)
    reopened = JournalBackend("g", str(tmp_path / "g"))
    assert [p for p, _ in _messages(reopened)] == [1, 2, 3]


def test_torn_tail_truncated_on_disk(tmp_path):
    backend = JournalBackend("g", str(tmp_path / "g"))
    _fill(backend, 2)
    backend.close()
    path = tmp_path / "g" / _segment_name(1)
    clean_size = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(frame(encode_message(3, b"torn"))[:-2])
    reopened = JournalBackend("g", str(tmp_path / "g"))
    assert [p for p, _ in _messages(reopened)] == [1, 2]
    # The file itself was cut back, so the next append lands on a clean
    # frame boundary.
    assert path.stat().st_size == clean_size
    reopened.append(encode_message(3, b"again"), sync=False)
    assert [p for p, _ in _messages(reopened)] == [1, 2, 3]


def test_corruption_in_sealed_segment_raises(tmp_path):
    backend = JournalBackend("g", str(tmp_path / "g"),
                             segment_max_bytes=128)
    _fill(backend, 8, size=32)                   # forces at least one roll
    backend.close()
    assert len(backend._open()) > 1
    sealed = tmp_path / "g" / _segment_name(1)
    with open(sealed, "r+b") as fh:
        fh.truncate(sealed.stat().st_size - 3)   # torn tail, but sealed
    with pytest.raises(StoreCorruptError):
        JournalBackend("g", str(tmp_path / "g")).load_payloads()


def test_crc_damage_raises(tmp_path):
    backend = JournalBackend("g", str(tmp_path / "g"))
    _fill(backend, 2, size=32)
    backend.close()
    path = tmp_path / "g" / _segment_name(1)
    blob = bytearray(path.read_bytes())
    blob[12] ^= 0xFF                             # inside the first payload
    path.write_bytes(bytes(blob))
    with pytest.raises(StoreCorruptError):
        JournalBackend("g", str(tmp_path / "g")).load_payloads()


def test_bad_manifest_header_raises(tmp_path):
    directory = tmp_path / "g"
    directory.mkdir()
    (directory / "MANIFEST").write_text("not a manifest\n")
    with pytest.raises(StoreCorruptError):
        JournalBackend("g", str(directory)).load_payloads()


def test_manifest_listing_missing_segment_raises(tmp_path):
    backend = JournalBackend("g", str(tmp_path / "g"))
    _fill(backend, 1)
    backend.close()
    os.unlink(tmp_path / "g" / _segment_name(1))
    with pytest.raises(StoreCorruptError):
        JournalBackend("g", str(tmp_path / "g")).load_payloads()


def test_debris_cleaned_on_open(tmp_path):
    backend = JournalBackend("g", str(tmp_path / "g"))
    _fill(backend, 1)
    backend.close()
    (tmp_path / "g" / _segment_name(99)).write_bytes(b"orphan")
    (tmp_path / "g" / "MANIFEST.tmp").write_bytes(b"leftover")
    reopened = JournalBackend("g", str(tmp_path / "g"))
    assert [p for p, _ in _messages(reopened)] == [1]
    assert not (tmp_path / "g" / _segment_name(99)).exists()
    assert not (tmp_path / "g" / "MANIFEST.tmp").exists()


def test_segment_roll_preserves_order(tmp_path):
    backend = JournalBackend("g", str(tmp_path / "g"),
                             segment_max_bytes=128)
    _fill(backend, 10, size=32)
    assert backend.stats()["segments"] > 1
    reopened = JournalBackend("g", str(tmp_path / "g"),
                              segment_max_bytes=128)
    assert [p for p, _ in _messages(reopened)] == list(range(1, 11))


@pytest.mark.parametrize("label", [
    "manifest.tmp", "manifest.replaced", "roll.segment", "append.flushed",
])
def test_crash_during_append_path_never_corrupts(tmp_path, label):
    backend = JournalBackend("g", str(tmp_path / "g"), segment_max_bytes=128,
                             crash_hook=_CrashAt(label))
    survived = []
    try:
        for i in range(1, 11):
            backend.append(encode_message(i, bytes(32)), sync=False)
            survived.append(i)
    except RuntimeError:
        pass
    # Restart: the journal must load cleanly and contain a prefix of the
    # appended records (at most one torn record lost).
    reopened = JournalBackend("g", str(tmp_path / "g"))
    positions = [p for p, _ in _messages(reopened)]
    assert positions == list(range(1, len(positions) + 1))
    assert len(positions) >= len(survived) - 1


@pytest.mark.parametrize("label", [
    "rewrite.segment", "manifest.tmp", "manifest.replaced", "rewrite.cleanup",
])
def test_crash_during_rewrite_leaves_old_or_new(tmp_path, label):
    backend = JournalBackend("g", str(tmp_path / "g"))
    _fill(backend, 3, size=16)
    old = _messages(backend)
    new_payloads = [encode_message(7, b"compacted")]
    backend.crash_hook = _CrashAt(label)
    with pytest.raises(RuntimeError):
        backend.rewrite(new_payloads)
    reopened = JournalBackend("g", str(tmp_path / "g"))
    loaded = _messages(reopened)
    assert loaded in (old, [(7, b"compacted")])


def test_safe_dirname_escaping(tmp_path):
    assert _safe_dirname("plain-group_1.x") == "plain-group_1.x"
    assert _safe_dirname("a/b") == "a%2fb"
    assert _safe_dirname("") == "%empty"
    store = JournalStore(str(tmp_path))
    for gid in ("plain", "a/b", ""):
        store.group(gid).append_message(1, b"m")
    assert store.group_ids() == ["", "a/b", "plain"]
    # A cold open of the same root sees the same groups from disk alone.
    cold = JournalStore(str(tmp_path))
    assert cold.group_ids() == ["", "a/b", "plain"]


def test_journal_store_rejects_unknown_fsync(tmp_path):
    with pytest.raises(ValueError):
        JournalStore(str(tmp_path), fsync="sometimes")


def test_handle_crash_then_reopen(tmp_path):
    store = JournalStore(str(tmp_path), fsync="always")
    group = store.group("g")
    group.append_message(1, b"m1")
    group.append_message(2, b"m2")
    store.handle_crash()                         # SIGKILL semantics
    reborn = JournalStore(str(tmp_path))
    assert reborn.group("g").load().messages == ((1, b"m1"), (2, b"m2"))
