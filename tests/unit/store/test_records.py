"""Wire-format tests for the journal record codec (repro.store.records)."""

import pytest

from repro.errors import StoreCorruptError
from repro.store.records import (
    CheckpointPayload,
    FRAME_HEADER_SIZE,
    MessagePayload,
    decode_record,
    encode_checkpoint,
    encode_message,
    frame,
    scan_segment,
)


def _segment(*payloads: bytes) -> bytes:
    return b"".join(frame(p) for p in payloads)


def test_checkpoint_roundtrip():
    payload = encode_checkpoint("xfer-1", 42, b"app" * 100, b"orb", b"infra",
                                delta=False)
    decoded = decode_record(payload)
    assert isinstance(decoded, CheckpointPayload)
    assert decoded.transfer_id == "xfer-1"
    assert decoded.position == 42
    assert decoded.app_state == b"app" * 100
    assert decoded.orb_state == b"orb"
    assert decoded.infra_state == b"infra"
    assert decoded.delta is False


def test_delta_checkpoint_roundtrip():
    payload = encode_checkpoint("xfer-2", 7, b"\x01\x02delta", b"", b"",
                                delta=True)
    decoded = decode_record(payload)
    assert decoded.delta is True
    assert decoded.app_state == b"\x01\x02delta"


def test_message_roundtrip():
    payload = encode_message(9, b"envelope-bytes")
    decoded = decode_record(payload)
    assert isinstance(decoded, MessagePayload)
    assert decoded.position == 9
    assert decoded.envelope_bytes == b"envelope-bytes"


def test_unknown_record_type_is_corruption():
    with pytest.raises(StoreCorruptError):
        decode_record(b"\x7f" + b"\x00" * 16)


def test_undecodable_body_is_corruption():
    # Type octet says checkpoint, but the body ends mid-string.
    with pytest.raises(StoreCorruptError):
        decode_record(b"\x01\x00\x00\x00\xff")


def test_scan_segment_clean():
    p1 = encode_message(1, b"a")
    p2 = encode_message(2, b"b")
    payloads, truncate_to = scan_segment(_segment(p1, p2), last_segment=True)
    assert [p.position for p in payloads] == [1, 2]
    assert truncate_to is None


def test_torn_tail_in_last_segment_truncates():
    p1 = encode_message(1, b"a")
    clean = _segment(p1)
    torn = clean + frame(encode_message(2, b"b"))[:-3]   # shear the payload
    payloads, truncate_to = scan_segment(torn, last_segment=True)
    assert [p.position for p in payloads] == [1]
    assert truncate_to == len(clean)


def test_torn_header_in_last_segment_truncates():
    clean = _segment(encode_message(1, b"a"))
    torn = clean + b"\x05\x00"                           # header fragment
    payloads, truncate_to = scan_segment(torn, last_segment=True)
    assert len(payloads) == 1
    assert truncate_to == len(clean)


def test_torn_tail_in_sealed_segment_is_corruption():
    clean = _segment(encode_message(1, b"a"))
    torn = clean + frame(encode_message(2, b"b"))[:-3]
    with pytest.raises(StoreCorruptError):
        scan_segment(torn, last_segment=False)


def test_crc_mismatch_is_corruption_even_in_last_segment():
    blob = bytearray(_segment(encode_message(1, b"abcdef")))
    blob[-1] ^= 0xFF                                      # flip a payload byte
    with pytest.raises(StoreCorruptError):
        scan_segment(bytes(blob), last_segment=True)


def test_crc_mismatch_mid_file_is_corruption():
    p1, p2 = encode_message(1, b"aaaa"), encode_message(2, b"bbbb")
    blob = bytearray(_segment(p1, p2))
    blob[FRAME_HEADER_SIZE + 2] ^= 0xFF                   # damage first payload
    with pytest.raises(StoreCorruptError):
        scan_segment(bytes(blob), last_segment=True)


def test_empty_segment_scans_clean():
    payloads, truncate_to = scan_segment(b"", last_segment=True)
    assert payloads == []
    assert truncate_to is None
