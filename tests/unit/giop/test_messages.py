"""Unit tests for GIOP message encoding/decoding."""

import pytest

from repro.errors import ProtocolError
from repro.giop.messages import (
    GIOP_MAGIC,
    CloseConnectionMessage,
    MessageErrorMessage,
    MsgType,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    decode_header,
    decode_message,
    encode_message,
    peek_request_id,
)
from repro.giop.service_context import CodeSetContext, ServiceContext


def make_request(**kwargs):
    defaults = dict(request_id=7, object_key=b"\x00\x00\x04RootPoid",
                    operation="ping", args=(1, "two"))
    defaults.update(kwargs)
    return RequestMessage(**defaults)


@pytest.mark.parametrize("little", [False, True])
def test_request_roundtrip(little):
    original = make_request()
    decoded = decode_message(encode_message(original, little))
    assert decoded.request_id == 7
    assert decoded.operation == "ping"
    assert decoded.args == (1, "two")
    assert decoded.object_key == original.object_key
    assert decoded.response_expected


def test_request_with_contexts_roundtrip():
    ctx = CodeSetContext().to_service_context()
    original = make_request(service_contexts=(ctx,))
    decoded = decode_message(encode_message(original))
    assert decoded.service_contexts[0].context_id == ctx.context_id
    assert decoded.service_contexts[0].context_data == ctx.context_data


def test_oneway_request_roundtrip():
    decoded = decode_message(
        encode_message(make_request(response_expected=False))
    )
    assert decoded.oneway


def test_reply_roundtrip():
    original = ReplyMessage(request_id=7, result={"a": [1, 2]})
    decoded = decode_message(encode_message(original))
    assert decoded.request_id == 7
    assert decoded.reply_status is ReplyStatus.NO_EXCEPTION
    assert decoded.result == {"a": [1, 2]}


def test_user_exception_reply_roundtrip():
    original = ReplyMessage(request_id=9,
                            reply_status=ReplyStatus.USER_EXCEPTION,
                            exception_id="IDL:Bad:1.0",
                            result="boom")
    decoded = decode_message(encode_message(original))
    assert decoded.reply_status is ReplyStatus.USER_EXCEPTION
    assert decoded.exception_id == "IDL:Bad:1.0"
    assert decoded.result == "boom"


def test_close_connection_roundtrip():
    assert isinstance(decode_message(encode_message(CloseConnectionMessage())),
                      CloseConnectionMessage)


def test_message_error_roundtrip():
    assert isinstance(decode_message(encode_message(MessageErrorMessage())),
                      MessageErrorMessage)


def test_wire_form_starts_with_magic():
    assert encode_message(make_request())[:4] == GIOP_MAGIC


def test_header_reports_type_and_size():
    wire = encode_message(make_request())
    header = decode_header(wire)
    assert header.msg_type is MsgType.REQUEST
    assert header.size == len(wire) - 12


def test_bad_magic_rejected():
    wire = bytearray(encode_message(make_request()))
    wire[0] = ord("X")
    with pytest.raises(ProtocolError):
        decode_message(bytes(wire))


def test_short_header_rejected():
    with pytest.raises(ProtocolError):
        decode_header(b"GIOP")


def test_truncated_body_rejected():
    wire = encode_message(make_request())
    with pytest.raises(ProtocolError):
        decode_message(wire[:-4])


def test_unknown_message_type_rejected():
    wire = bytearray(encode_message(make_request()))
    wire[7] = 99
    with pytest.raises(ProtocolError):
        decode_header(bytes(wire))


def test_peek_request_id_on_request():
    assert peek_request_id(encode_message(make_request(request_id=350))) == 350


def test_peek_request_id_on_reply():
    wire = encode_message(ReplyMessage(request_id=123, result=None))
    assert peek_request_id(wire) == 123


def test_peek_request_id_skips_service_contexts():
    ctx = ServiceContext(0x1234, b"\x01\x02\x03")
    wire = encode_message(make_request(request_id=5, service_contexts=(ctx,)))
    assert peek_request_id(wire) == 5


def test_peek_request_id_none_for_close():
    assert peek_request_id(encode_message(CloseConnectionMessage())) is None


@pytest.mark.parametrize("little", [False, True])
def test_peek_respects_endianness(little):
    wire = encode_message(make_request(request_id=0xABCD), little)
    assert peek_request_id(wire) == 0xABCD
