"""Unit tests for IOR stringification."""

import pytest

from repro.errors import UnmarshalError
from repro.giop.ior import IOR


def test_roundtrip():
    ior = IOR("IDL:Bank:1.0", "server-group", 2809, b"\x00\x00\x07RootPOAk")
    assert IOR.from_string(ior.stringify()) == ior


def test_stringified_form_has_prefix():
    ior = IOR("IDL:X:1.0", "h", 1, b"k")
    text = ior.stringify()
    assert text.startswith("IOR:")
    assert all(c in "0123456789abcdef" for c in text[4:])


def test_codesets_carried():
    ior = IOR("IDL:X:1.0", "h", 1, b"k", char_codeset=0x11,
              wchar_codeset=0x22)
    decoded = IOR.from_string(ior.stringify())
    assert decoded.char_codeset == 0x11
    assert decoded.wchar_codeset == 0x22


def test_missing_prefix_rejected():
    with pytest.raises(UnmarshalError):
        IOR.from_string("NOTANIOR:00")


def test_bad_hex_rejected():
    with pytest.raises(UnmarshalError):
        IOR.from_string("IOR:zzzz")


def test_truncated_hex_rejected():
    ior = IOR("IDL:X:1.0", "h", 1, b"k")
    with pytest.raises(UnmarshalError):
        IOR.from_string(ior.stringify()[:20])


def test_empty_object_key_allowed():
    ior = IOR("IDL:X:1.0", "h", 1, b"")
    assert IOR.from_string(ior.stringify()).object_key == b""


def test_unicode_hostname():
    ior = IOR("IDL:X:1.0", "groupe-déployé", 1, b"k")
    assert IOR.from_string(ior.stringify()).host == "groupe-déployé"
