"""Unit tests for CDR marshalling."""

import pytest

from repro.errors import MarshalError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream


def roundtrip(write, read, value, little_endian=False):
    out = CdrOutputStream(little_endian)
    getattr(out, write)(value)
    inp = CdrInputStream(out.getvalue(), little_endian)
    return getattr(inp, read)()


@pytest.mark.parametrize("little", [False, True])
@pytest.mark.parametrize("write,read,value", [
    ("write_octet", "read_octet", 0),
    ("write_octet", "read_octet", 255),
    ("write_boolean", "read_boolean", True),
    ("write_boolean", "read_boolean", False),
    ("write_short", "read_short", -32768),
    ("write_short", "read_short", 32767),
    ("write_ushort", "read_ushort", 65535),
    ("write_long", "read_long", -2**31),
    ("write_long", "read_long", 2**31 - 1),
    ("write_ulong", "read_ulong", 2**32 - 1),
    ("write_longlong", "read_longlong", -2**63),
    ("write_longlong", "read_longlong", 2**63 - 1),
    ("write_ulonglong", "read_ulonglong", 2**64 - 1),
    ("write_double", "read_double", 3.141592653589793),
    ("write_double", "read_double", -0.0),
    ("write_string", "read_string", ""),
    ("write_string", "read_string", "hello"),
    ("write_string", "read_string", "unicode: ünïcødé ✓"),
    ("write_octets", "read_octets", b""),
    ("write_octets", "read_octets", b"\x00\xff" * 100),
])
def test_primitive_roundtrips(write, read, value, little):
    assert roundtrip(write, read, value, little) == value


def test_float_roundtrip_within_precision():
    result = roundtrip("write_float", "read_float", 1.5)
    assert result == 1.5  # exactly representable


def test_alignment_pads_relative_to_stream_start():
    out = CdrOutputStream()
    out.write_octet(1)
    out.write_ulong(7)  # must pad 3 bytes to the 4-byte boundary
    data = out.getvalue()
    assert len(data) == 8
    assert data[1:4] == b"\x00\x00\x00"
    inp = CdrInputStream(data)
    assert inp.read_octet() == 1
    assert inp.read_ulong() == 7


def test_eight_byte_alignment_for_double():
    out = CdrOutputStream()
    out.write_octet(1)
    out.write_double(2.0)
    assert len(out.getvalue()) == 16


def test_mixed_sequence_roundtrip():
    out = CdrOutputStream()
    out.write_string("op")
    out.write_ulong(42)
    out.write_boolean(True)
    out.write_octets(b"key")
    out.write_double(1.25)
    inp = CdrInputStream(out.getvalue())
    assert inp.read_string() == "op"
    assert inp.read_ulong() == 42
    assert inp.read_boolean() is True
    assert inp.read_octets() == b"key"
    assert inp.read_double() == 1.25


def test_truncated_stream_raises():
    out = CdrOutputStream()
    out.write_ulong(5)
    data = out.getvalue()[:2]
    with pytest.raises(UnmarshalError):
        CdrInputStream(data).read_ulong()


def test_string_requires_nul_terminator():
    out = CdrOutputStream()
    out.write_ulong(3)
    out.write_raw(b"abc")      # missing NUL
    with pytest.raises(UnmarshalError):
        CdrInputStream(out.getvalue()).read_string()


def test_string_zero_length_invalid():
    out = CdrOutputStream()
    out.write_ulong(0)
    with pytest.raises(UnmarshalError):
        CdrInputStream(out.getvalue()).read_string()


def test_string_invalid_utf8_raises():
    out = CdrOutputStream()
    out.write_ulong(3)
    out.write_raw(b"\xff\xfe\x00")
    with pytest.raises(UnmarshalError):
        CdrInputStream(out.getvalue()).read_string()


def test_pack_out_of_range_raises():
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        out.write_octet(256)
    with pytest.raises(MarshalError):
        out.write_ulong(-1)


def test_encapsulation_preserves_inner_endianness():
    inner = CdrOutputStream(little_endian=True)
    inner.write_ulong(0xDEADBEEF)
    outer = CdrOutputStream(little_endian=False)
    outer.write_encapsulation(inner)
    read_outer = CdrInputStream(outer.getvalue(), little_endian=False)
    read_inner = read_outer.read_encapsulation()
    assert read_inner.little_endian is True
    assert read_inner.read_ulong() == 0xDEADBEEF


def test_empty_encapsulation_rejected():
    out = CdrOutputStream()
    out.write_octets(b"")
    with pytest.raises(UnmarshalError):
        CdrInputStream(out.getvalue()).read_encapsulation()


def test_remaining_tracks_position():
    inp = CdrInputStream(b"\x01\x02\x03\x04")
    assert inp.remaining == 4
    inp.read_octet()
    assert inp.remaining == 3


def test_endianness_actually_swaps_bytes():
    big = CdrOutputStream(little_endian=False)
    big.write_ulong(1)
    little = CdrOutputStream(little_endian=True)
    little.write_ulong(1)
    assert big.getvalue() == b"\x00\x00\x00\x01"
    assert little.getvalue() == b"\x01\x00\x00\x00"
