"""Unit tests for ServiceContexts and the handshake payloads."""

import pytest

from repro.errors import UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.giop.service_context import (
    CODE_SETS_ID,
    CODESET_UTF8,
    CODESET_UTF16,
    VENDOR_HANDSHAKE_ID,
    CodeSetContext,
    ServiceContext,
    VendorHandshakeContext,
    find_context,
    read_service_contexts,
    write_service_contexts,
)


def test_context_list_roundtrip():
    contexts = [ServiceContext(1, b"abc"), ServiceContext(0xFFFF, b"")]
    out = CdrOutputStream()
    write_service_contexts(out, contexts)
    decoded = read_service_contexts(CdrInputStream(out.getvalue()))
    assert decoded == contexts


def test_empty_context_list_roundtrip():
    out = CdrOutputStream()
    write_service_contexts(out, [])
    assert read_service_contexts(CdrInputStream(out.getvalue())) == []


def test_implausible_count_rejected():
    out = CdrOutputStream()
    out.write_ulong(2_000_000)
    with pytest.raises(UnmarshalError):
        read_service_contexts(CdrInputStream(out.getvalue()))


def test_codeset_context_roundtrip():
    original = CodeSetContext()
    ctx = original.to_service_context()
    assert ctx.context_id == CODE_SETS_ID
    decoded = CodeSetContext.from_service_context(ctx)
    assert decoded.char_data == CODESET_UTF8
    assert decoded.wchar_data == CODESET_UTF16


def test_codeset_wrong_id_rejected():
    with pytest.raises(UnmarshalError):
        CodeSetContext.from_service_context(ServiceContext(99, b""))


def test_handshake_proposal_roundtrip():
    original = VendorHandshakeContext(propose=True, object_key=b"\x00full")
    decoded = VendorHandshakeContext.from_service_context(
        original.to_service_context()
    )
    assert decoded.propose is True
    assert decoded.object_key == b"\x00full"
    assert decoded.short_key_token == 0


def test_handshake_answer_roundtrip():
    original = VendorHandshakeContext(propose=False, object_key=b"k",
                                      short_key_token=0xCAFE)
    decoded = VendorHandshakeContext.from_service_context(
        original.to_service_context()
    )
    assert decoded.propose is False
    assert decoded.short_key_token == 0xCAFE


def test_handshake_wrong_id_rejected():
    with pytest.raises(UnmarshalError):
        VendorHandshakeContext.from_service_context(ServiceContext(1, b""))


def test_find_context_returns_first_match():
    contexts = [ServiceContext(1, b"a"), ServiceContext(2, b"b"),
                ServiceContext(1, b"c")]
    assert find_context(contexts, 1).context_data == b"a"
    assert find_context(contexts, 2).context_data == b"b"
    assert find_context(contexts, 3) is None


def test_vendor_id_spells_eter():
    assert VENDOR_HANDSHAKE_ID.to_bytes(4, "big") == b"ETER"
