"""Unit tests for TypeCode-lite and the CORBA any."""

import pytest

from repro.errors import MarshalError, UnmarshalError
from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.giop.types import (
    Any,
    TCKind,
    TypeCode,
    TC_LONGLONG,
    decode_any,
    encode_any,
    from_any,
    read_any,
    struct_any,
    to_any,
    write_any,
)


@pytest.mark.parametrize("value", [
    None, True, False, 0, -1, 2**40, 3.5, "", "text", b"", b"\x00\x01",
    [], [1, 2, 3], ["a", 2, 3.0], {}, {"k": 1}, {"nested": {"x": [1, "y"]}},
    [b"bytes", {"deep": [None, True]}],
])
def test_to_any_roundtrip(value):
    assert from_any(decode_any(encode_any(to_any(value)))) == value


def test_to_any_infers_kinds():
    assert to_any(None).typecode.kind is TCKind.NULL
    assert to_any(True).typecode.kind is TCKind.BOOLEAN
    assert to_any(1).typecode.kind is TCKind.LONGLONG
    assert to_any(1.0).typecode.kind is TCKind.DOUBLE
    assert to_any("s").typecode.kind is TCKind.STRING
    assert to_any(b"b").typecode.kind is TCKind.OCTETS
    assert to_any([1]).typecode.kind is TCKind.SEQUENCE
    assert to_any({"a": 1}).typecode.kind is TCKind.MAP


def test_bool_not_mistaken_for_int():
    # bool is a subclass of int; order of checks matters.
    assert to_any(True).typecode.kind is TCKind.BOOLEAN


def test_to_any_of_any_is_identity():
    wrapped = to_any(5)
    assert to_any(wrapped) is wrapped


def test_to_any_rejects_unknown_types():
    with pytest.raises(MarshalError):
        to_any(object())


def test_struct_any_roundtrip():
    original = struct_any("Account", owner="alice", balance=10,
                          tags=["a", "b"])
    decoded = decode_any(encode_any(original))
    assert decoded.typecode.kind is TCKind.STRUCT
    assert decoded.typecode.name == "Account"
    assert decoded.value == {"owner": "alice", "balance": 10,
                             "tags": ["a", "b"]}


def test_struct_missing_field_raises():
    tc = TypeCode(TCKind.STRUCT, name="S",
                  fields=(("a", TC_LONGLONG),))
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        write_any(out, Any(tc, {}))


def test_sequence_typecode_requires_element():
    with pytest.raises(MarshalError):
        TypeCode(TCKind.SEQUENCE)


def test_unknown_tckind_rejected_on_decode():
    out = CdrOutputStream()
    out.write_boolean(False)
    out.write_ulong(250)     # no such kind
    with pytest.raises(UnmarshalError):
        decode_any(out.getvalue())


def test_write_read_any_inline():
    out = CdrOutputStream()
    write_any(out, to_any({"k": [1, 2]}))
    inp = CdrInputStream(out.getvalue())
    assert from_any(read_any(inp)) == {"k": [1, 2]}


def test_encode_any_little_endian():
    value = {"x": 9, "s": "é"}
    blob = encode_any(to_any(value), little_endian=True)
    assert from_any(decode_any(blob)) == value


def test_map_with_mixed_key_types():
    value = {1: "one", "two": 2}
    assert from_any(decode_any(encode_any(to_any(value)))) == value


def test_large_bulk_state_roundtrip():
    payload = bytes(range(256)) * 1000     # 256 kB
    value = {"payload": payload, "count": 3}
    assert from_any(decode_any(encode_any(to_any(value)))) == value


def test_tuple_becomes_list():
    assert from_any(decode_any(encode_any(to_any((1, 2))))) == [1, 2]


def test_any_repr_is_informative():
    assert "LONGLONG" in repr(to_any(3))
