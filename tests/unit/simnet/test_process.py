"""Unit tests for the crashable process abstraction."""

import pytest

from repro.errors import ProcessCrashed
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler


def test_starts_alive(make_process):
    assert make_process().alive


def test_crash_and_restart_toggle_alive(make_process):
    process = make_process()
    process.crash()
    assert not process.alive
    process.restart()
    assert process.alive


def test_check_alive_raises_when_crashed(make_process):
    process = make_process()
    process.crash()
    with pytest.raises(ProcessCrashed):
        process.check_alive()


def test_crash_is_idempotent(make_process):
    process = make_process()
    crashes = []
    process.on_crash(lambda: crashes.append(1))
    process.crash()
    process.crash()
    assert crashes == [1]


def test_restart_without_crash_is_noop(make_process):
    process = make_process()
    restarts = []
    process.on_restart(lambda: restarts.append(1))
    process.restart()
    assert restarts == []


def test_incarnation_counts_restarts(make_process):
    process = make_process()
    assert process.incarnation == 0
    process.crash()
    process.restart()
    assert process.incarnation == 1
    process.crash()
    process.restart()
    assert process.incarnation == 2


def test_listeners_fire_in_registration_order(make_process):
    process = make_process()
    order = []
    process.on_crash(lambda: order.append("a"))
    process.on_crash(lambda: order.append("b"))
    process.crash()
    assert order == ["a", "b"]


def test_call_after_skipped_when_crashed(scheduler, make_process):
    process = make_process()
    seen = []
    process.call_after(1.0, seen.append, "x")
    process.crash()
    scheduler.run()
    assert seen == []


def test_call_after_skipped_across_incarnations(scheduler, make_process):
    """A callback scheduled in a previous incarnation must not fire after a
    crash+restart — the component that scheduled it is gone."""
    process = make_process()
    seen = []
    process.call_after(1.0, seen.append, "stale")
    process.crash()
    process.restart()
    scheduler.run()
    assert seen == []


def test_call_after_fires_when_alive(scheduler, make_process):
    process = make_process()
    seen = []
    process.call_after(1.0, seen.append, "x")
    scheduler.run()
    assert seen == ["x"]


def test_announce_epochs_monotone_across_restarts(make_process):
    process = make_process()
    first = process.next_announce_epoch()
    process.crash()
    process.restart()
    second = process.next_announce_epoch()
    assert second > first > 0
