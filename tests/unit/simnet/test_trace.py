"""Unit tests for the tracer."""

from repro.simnet.trace import NULL_TRACER, NullTracer, Tracer


def test_emit_records_and_counts():
    tracer = Tracer()
    tracer.emit("cat", "ev", x=1)
    assert tracer.count("cat.ev") == 1
    assert len(tracer.records) == 1
    assert tracer.records[0].fields == {"x": 1}


def test_counters_update_even_without_records():
    tracer = Tracer(keep_records=False)
    tracer.emit("cat", "ev")
    assert tracer.count("cat.ev") == 1
    assert tracer.records == []


def test_count_of_unknown_key_is_zero():
    assert Tracer().count("nope.never") == 0


def test_enabled_categories_filter_records_not_counters():
    tracer = Tracer(enabled_categories={"keep"})
    tracer.emit("keep", "a")
    tracer.emit("drop", "b")
    assert len(tracer.records) == 1
    assert tracer.count("drop.b") == 1


def test_bind_clock_stamps_records():
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    clock["now"] = 3.25
    tracer.emit("cat", "ev")
    assert tracer.records[0].time == 3.25


def test_add_bumps_arbitrary_counter():
    tracer = Tracer()
    tracer.add("bytes", 100)
    tracer.add("bytes", 50)
    assert tracer.counters["bytes"] == 150


def test_find_filters_by_category_and_event():
    tracer = Tracer()
    tracer.emit("a", "x")
    tracer.emit("a", "y")
    tracer.emit("b", "x")
    assert len(list(tracer.find("a"))) == 2
    assert len(list(tracer.find("a", "x"))) == 1


def test_subscribe_receives_live_records():
    tracer = Tracer(keep_records=False)
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("cat", "ev", k="v")
    assert len(seen) == 1 and seen[0].fields == {"k": "v"}


def test_clear_resets_everything():
    tracer = Tracer()
    tracer.emit("cat", "ev")
    tracer.clear()
    assert tracer.records == [] and tracer.count("cat.ev") == 0


def test_enabled_categories_filter_subscribers_like_retention():
    tracer = Tracer(enabled_categories={"keep"})
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("keep", "a")
    tracer.emit("drop", "b")
    assert [r.category for r in tracer.records] == ["keep"]
    assert [r.category for r in seen] == ["keep"]
    assert tracer.count("drop.b") == 1      # counters still unconditional


def test_null_tracer_is_completely_inert():
    null = NullTracer()
    seen = []
    null.subscribe(seen.append)
    null.emit("cat", "ev", x=1)
    null.add("bytes", 100)
    assert null.records == []
    assert null.counters == {}
    assert seen == []
    assert null.open_spans is None


def test_null_tracer_singleton_accumulates_nothing():
    NULL_TRACER.emit("cat", "ev")
    NULL_TRACER.add("bytes", 10)
    assert NULL_TRACER.records == []
    assert NULL_TRACER.counters == {}


def test_clear_resets_open_spans():
    tracer = Tracer()
    tracer.open_spans.add("sp-1")
    tracer.clear()
    assert tracer.open_spans == set()
