"""Unit tests for the tracer."""

from repro.simnet.trace import Tracer


def test_emit_records_and_counts():
    tracer = Tracer()
    tracer.emit("cat", "ev", x=1)
    assert tracer.count("cat.ev") == 1
    assert len(tracer.records) == 1
    assert tracer.records[0].fields == {"x": 1}


def test_counters_update_even_without_records():
    tracer = Tracer(keep_records=False)
    tracer.emit("cat", "ev")
    assert tracer.count("cat.ev") == 1
    assert tracer.records == []


def test_count_of_unknown_key_is_zero():
    assert Tracer().count("nope.never") == 0


def test_enabled_categories_filter_records_not_counters():
    tracer = Tracer(enabled_categories={"keep"})
    tracer.emit("keep", "a")
    tracer.emit("drop", "b")
    assert len(tracer.records) == 1
    assert tracer.count("drop.b") == 1


def test_bind_clock_stamps_records():
    tracer = Tracer()
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    clock["now"] = 3.25
    tracer.emit("cat", "ev")
    assert tracer.records[0].time == 3.25


def test_add_bumps_arbitrary_counter():
    tracer = Tracer()
    tracer.add("bytes", 100)
    tracer.add("bytes", 50)
    assert tracer.counters["bytes"] == 150


def test_find_filters_by_category_and_event():
    tracer = Tracer()
    tracer.emit("a", "x")
    tracer.emit("a", "y")
    tracer.emit("b", "x")
    assert len(list(tracer.find("a"))) == 2
    assert len(list(tracer.find("a", "x"))) == 1


def test_subscribe_receives_live_records():
    tracer = Tracer(keep_records=False)
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("cat", "ev", k="v")
    assert len(seen) == 1 and seen[0].fields == {"k": "v"}


def test_clear_resets_everything():
    tracer = Tracer()
    tracer.emit("cat", "ev")
    tracer.clear()
    assert tracer.records == [] and tracer.count("cat.ev") == 0
