"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.simnet.scheduler import Scheduler


def test_starts_at_time_zero():
    assert Scheduler().now == 0.0


def test_call_at_executes_in_time_order():
    sched = Scheduler()
    order = []
    sched.call_at(2.0, order.append, "b")
    sched.call_at(1.0, order.append, "a")
    sched.call_at(3.0, order.append, "c")
    sched.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sched = Scheduler()
    order = []
    for tag in ("first", "second", "third"):
        sched.call_at(1.0, order.append, tag)
    sched.run()
    assert order == ["first", "second", "third"]


def test_now_advances_to_event_time():
    sched = Scheduler()
    seen = []
    sched.call_at(5.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [5.5]
    assert sched.now == 5.5


def test_call_after_is_relative():
    sched = Scheduler()
    seen = []
    sched.call_at(1.0, lambda: sched.call_after(2.0,
                                                lambda: seen.append(sched.now)))
    sched.run()
    assert seen == [3.0]


def test_call_at_in_past_raises():
    sched = Scheduler()
    sched.call_at(1.0, lambda: None)
    sched.run()
    with pytest.raises(ClockError):
        sched.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(ClockError):
        Scheduler().call_after(-0.1, lambda: None)


def test_cancel_skips_event():
    sched = Scheduler()
    seen = []
    event = sched.call_at(1.0, seen.append, "x")
    sched.cancel(event)
    sched.run()
    assert seen == []


def test_cancel_none_is_noop():
    Scheduler().cancel(None)


def test_step_returns_false_when_empty():
    assert Scheduler().step() is False


def test_step_executes_one_event():
    sched = Scheduler()
    seen = []
    sched.call_at(1.0, seen.append, 1)
    sched.call_at(2.0, seen.append, 2)
    assert sched.step() is True
    assert seen == [1]


def test_run_until_stops_at_boundary():
    sched = Scheduler()
    seen = []
    sched.call_at(1.0, seen.append, 1)
    sched.call_at(2.0, seen.append, 2)
    sched.run_until(1.5)
    assert seen == [1]
    assert sched.now == 1.5


def test_run_until_includes_boundary_events():
    sched = Scheduler()
    seen = []
    sched.call_at(1.0, seen.append, 1)
    sched.run_until(1.0)
    assert seen == [1]


def test_run_until_past_raises():
    sched = Scheduler()
    sched.call_at(2.0, lambda: None)
    sched.run()
    with pytest.raises(ClockError):
        sched.run_until(1.0)


def test_run_while_returns_true_when_condition_clears():
    sched = Scheduler()
    state = {"done": False}
    sched.call_at(1.0, lambda: state.update(done=True))
    assert sched.run_while(lambda: not state["done"], timeout=5.0) is True
    assert sched.now <= 5.0


def test_run_while_returns_false_on_timeout():
    sched = Scheduler()
    assert sched.run_while(lambda: True, timeout=1.0) is False
    assert sched.now == 1.0


def test_runaway_guard():
    sched = Scheduler()

    def reschedule():
        sched.call_after(0.001, reschedule)

    sched.call_after(0.001, reschedule)
    with pytest.raises(SimulationError):
        sched.run(max_events=100)


def test_events_executed_counter():
    sched = Scheduler()
    for i in range(5):
        sched.call_at(float(i + 1), lambda: None)
    sched.run()
    assert sched.events_executed == 5


def test_pending_counts_uncancelled():
    sched = Scheduler()
    sched.call_at(1.0, lambda: None)
    event = sched.call_at(2.0, lambda: None)
    event.cancel()
    assert sched.pending() == 1


def test_events_scheduled_during_run_execute():
    sched = Scheduler()
    seen = []
    sched.call_at(1.0, lambda: sched.call_at(1.5, seen.append, "nested"))
    sched.run()
    assert seen == ["nested"]
