"""Unit tests for the shared-medium network model."""

import pytest

from repro.errors import NetworkError, UnknownNode
from repro.simnet.network import ETHERNET_100MBPS, Network, NetworkConfig
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler


def build(scheduler, node_ids=("a", "b", "c"), config=ETHERNET_100MBPS):
    network = Network(scheduler, config)
    inboxes = {}
    for node_id in node_ids:
        process = Process(scheduler, node_id)
        inboxes[node_id] = []
        network.attach(process,
                       lambda src, payload, n=node_id:
                       inboxes[n].append((src, payload)))
    return network, inboxes


def test_unicast_delivers_to_destination_only(scheduler):
    network, inboxes = build(scheduler)
    network.unicast("a", "b", "hello", 100)
    scheduler.run()
    assert inboxes["b"] == [("a", "hello")]
    assert inboxes["a"] == [] and inboxes["c"] == []


def test_broadcast_delivers_to_all_including_sender(scheduler):
    network, inboxes = build(scheduler)
    network.broadcast("a", "m", 100)
    scheduler.run()
    for node_id in ("a", "b", "c"):
        assert inboxes[node_id] == [("a", "m")]


def test_unicast_to_unknown_node_raises(scheduler):
    network, _ = build(scheduler)
    with pytest.raises(UnknownNode):
        network.unicast("a", "zz", "m", 10)


def test_oversized_frame_rejected(scheduler):
    network, _ = build(scheduler)
    with pytest.raises(NetworkError):
        network.unicast("a", "b", "m", network.config.mtu_payload + 1)


def test_mtu_payload_boundary_accepted(scheduler):
    network, inboxes = build(scheduler)
    network.unicast("a", "b", "m", network.config.mtu_payload)
    scheduler.run()
    assert inboxes["b"]


def test_negative_size_rejected(scheduler):
    network, _ = build(scheduler)
    with pytest.raises(NetworkError):
        network.unicast("a", "b", "m", -1)


def test_larger_frames_take_longer(scheduler):
    network, inboxes = build(scheduler)
    arrivals = {}
    network.unicast("a", "b", "small", 10)
    scheduler.run()
    small_time = scheduler.now

    scheduler2 = Scheduler()
    network2, inboxes2 = build(scheduler2)
    network2.unicast("a", "b", "big", 1400)
    scheduler2.run()
    assert scheduler2.now > small_time


def test_medium_serializes_concurrent_frames(scheduler):
    """Two frames sent at the same instant occupy the medium in turn."""
    network, inboxes = build(scheduler)
    times = []
    network.set_handler("b", lambda src, payload: times.append(scheduler.now))
    network.unicast("a", "b", "one", 1000)
    network.unicast("c", "b", "two", 1000)
    scheduler.run()
    assert len(times) == 2
    gap = times[1] - times[0]
    assert gap >= network.config.frame_time(1000) * 0.99


def test_delivery_to_crashed_process_dropped(scheduler):
    network, inboxes = build(scheduler)
    network.unicast("a", "b", "m", 100)
    network.process("b").crash()
    scheduler.run()
    assert inboxes["b"] == []


def test_drop_filter_blocks_matching_frames(scheduler):
    network, inboxes = build(scheduler)
    network.add_filter(lambda src, dst, payload, size: dst == "b")
    network.broadcast("a", "m", 100)
    scheduler.run()
    assert inboxes["b"] == []
    assert inboxes["c"] == [("a", "m")]


def test_remove_filter_restores_delivery(scheduler):
    network, inboxes = build(scheduler)
    drop_all = lambda src, dst, payload, size: True
    network.add_filter(drop_all)
    network.remove_filter(drop_all)
    network.unicast("a", "b", "m", 100)
    scheduler.run()
    assert inboxes["b"] == [("a", "m")]


def test_set_handler_replaces_delivery_callback(scheduler):
    network, inboxes = build(scheduler)
    new_inbox = []
    network.set_handler("b", lambda src, payload: new_inbox.append(payload))
    network.unicast("a", "b", "m", 10)
    scheduler.run()
    assert new_inbox == ["m"] and inboxes["b"] == []


def test_set_handler_unknown_node_raises(scheduler):
    network, _ = build(scheduler)
    with pytest.raises(UnknownNode):
        network.set_handler("zz", lambda src, payload: None)


def test_frame_time_includes_overheads():
    config = NetworkConfig()
    # 1500 payload + 18 header + 20 silence = 1538 bytes at 100 Mbps
    assert config.frame_time(1500) == pytest.approx(1538 * 8 / 100e6)


def test_mtu_payload_value():
    assert ETHERNET_100MBPS.mtu_payload == 1500


def test_node_ids_lists_attached(scheduler):
    network, _ = build(scheduler)
    assert sorted(network.node_ids()) == ["a", "b", "c"]
