"""Unit tests for PeriodicTimer."""

import pytest

from repro.simnet.clock import PeriodicTimer
from repro.simnet.scheduler import Scheduler


def test_fires_every_interval():
    sched = Scheduler()
    ticks = []
    PeriodicTimer(sched, 1.0, lambda: ticks.append(sched.now))
    sched.run_until(3.5)
    assert ticks == [1.0, 2.0, 3.0]


def test_initial_delay_overrides_first_tick():
    sched = Scheduler()
    ticks = []
    PeriodicTimer(sched, 1.0, lambda: ticks.append(sched.now),
                  initial_delay=0.25)
    sched.run_until(2.5)
    assert ticks == [0.25, 1.25, 2.25]


def test_stop_cancels_future_ticks():
    sched = Scheduler()
    ticks = []
    timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(sched.now))
    sched.run_until(1.5)
    timer.stop()
    sched.run_until(5.0)
    assert ticks == [1.0]
    assert not timer.running


def test_stop_from_within_tick():
    sched = Scheduler()
    ticks = []
    timer = PeriodicTimer(sched, 1.0, lambda: (ticks.append(sched.now),
                                               timer.stop()))
    sched.run_until(5.0)
    assert ticks == [1.0]


def test_reset_restarts_interval():
    sched = Scheduler()
    ticks = []
    timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(sched.now))
    sched.run_until(0.5)
    timer.reset()
    sched.run_until(2.0)
    assert ticks == [1.5]


def test_reset_when_stopped_is_noop():
    sched = Scheduler()
    timer = PeriodicTimer(sched, 1.0, lambda: None, start=False)
    timer.reset()
    assert sched.pending() == 0


def test_start_false_requires_explicit_start():
    sched = Scheduler()
    ticks = []
    timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(1), start=False)
    sched.run_until(2.0)
    assert ticks == []
    timer.start()
    sched.run_until(4.0)
    assert len(ticks) == 2


def test_double_start_is_idempotent():
    sched = Scheduler()
    ticks = []
    timer = PeriodicTimer(sched, 1.0, lambda: ticks.append(1))
    timer.start()
    sched.run_until(1.5)
    assert len(ticks) == 1


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        PeriodicTimer(Scheduler(), 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicTimer(Scheduler(), -1.0, lambda: None)
