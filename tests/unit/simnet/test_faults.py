"""Unit tests for fault injection."""

import pytest

from repro.errors import SimulationError
from repro.simnet.faults import FaultInjector
from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler


def build(scheduler, node_ids=("a", "b", "c", "d")):
    network = Network(scheduler)
    inboxes = {}
    for node_id in node_ids:
        process = Process(scheduler, node_id)
        inboxes[node_id] = []
        network.attach(process,
                       lambda src, payload, n=node_id:
                       inboxes[n].append(payload))
    return network, inboxes, FaultInjector(network, seed=7)


def test_crash_kills_process(scheduler):
    network, _, faults = build(scheduler)
    faults.crash("a")
    assert not network.process("a").alive


def test_restart_revives_process(scheduler):
    network, _, faults = build(scheduler)
    faults.crash("a")
    faults.restart("a")
    assert network.process("a").alive


def test_crash_after_schedules(scheduler):
    network, _, faults = build(scheduler)
    faults.crash_after(1.0, "a")
    scheduler.run_until(0.5)
    assert network.process("a").alive
    scheduler.run_until(1.5)
    assert not network.process("a").alive


def test_restart_after_schedules(scheduler):
    network, _, faults = build(scheduler)
    faults.crash("a")
    faults.restart_after(1.0, "a")
    scheduler.run_until(1.5)
    assert network.process("a").alive


def test_partition_blocks_cross_group_frames(scheduler):
    network, inboxes, faults = build(scheduler)
    faults.partition([{"a", "b"}, {"c", "d"}])
    network.broadcast("a", "m", 100)
    scheduler.run()
    assert inboxes["b"] == ["m"]
    assert inboxes["c"] == [] and inboxes["d"] == []


def test_partition_allows_intra_group(scheduler):
    network, inboxes, faults = build(scheduler)
    faults.partition([{"a", "b"}, {"c", "d"}])
    network.unicast("c", "d", "m", 100)
    scheduler.run()
    assert inboxes["d"] == ["m"]


def test_unlisted_node_is_isolated(scheduler):
    network, inboxes, faults = build(scheduler)
    faults.partition([{"a", "b"}])
    network.broadcast("c", "m", 100)
    scheduler.run()
    assert inboxes["a"] == [] and inboxes["b"] == []
    # c is isolated from everyone else but still hears its own loopback
    assert inboxes["c"] == ["m"]


def test_overlapping_partition_groups_rejected(scheduler):
    _, _, faults = build(scheduler)
    with pytest.raises(SimulationError):
        faults.partition([{"a", "b"}, {"b", "c"}])


def test_heal_restores_connectivity(scheduler):
    network, inboxes, faults = build(scheduler)
    faults.partition([{"a"}, {"b", "c", "d"}])
    faults.heal()
    network.unicast("a", "b", "m", 100)
    scheduler.run()
    assert inboxes["b"] == ["m"]


def test_loss_rate_drops_some_frames(scheduler):
    network, inboxes, faults = build(scheduler)
    faults.set_loss_rate(0.5)
    for _ in range(60):
        network.unicast("a", "b", "m", 100)
    scheduler.run()
    received = len(inboxes["b"])
    assert 5 < received < 55    # statistically certain with seed control


def test_loss_never_affects_loopback(scheduler):
    network, inboxes, faults = build(scheduler)
    faults.set_loss_rate(1.0)
    for _ in range(10):
        network.broadcast("a", "m", 100)
    scheduler.run()
    assert len(inboxes["a"]) == 10
    assert inboxes["b"] == []


def test_invalid_loss_rate_rejected(scheduler):
    _, _, faults = build(scheduler)
    with pytest.raises(SimulationError):
        faults.set_loss_rate(1.5)
    with pytest.raises(SimulationError):
        faults.set_loss_rate(-0.1)
