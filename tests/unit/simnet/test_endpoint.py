"""Unit tests for the per-node endpoint dispatcher."""

from dataclasses import dataclass

from repro.simnet.endpoint import Endpoint
from repro.simnet.network import Network
from repro.simnet.process import Process


@dataclass(frozen=True)
class PayloadA:
    value: str


@dataclass(frozen=True)
class PayloadB:
    value: str


class PayloadASub(PayloadA):
    pass


def build(scheduler):
    network = Network(scheduler)
    endpoints = {}
    for node_id in ("x", "y"):
        endpoints[node_id] = Endpoint(Process(scheduler, node_id), network)
    return endpoints


def test_routes_by_payload_type(scheduler):
    eps = build(scheduler)
    got_a, got_b = [], []
    eps["y"].register(PayloadA, lambda src, p: got_a.append(p))
    eps["y"].register(PayloadB, lambda src, p: got_b.append(p))
    eps["x"].unicast("y", PayloadA("a"), 10)
    eps["x"].unicast("y", PayloadB("b"), 10)
    scheduler.run()
    assert [p.value for p in got_a] == ["a"]
    assert [p.value for p in got_b] == ["b"]


def test_unregistered_type_is_dropped(scheduler):
    eps = build(scheduler)
    eps["x"].unicast("y", PayloadA("a"), 10)
    scheduler.run()  # no handler — must not raise


def test_mro_fallback_matches_base_class(scheduler):
    eps = build(scheduler)
    got = []
    eps["y"].register(PayloadA, lambda src, p: got.append(p))
    eps["x"].unicast("y", PayloadASub("sub"), 10)
    scheduler.run()
    assert [p.value for p in got] == ["sub"]


def test_exact_match_beats_base_class(scheduler):
    eps = build(scheduler)
    got = []
    eps["y"].register(PayloadA, lambda src, p: got.append(("base", p)))
    eps["y"].register(PayloadASub, lambda src, p: got.append(("sub", p)))
    eps["x"].unicast("y", PayloadASub("s"), 10)
    scheduler.run()
    assert got[0][0] == "sub"


def test_unregister_removes_handler(scheduler):
    eps = build(scheduler)
    got = []
    eps["y"].register(PayloadA, lambda src, p: got.append(p))
    eps["y"].unregister(PayloadA)
    eps["x"].unicast("y", PayloadA("a"), 10)
    scheduler.run()
    assert got == []


def test_broadcast_reaches_all_endpoints(scheduler):
    eps = build(scheduler)
    got = {"x": [], "y": []}
    for node_id in ("x", "y"):
        eps[node_id].register(PayloadA,
                              lambda src, p, n=node_id: got[n].append(src))
    eps["x"].broadcast(PayloadA("m"), 10)
    scheduler.run()
    assert got["x"] == ["x"] and got["y"] == ["x"]


def test_node_id_property(scheduler):
    eps = build(scheduler)
    assert eps["x"].node_id == "x"
