"""Guard: build and profiling artifacts never land in the tree.

Profiling runs drop ``.folded`` files and Python drops ``__pycache__``
next to whatever module was imported; both are one careless ``git add``
away from being committed.  The only sanctioned profile artifacts are
the committed baselines under ``benchmarks/profiles/``.
"""

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def tracked_files():
    try:
        out = subprocess.run(
            ["git", "ls-files"], cwd=REPO_ROOT, check=True,
            capture_output=True, text=True, timeout=30,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        pytest.skip("git unavailable or not a work tree")
    if not out.strip():
        pytest.skip("no tracked files (not a git checkout)")
    return out.splitlines()


def test_no_bytecode_or_cache_dirs_tracked():
    offenders = [f for f in tracked_files()
                 if "__pycache__" in f or f.endswith((".pyc", ".pyo"))]
    assert offenders == []


def test_profile_artifacts_only_under_benchmarks_profiles():
    offenders = [f for f in tracked_files()
                 if f.endswith(".folded")
                 and not f.startswith("benchmarks/profiles/")]
    assert offenders == []


def test_gitignore_covers_profiling_artifacts():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__" in gitignore
    assert "*.folded" in gitignore
    # The committed-baseline carve-out must stay alongside the ignore.
    assert "!benchmarks/profiles/" in gitignore


def test_no_journal_artifacts_tracked():
    offenders = [f for f in tracked_files()
                 if f.endswith(".jrnl")
                 or Path(f).name == "MANIFEST"
                 or "/store-dir/" in f or f.startswith("store-dir/")]
    assert offenders == []


def test_gitignore_covers_journal_artifacts():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "*.jrnl" in gitignore
    assert "store-dir/" in gitignore
