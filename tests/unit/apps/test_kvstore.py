"""Unit tests for the kv-store application object."""

import pytest

from repro.apps.kvstore import KvStoreServant, make_kvstore_factory
from repro.ftcorba.checkpointable import InvalidState


def test_put_get_delete():
    store = KvStoreServant()
    assert store.put("k", [1, 2]) is True
    assert store.get("k") == [1, 2]
    assert store.size() == 1
    assert store.delete("k") is True
    assert store.delete("k") is False
    assert store.get("k") is None


def test_payload_exact_size():
    assert len(KvStoreServant(12345).payload) == 12345
    assert KvStoreServant(0).payload == b""


def test_preload_resizes():
    store = KvStoreServant()
    assert store.preload(100) == 100
    assert len(store.payload) == 100


def test_echo_counts_and_returns_token():
    store = KvStoreServant()
    assert store.echo(7) == 7
    assert store.echo(8) == 8
    assert store.echo_count == 2


def test_state_roundtrip_includes_everything():
    a = KvStoreServant(64)
    a.put("k", "v")
    a.echo(0)
    b = KvStoreServant()
    b.set_state(a.get_state())
    assert b.get("k") == "v"
    assert b.payload == a.payload
    assert b.echo_count == 1


def test_set_state_validates():
    with pytest.raises(InvalidState):
        KvStoreServant().set_state({"data": {}})


def test_factory_preloads():
    servant = make_kvstore_factory(2048)()
    assert len(servant.payload) == 2048
