"""Unit tests for the packet-driver client (with a stub container)."""

import pytest

from repro.apps.packet_driver import PacketDriverServant
from repro.ftcorba.checkpointable import InvalidState
from repro.giop.ior import IOR
from repro.giop.messages import ReplyMessage, ReplyStatus
from repro.orb.objectkey import make_key

IOR_TEXT = IOR("IDL:repro/KvStore:1.0", "store", 2809,
               make_key("RootPOA", b"store")).stringify()


class StubProxy:
    def __init__(self):
        self.invocations = []
        self.callbacks = []

    def invoke(self, operation, *args, on_reply=None):
        self.invocations.append((operation, args))
        self.callbacks.append(on_reply)
        return len(self.invocations) - 1


class StubContainer:
    def __init__(self):
        self.proxy = StubProxy()

    def connect(self, ior):
        self.ior = ior
        return self.proxy


def make_driver(**kwargs):
    driver = PacketDriverServant(IOR_TEXT, **kwargs)
    driver._eternal_container = StubContainer()
    return driver


def reply(token):
    return ReplyMessage(request_id=0, result=token)


def test_start_sends_first_invocation():
    driver = make_driver()
    driver.start()
    assert driver.sent == 1
    proxy = driver._eternal_container.proxy
    assert proxy.invocations == [("echo", (0,))]


def test_start_is_idempotent():
    driver = make_driver()
    driver.start()
    driver.start()
    assert driver.sent == 1


def test_reply_triggers_next_invocation():
    driver = make_driver()
    driver.start()
    proxy = driver._eternal_container.proxy
    proxy.callbacks[0](reply(0))
    assert driver.acked == 1
    assert driver.last_token == 0
    assert proxy.invocations[-1] == ("echo", (1,))


def test_exception_reply_does_not_advance():
    driver = make_driver()
    driver.start()
    proxy = driver._eternal_container.proxy
    bad = ReplyMessage(request_id=0,
                       reply_status=ReplyStatus.SYSTEM_EXCEPTION,
                       exception_id="IDL:X:1.0", result="err")
    proxy.callbacks[0](bad)
    assert driver.acked == 0
    assert len(proxy.invocations) == 1


def test_max_invocations_bounds_stream():
    driver = make_driver(max_invocations=2)
    driver.start()
    proxy = driver._eternal_container.proxy
    proxy.callbacks[0](reply(0))
    proxy.callbacks[1](reply(1))
    assert driver.sent == 2
    assert len(proxy.invocations) == 2


def test_resume_reissues_inflight():
    driver = make_driver()
    driver.set_state({"sent": 5, "acked": 4, "last_token": 3})
    driver.resume()
    proxy = driver._eternal_container.proxy
    assert proxy.invocations == [("echo", (4,))]   # token of in-flight #5
    assert driver.sent == 5                        # not double-counted


def test_resume_with_nothing_outstanding_sends_next():
    driver = make_driver()
    driver.set_state({"sent": 3, "acked": 3, "last_token": 2})
    driver.resume()
    assert driver._eternal_container.proxy.invocations == []
    # nothing in flight and already started: wait for normal stream


def test_resume_on_fresh_state_starts():
    driver = make_driver()
    driver.resume()
    assert driver.sent == 1


def test_token_base_offsets_tokens():
    driver = make_driver(payload_token_base=100)
    driver.start()
    assert driver._eternal_container.proxy.invocations == [("echo", (100,))]


def test_state_roundtrip():
    driver = make_driver()
    driver.set_state({"sent": 9, "acked": 8, "last_token": 7})
    assert driver.get_state() == {"sent": 9, "acked": 8, "last_token": 7,
                                  "scribbles_sent": 0, "scribbles_acked": 0}


def test_set_state_validates():
    with pytest.raises(InvalidState):
        make_driver().set_state({"sent": 1})
