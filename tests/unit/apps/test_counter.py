"""Unit tests for the counter application object."""

import pytest

from repro.apps.counter import CounterServant
from repro.ftcorba.checkpointable import InvalidState


def test_increment_and_read():
    counter = CounterServant()
    assert counter.increment(5) == 5
    assert counter.increment() == 6
    assert counter.read() == 6


def test_reset_returns_previous():
    counter = CounterServant()
    counter.increment(3)
    assert counter.reset() == 3
    assert counter.read() == 0


def test_state_roundtrip():
    a, b = CounterServant(), CounterServant()
    a.increment(42)
    b.set_state(a.get_state())
    assert b.read() == 42


def test_set_state_validates():
    with pytest.raises(InvalidState):
        CounterServant().set_state("garbage")
    with pytest.raises(InvalidState):
        CounterServant().set_state({"wrong": 1})
