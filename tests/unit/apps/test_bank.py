"""Unit tests for the bank application object."""

import pytest

from repro.apps.bank import BankServant, InsufficientFunds, NoSuchAccount
from repro.ftcorba.checkpointable import InvalidState


def make_bank():
    bank = BankServant()
    bank.open_account("alice", 100)
    bank.open_account("bob", 50)
    return bank


def test_open_is_idempotent():
    bank = make_bank()
    assert bank.open_account("alice", 999) == 100


def test_deposit_withdraw():
    bank = make_bank()
    assert bank.deposit("alice", 25) == 125
    assert bank.withdraw("alice", 100) == 25


def test_withdraw_insufficient_raises():
    with pytest.raises(InsufficientFunds):
        make_bank().withdraw("bob", 51)


def test_unknown_account_raises():
    with pytest.raises(NoSuchAccount):
        make_bank().balance("carol")


def test_transfer_conserves_total():
    bank = make_bank()
    before = bank.audit()["total"]
    bank.transfer("alice", "bob", 30)
    assert bank.audit()["total"] == before
    assert bank.balance("alice") == 70
    assert bank.balance("bob") == 80


def test_transfer_insufficient_changes_nothing():
    bank = make_bank()
    with pytest.raises(InsufficientFunds):
        bank.transfer("bob", "alice", 500)
    assert bank.balance("bob") == 50


def test_history_recorded_and_bounded():
    bank = BankServant()
    bank.open_account("a", 0)
    for _ in range(BankServant.MAX_HISTORY + 50):
        bank.deposit("a", 1)
    assert len(bank.history) == BankServant.MAX_HISTORY


def test_state_roundtrip():
    a = make_bank()
    a.deposit("alice", 7)
    b = BankServant()
    b.set_state(a.get_state())
    assert b.balance("alice") == 107
    assert b.history == a.history


def test_set_state_validates():
    with pytest.raises(InvalidState):
        BankServant().set_state({"nope": 1})
