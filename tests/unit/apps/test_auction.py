"""Unit tests for the auction application object."""

import pytest

from repro.apps.auction import (
    AuctionClosed,
    AuctionServant,
    BidRejected,
    NoSuchAuction,
)
from repro.ftcorba.checkpointable import InvalidState


def make_auction():
    servant = AuctionServant()
    servant.create_auction("vase", reserve=100)
    return servant


def test_create_is_idempotent():
    servant = make_auction()
    servant.bid("vase", "alice", 150)
    servant.create_auction("vase", reserve=999)
    assert servant.status("vase")["high_bid"] == 150


def test_bid_below_reserve_rejected():
    with pytest.raises(BidRejected):
        make_auction().bid("vase", "alice", 99)


def test_bid_must_beat_current_high():
    servant = make_auction()
    servant.bid("vase", "alice", 150)
    with pytest.raises(BidRejected):
        servant.bid("vase", "bob", 150)
    with pytest.raises(BidRejected):
        servant.bid("vase", "bob", 120)


def test_bid_ids_increase():
    servant = make_auction()
    first = servant.bid("vase", "alice", 150)
    second = servant.bid("vase", "bob", 200)
    assert second > first


def test_unknown_auction_rejected():
    with pytest.raises(NoSuchAuction):
        make_auction().bid("ghost", "alice", 100)
    with pytest.raises(NoSuchAuction):
        make_auction().status("ghost")


def test_close_picks_high_bidder():
    servant = make_auction()
    servant.bid("vase", "alice", 150)
    servant.bid("vase", "bob", 200)
    assert servant.close_auction("vase") == "bob"
    status = servant.status("vase")
    assert status["closed"] and status["winner"] == "bob"


def test_close_without_bids_has_no_winner():
    assert make_auction().close_auction("vase") is None


def test_bid_on_closed_auction_rejected():
    servant = make_auction()
    servant.close_auction("vase")
    with pytest.raises(AuctionClosed):
        servant.bid("vase", "alice", 150)


def test_watch_is_silent_and_idempotent():
    servant = make_auction()
    servant.watch("vase", "carol")
    servant.watch("vase", "carol")
    servant.watch("ghost", "carol")        # silently ignored (oneway)
    assert servant.status("vase")["watchers"] == 1


def test_invariants_hold_on_normal_flow():
    servant = make_auction()
    servant.bid("vase", "alice", 150)
    servant.bid("vase", "bob", 200)
    servant.close_auction("vase")
    servant.check_invariants()


def test_state_roundtrip():
    original = make_auction()
    original.bid("vase", "alice", 150)
    original.watch("vase", "carol")
    clone = AuctionServant()
    clone.set_state(original.get_state())
    assert clone.get_state() == original.get_state()
    clone.check_invariants()
    # deep copy: mutating the clone must not touch the original
    clone.bid("vase", "bob", 300)
    assert original.status("vase")["high_bid"] == 150


def test_set_state_validates():
    with pytest.raises(InvalidState):
        AuctionServant().set_state({"auctions": "nope"})
