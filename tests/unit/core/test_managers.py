"""Unit tests for ResourceManager and ReplicationManager policies."""

import pytest

from repro.apps.counter import CounterServant
from repro.core.managers import ResourceManager
from repro.errors import ObjectGroupError
from repro.ftcorba.generic_factory import FactoryRegistry
from repro.ftcorba.properties import FTProperties, ReplicationStyle


def make_resources(nodes=("a", "b", "c")):
    registry = FactoryRegistry()
    registry.register_everywhere(nodes, "T", CounterServant)
    resources = ResourceManager(registry)
    resources.set_alive(set(nodes))
    return resources


def test_pick_node_prefers_least_loaded():
    resources = make_resources()
    resources.note_placed("a")
    resources.note_placed("a")
    resources.note_placed("b")
    assert resources.pick_node("T", 0, exclude=set()) == "c"


def test_pick_node_ties_break_on_node_id():
    resources = make_resources()
    assert resources.pick_node("T", 0, exclude=set()) == "a"


def test_pick_node_respects_exclusion():
    resources = make_resources()
    assert resources.pick_node("T", 0, exclude={"a"}) == "b"


def test_pick_node_requires_alive():
    resources = make_resources()
    resources.set_alive({"b"})
    assert resources.pick_node("T", 0, exclude=set()) == "b"
    resources.set_alive(set())
    assert resources.pick_node("T", 0, exclude=set()) is None


def test_pick_node_requires_factory():
    resources = make_resources()
    assert resources.pick_node("Unknown", 0, exclude=set()) is None


def test_load_bookkeeping_never_negative():
    resources = make_resources()
    resources.note_removed("a")
    assert resources.load_of("a") == 0
    resources.note_placed("a")
    resources.note_removed("a")
    resources.note_removed("a")
    assert resources.load_of("a") == 0


def test_version_aware_placement():
    registry = FactoryRegistry()
    registry.register_everywhere(["a"], "T", CounterServant, version=0)
    registry.register_everywhere(["b"], "T", CounterServant, version=1)
    resources = ResourceManager(registry)
    resources.set_alive({"a", "b"})
    assert resources.pick_node("T", 0, exclude=set()) == "a"
    assert resources.pick_node("T", 1, exclude=set()) == "b"


# ---------------------------------------------------------------------------
# ReplicationManager policy (through a tiny live system)
# ---------------------------------------------------------------------------

def live_system(nodes=("m", "n1", "n2")):
    from repro.core.system import EternalSystem
    system = EternalSystem(list(nodes))
    system.register_factory("IDL:repro/Counter:1.0", CounterServant,
                            nodes=[n for n in nodes if n != "m"])
    return system


def test_create_group_roles_active():
    system = live_system()
    managed = system.replication_manager.create_group(
        "g", "IDL:repro/Counter:1.0",
        FTProperties(initial_replicas=2), nodes=["n1", "n2"],
    )
    assert set(managed.assignments.values()) == {"active"}


def test_create_group_roles_passive():
    system = live_system()
    managed = system.replication_manager.create_group(
        "g", "IDL:repro/Counter:1.0",
        FTProperties(replication_style=ReplicationStyle.WARM_PASSIVE,
                     initial_replicas=2),
        nodes=["n1", "n2"],
    )
    roles = sorted(managed.assignments.values())
    assert roles == ["backup", "primary"]


def test_add_member_duplicate_rejected():
    system = live_system()
    rm = system.replication_manager
    rm.create_group("g", "IDL:repro/Counter:1.0",
                    FTProperties(initial_replicas=1), nodes=["n1"])
    with pytest.raises(ObjectGroupError):
        rm.add_member("g", "n1")


def test_remove_unknown_member_rejected():
    system = live_system()
    rm = system.replication_manager
    rm.create_group("g", "IDL:repro/Counter:1.0",
                    FTProperties(initial_replicas=1), nodes=["n1"])
    with pytest.raises(ObjectGroupError):
        rm.remove_member("g", "n2")


def test_remove_primary_promotes_in_assignments():
    system = live_system()
    rm = system.replication_manager
    rm.create_group("g", "IDL:repro/Counter:1.0",
                    FTProperties(replication_style=
                                 ReplicationStyle.WARM_PASSIVE,
                                 initial_replicas=2),
                    nodes=["n1", "n2"])
    primary = next(n for n, r in rm.groups["g"].assignments.items()
                   if r == "primary")
    rm.remove_member("g", primary)
    assert "primary" in rm.groups["g"].assignments.values()


def test_unknown_group_operations_rejected():
    system = live_system()
    rm = system.replication_manager
    with pytest.raises(ObjectGroupError):
        rm.add_member("ghost", "n1")
    with pytest.raises(ObjectGroupError):
        rm.remove_member("ghost", "n1")


def test_create_group_insufficient_capacity_rejected():
    system = live_system(nodes=("m",))
    with pytest.raises(ObjectGroupError):
        system.replication_manager.create_group(
            "g", "IDL:repro/Counter:1.0", FTProperties(initial_replicas=1)
        )
