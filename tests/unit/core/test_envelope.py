"""Unit tests for multicast envelope encoding."""

import pytest

from repro.core.envelope import (
    GroupUpdate,
    IiopEnvelope,
    ReplicaJoin,
    StateGet,
    StateSet,
    TransferPurpose,
    decode_envelope,
    encode_envelope,
)
from repro.core.identifiers import ConnectionKey, OpKind
from repro.errors import ProtocolError

CONN = ConnectionKey("c", "s")


def roundtrip(envelope):
    return decode_envelope(encode_envelope(envelope))


def test_iiop_envelope_roundtrip():
    original = IiopEnvelope(CONN, OpKind.REQUEST, 42, "n1", b"\x01\x02")
    decoded = roundtrip(original)
    assert decoded == original


def test_iiop_target_group_by_kind():
    request = IiopEnvelope(CONN, OpKind.REQUEST, 0, "n", b"")
    reply = IiopEnvelope(CONN, OpKind.REPLY, 0, "n", b"")
    assert request.target_group == "s"
    assert reply.target_group == "c"


def test_iiop_operation_id():
    envelope = IiopEnvelope(CONN, OpKind.REPLY, 9, "n", b"")
    assert envelope.operation_id.request_id == 9
    assert envelope.operation_id.kind is OpKind.REPLY


def test_group_update_roundtrip():
    original = GroupUpdate(
        group_id="g", type_id="IDL:T:1.0", style="warm_passive",
        checkpoint_interval=0.25, app_version=3,
        members=(("n1", "primary", True), ("n2", "backup", False)),
        action="add", subject_node="n2",
    )
    assert roundtrip(original) == original


def test_replica_join_roundtrip():
    assert roundtrip(ReplicaJoin("g", "n3", "rec:g:n3:1")) == \
        ReplicaJoin("g", "n3", "rec:g:n3:1")


def test_state_get_roundtrip():
    original = StateGet("g", "t1", TransferPurpose.RECOVERY, "n1", "n3")
    assert roundtrip(original) == original


def test_state_get_checkpoint_purpose():
    original = StateGet("g", "t1", TransferPurpose.CHECKPOINT, "n1")
    decoded = roundtrip(original)
    assert decoded.purpose is TransferPurpose.CHECKPOINT
    assert decoded.target_node == ""


def test_state_set_roundtrip():
    original = StateSet("g", "t1", TransferPurpose.RECOVERY, "n1", "n3",
                        b"app" * 100, b"orb", b"infra")
    assert roundtrip(original) == original


def test_state_set_size_dominated_by_app_state():
    small = encode_envelope(StateSet("g", "t", TransferPurpose.RECOVERY,
                                     "a", "b", b"", b"", b""))
    big = encode_envelope(StateSet("g", "t", TransferPurpose.RECOVERY,
                                   "a", "b", b"x" * 10_000, b"", b""))
    assert len(big) - len(small) >= 10_000


def test_unknown_tag_rejected():
    with pytest.raises(ProtocolError):
        decode_envelope(b"\x99rest")


def test_encode_rejects_unknown_type():
    with pytest.raises(ProtocolError):
        encode_envelope(object())
