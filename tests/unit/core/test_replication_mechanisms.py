"""Unit tests for Replication Mechanisms routing and group-view handling.

These drive a real two/three-node system but assert on the *internal*
mechanism state (bindings, group views, delivery decisions) rather than
end-to-end application behaviour.
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.counter import CounterServant
from repro.core.envelope import GroupUpdate, IiopEnvelope
from repro.core.identifiers import ConnectionKey, OpKind
from repro.core.replication import STATUS_OPERATIONAL, STATUS_RECOVERING

COUNTER = "IDL:repro/Counter:1.0"


def make_system(nodes=("m", "n1", "n2")):
    system = EternalSystem(list(nodes))
    system.register_factory(COUNTER, CounterServant,
                            nodes=[n for n in nodes if n != "m"])
    return system


def test_group_update_create_builds_operational_bindings():
    system = make_system()
    system.create_group("g", COUNTER, FTProperties(initial_replicas=2),
                        nodes=["n1", "n2"])
    system.run_for(0.05)
    for node in ("n1", "n2"):
        binding = system.mechanisms(node).bindings["g"]
        assert binding.status == STATUS_OPERATIONAL
    # non-members track the view but host nothing
    assert "g" not in system.mechanisms("m").bindings
    assert "g" in system.mechanisms("m").groups


def test_group_update_add_starts_recovery():
    system = make_system()
    system.create_group("g", COUNTER, FTProperties(initial_replicas=1,
                                                   min_replicas=1),
                        nodes=["n1"])
    system.run_for(0.05)
    system.replication_manager.add_member("g", "n2")
    # capture the recovering status before the (fast) transfer completes
    system.wait_for(lambda: "g" in system.mechanisms("n2").bindings,
                    timeout=1.0)
    system.wait_for(
        lambda: system.mechanisms("n2").bindings["g"].operational,
        timeout=2.0,
    )
    info = system.mechanisms("m").groups["g"]
    assert set(info.roles) == {"n1", "n2"}
    assert "n2" in info.operational


def test_group_update_remove_destroys_binding():
    system = make_system()
    system.create_group("g", COUNTER, FTProperties(initial_replicas=2),
                        nodes=["n1", "n2"])
    system.run_for(0.05)
    system.replication_manager.remove_member("g", "n2")
    system.run_for(0.05)
    assert "g" not in system.mechanisms("n2").bindings
    assert "n2" not in system.mechanisms("n1").groups["g"].roles


def test_iiop_for_unhosted_group_ignored():
    system = make_system()
    system.run_for(0.05)
    mechanisms = system.mechanisms("n1")
    envelope = IiopEnvelope(ConnectionKey("x", "ghost"), OpKind.REQUEST,
                            0, "m", b"junk")
    mechanisms._handle_iiop(envelope)        # must not raise


def test_duplicate_request_filtered_per_replica():
    system = make_system()
    group = system.create_group("g", COUNTER,
                                FTProperties(initial_replicas=1),
                                nodes=["n1"])
    system.run_for(0.05)
    mechanisms = system.mechanisms("n1")
    binding = mechanisms.bindings["g"]
    from repro.giop.messages import RequestMessage, encode_message
    from repro.orb.objectkey import make_key
    wire = encode_message(RequestMessage(
        request_id=0, object_key=make_key("RootPOA", b"g"),
        operation="increment", args=(1,),
    ))
    envelope = IiopEnvelope(ConnectionKey("cli", "g"), OpKind.REQUEST, 0,
                            "other", wire)
    mechanisms._handle_iiop(envelope)
    mechanisms._handle_iiop(envelope)        # duplicate copy
    system.run_for(0.01)
    assert binding.container.servant.value == 1


def test_recovering_binding_drops_pre_sync_and_queues_post_sync():
    system = make_system()
    system.create_group("g", COUNTER, FTProperties(initial_replicas=1),
                        nodes=["n1"])
    system.run_for(0.05)
    mechanisms = system.mechanisms("n1")
    binding = mechanisms.bindings["g"]
    binding.status = STATUS_RECOVERING
    binding.sync_point_seen = False
    envelope = IiopEnvelope(ConnectionKey("cli", "g"), OpKind.REQUEST, 0,
                            "other", b"bytes")
    mechanisms._handle_iiop(envelope)
    assert binding.enqueued == []            # pre-sync-point: dropped
    binding.sync_point_seen = True
    envelope2 = IiopEnvelope(ConnectionKey("cli", "g"), OpKind.REQUEST, 1,
                             "other", b"bytes")
    mechanisms._handle_iiop(envelope2)
    assert binding.enqueued == [(2, envelope2)]  # post-sync-point: enqueued


def test_backup_logs_but_does_not_execute():
    system = make_system()
    system.create_group(
        "g", COUNTER,
        FTProperties(replication_style=ReplicationStyle.WARM_PASSIVE,
                     initial_replicas=2, min_replicas=1),
        nodes=["n1", "n2"],
    )
    system.run_for(0.05)
    info = system.mechanisms("m").groups["g"]
    backup = [n for n in ("n1", "n2") if n != info.primary_node][0]
    mechanisms = system.mechanisms(backup)
    binding = mechanisms.bindings["g"]
    from repro.giop.messages import RequestMessage, encode_message
    from repro.orb.objectkey import make_key
    wire = encode_message(RequestMessage(
        request_id=0, object_key=make_key("RootPOA", b"g"),
        operation="increment", args=(1,),
    ))
    envelope = IiopEnvelope(ConnectionKey("cli", "g"), OpKind.REQUEST, 0,
                            "other", wire)
    mechanisms._handle_iiop(envelope)
    system.run_for(0.01)
    assert binding.log.log_length == 1
    assert binding.container.servant.value == 0


def test_view_listeners_receive_losses():
    system = make_system()
    system.run_for(0.05)
    events = []
    system.mechanisms("m").on_view_event(
        lambda view, lost, joined: events.append((set(lost), set(joined)))
    )
    system.kill_node("n2")
    system.run_for(0.2)
    assert any(lost == {"n2"} for lost, joined in events)
