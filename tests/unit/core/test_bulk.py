"""Unit tests for the out-of-band recovery bulk lane (repro.core.bulk).

The session/store machinery is driven with hand-cranked fakes (no
simulator): a FakeHost whose timers fire on demand and a FakeEndpoint that
records every out-of-band unicast and lets the test loop frames back."""

from __future__ import annotations

from zlib import crc32

import pytest

from repro.core.bulk import (
    BulkLane,
    PageManifest,
    _runs,
    build_manifest,
    decode_manifest,
    encode_manifest,
)
from repro.core.config import EternalConfig
from repro.errors import StateTransferError
from repro.obs.audit import state_digest
from repro.runtime.trace import Tracer
from repro.totem.wire import BulkFetch, BulkNack, BulkPage


class FakeTimer:
    def __init__(self, host, fn, args):
        self.host = host
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class FakeHost:
    """Timers queue up and fire only when the test says so."""

    def __init__(self):
        self.timers = []

    def call_after(self, delay, fn, *args):
        timer = FakeTimer(self, fn, args)
        self.timers.append((delay, timer))
        return timer

    def fire(self, max_delay=float("inf")):
        """Run every queued timer with delay <= ``max_delay`` once (new
        timers queue up; longer ones — e.g. the store TTL — stay put)."""
        due = [(d, t) for d, t in self.timers if d <= max_delay]
        self.timers = [(d, t) for d, t in self.timers if d > max_delay]
        for _, timer in due:
            if not timer.cancelled:
                timer.fn(*timer.args)


class FakeEndpoint:
    def __init__(self):
        self.sent = []          # (dst, frame, oob)
        self.handlers = {}

    def register(self, payload_type, handler):
        self.handlers[payload_type] = handler

    def unicast(self, dst, payload, size_bytes, *, oob=False):
        self.sent.append((dst, payload, oob))

    def deliver(self, src, payload):
        self.handlers[type(payload)](src, payload)


def make_lane(**config_kwargs):
    config_kwargs.setdefault("bulk_burst_pages", 4)
    config = EternalConfig(**config_kwargs)
    host = FakeHost()
    endpoint = FakeEndpoint()
    lane = BulkLane(host, endpoint, config, Tracer(), "target")
    return lane, host, endpoint


BLOB = bytes(range(256)) * 22          # 5632 B -> 6 pages of 1024


# ---------------------------------------------------------------------------
# Manifest codec
# ---------------------------------------------------------------------------

def test_manifest_round_trip():
    manifest = build_manifest(BLOB, 1024)
    assert manifest.page_count == 6
    assert manifest.total_length == len(BLOB)
    assert manifest.state_digest == state_digest(BLOB)
    decoded = decode_manifest(encode_manifest(manifest))
    assert decoded == manifest


def test_manifest_empty_state():
    manifest = build_manifest(b"", 1024)
    assert manifest.page_count == 0
    assert decode_manifest(encode_manifest(manifest)) == manifest


@pytest.mark.parametrize("mutate", [
    lambda data: b"",                               # empty body
    lambda data: data[:5],                          # truncated
    lambda data: b"\x63" + data[1:],                # unknown version
])
def test_manifest_decode_rejects_malformed(mutate):
    data = encode_manifest(build_manifest(BLOB, 1024))
    with pytest.raises(StateTransferError):
        decode_manifest(mutate(data))


def test_manifest_decode_rejects_inconsistent_page_count():
    # 3 CRCs for a 5632-byte/1024-page snapshot (needs 6): malformed.
    bad = PageManifest(state_digest(BLOB), len(BLOB), 1024, (1, 2, 3))
    with pytest.raises(StateTransferError):
        decode_manifest(encode_manifest(bad))


def test_runs_collapses_contiguous_indices():
    assert _runs([]) == []
    assert _runs([4]) == [(4, 4)]
    assert _runs([0, 1, 2, 5, 6, 9]) == [(0, 2), (5, 6), (9, 9)]


# ---------------------------------------------------------------------------
# BulkStore (responder side)
# ---------------------------------------------------------------------------

def test_store_serves_fetch_in_paced_bursts():
    lane, host, endpoint = make_lane()
    lane.store.stash("t1", "g", BLOB, 1024)
    endpoint.deliver("target", BulkFetch("t1", "target", 0, 5))
    # First burst (bulk_burst_pages=4) goes out synchronously…
    pages = [f for _, f, oob in endpoint.sent if isinstance(f, BulkPage)]
    assert [p.index for p in pages] == [0, 1, 2, 3]
    assert all(oob for _, f, oob in endpoint.sent)
    # …the rest after the burst-interval timer (not the 5 s store TTL).
    host.fire(max_delay=0.01)
    pages = [f for _, f, _ in endpoint.sent if isinstance(f, BulkPage)]
    assert [p.index for p in pages] == [0, 1, 2, 3, 4, 5]
    assert b"".join(p.page for p in pages) == BLOB
    assert all(crc32(p.page) == p.crc for p in pages)


def test_store_nacks_unknown_and_pending():
    lane, host, endpoint = make_lane()
    endpoint.deliver("target", BulkFetch("nope", "target", 0, 1))
    lane.store.note_pending("soon")
    endpoint.deliver("target", BulkFetch("soon", "target", 0, 1))
    nacks = [f for _, f, _ in endpoint.sent if isinstance(f, BulkNack)]
    assert [n.reason for n in nacks] == ["unknown", "pending"]


def test_store_expires_stash_after_ttl():
    lane, host, endpoint = make_lane()
    lane.store.stash("t1", "g", BLOB, 1024)
    assert len(lane.store) == 1
    host.fire()                                    # the TTL timer
    assert len(lane.store) == 0
    endpoint.deliver("target", BulkFetch("t1", "target", 0, 5))
    nacks = [f for _, f, _ in endpoint.sent if isinstance(f, BulkNack)]
    assert nacks and nacks[0].reason == "unknown"


# ---------------------------------------------------------------------------
# BulkSession (target side)
# ---------------------------------------------------------------------------

def serve(endpoint, manifest, blob, *, corrupt=frozenset(),
          mute=frozenset()):
    """Answer every outstanding fetch from the recorded unicasts, like a
    set of well-behaved (or not) sponsors would."""
    fetches = [(dst, f) for dst, f, _ in endpoint.sent
               if isinstance(f, BulkFetch)]
    del endpoint.sent[:]
    for sponsor, fetch in fetches:
        if sponsor in mute:
            continue
        for index in range(fetch.first_page, fetch.last_page + 1):
            page = blob[index * 1024:(index + 1) * 1024]
            if index in corrupt:
                page = b"\x00" * len(page)
            endpoint.deliver(sponsor, BulkPage(
                fetch.session_id, sponsor, index,
                manifest.page_crcs[index], page))


def start_session(lane, sponsors):
    manifest = build_manifest(BLOB, 1024)
    results = []
    lane.start_session("t1", "g", manifest, sponsors, results.append)
    return manifest, results


def test_session_stripes_across_sponsors_and_completes():
    lane, host, endpoint = make_lane(bulk_stripe_width=2)
    manifest, results = start_session(lane, ["s1", "s2", "s3"])
    fetch_dsts = {dst for dst, f, _ in endpoint.sent
                  if isinstance(f, BulkFetch)}
    assert fetch_dsts == {"s1", "s2"}              # width-capped striping
    serve(endpoint, manifest, BLOB)
    assert results == [BLOB]
    assert lane.snapshot()["sessions_active"] == 0


def test_session_ignores_corrupt_page_and_refetches():
    lane, host, endpoint = make_lane(bulk_stripe_width=1)
    manifest, results = start_session(lane, ["s1"])
    serve(endpoint, manifest, BLOB, corrupt={2})
    assert results == []                           # page 2 still missing
    host.fire()        # watchdog tick 1: progress seen, grace granted
    host.fire()        # watchdog tick 2: stalled -> refetch
    serve(endpoint, manifest, BLOB)
    assert results == [BLOB]


def test_session_drops_stalled_sponsor_and_restripes():
    lane, host, endpoint = make_lane(bulk_stripe_width=2,
                                     bulk_max_retries=1)
    manifest, results = start_session(lane, ["dead", "s2"])
    serve(endpoint, manifest, BLOB, mute={"dead"})
    assert results == []
    host.fire()            # tick 1: s2's pages count as progress (grace)
    host.fire()            # tick 2: "dead" stalled -> retransmit
    serve(endpoint, manifest, BLOB, mute={"dead"})   # still silent
    host.fire()            # tick 3: retries exhausted -> drop + restripe
    assert results == []
    serve(endpoint, manifest, BLOB, mute={"dead"})   # s2 serves restripe
    assert results == [BLOB]


def test_session_fails_when_all_sponsors_exhausted():
    lane, host, endpoint = make_lane(bulk_stripe_width=2,
                                     bulk_max_retries=1)
    manifest, results = start_session(lane, ["dead1", "dead2"])
    for _ in range(8):
        host.fire()                                # watchdogs, no pages ever
    assert results == [None]
    assert lane.snapshot()["sessions_active"] == 0


def test_session_nack_unknown_drops_sponsor_immediately():
    lane, host, endpoint = make_lane(bulk_stripe_width=2)
    manifest, results = start_session(lane, ["gone", "s2"])
    del endpoint.sent[:]
    endpoint.deliver("gone", BulkNack("t1", "gone", "unknown"))
    # restriped onto s2 without waiting for the watchdog
    serve(endpoint, manifest, BLOB)
    assert results == [BLOB]


def test_session_nack_pending_keeps_sponsor():
    lane, host, endpoint = make_lane(bulk_stripe_width=1,
                                     bulk_max_retries=1)
    manifest, results = start_session(lane, ["slow"])
    del endpoint.sent[:]
    for _ in range(5):
        # each watchdog tick refetches; the sponsor keeps answering
        # "pending", which must never exhaust its retry budget
        endpoint.deliver("slow", BulkNack("t1", "slow", "pending"))
        host.fire()
    serve(endpoint, manifest, BLOB)
    assert results == [BLOB]


def test_session_no_sponsors_fails_immediately():
    lane, host, endpoint = make_lane()
    manifest, results = start_session(lane, [])
    assert results == [None]


def test_abort_session_suppresses_callback():
    lane, host, endpoint = make_lane(bulk_stripe_width=1)
    manifest, results = start_session(lane, ["s1"])
    lane.abort_session("t1")
    serve(endpoint, manifest, BLOB)
    host.fire()
    assert results == []


def test_snapshot_gauges():
    lane, host, endpoint = make_lane(bulk_stripe_width=2)
    lane.store.stash("other", "g", BLOB, 1024)
    manifest, results = start_session(lane, ["s1", "s2"])
    snap = lane.snapshot()
    assert snap == {"sessions_active": 1, "stripes_in_flight": 2,
                    "store_entries": 1}
