"""Unit tests for the replica container (work queue + state ops)."""

import pytest

from repro.core.config import EternalConfig
from repro.core.container import ReplicaContainer
from repro.core.identifiers import ConnectionKey
from repro.errors import StateTransferError
from repro.ftcorba.checkpointable import Checkpointable
from repro.giop.messages import RequestMessage, decode_message, encode_message
from repro.giop.types import decode_any, encode_any, to_any
from repro.orb.objectkey import make_key
from repro.orb.servant import operation
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler

CONN = ConnectionKey("c", "g")
GROUP_KEY = make_key("RootPOA", b"g")


class Item(Checkpointable):
    def __init__(self):
        self.value = 0
        self.calls = []

    @operation(duration=0.01)
    def bump(self, n):
        self.value += n
        self.calls.append(n)
        return self.value

    def get_state(self):
        return {"value": self.value}

    def set_state(self, state):
        self.value = state["value"]


def build(servant=None):
    scheduler = Scheduler()
    process = Process(scheduler, "n1")
    replies = []
    container = ReplicaContainer(
        process, "g", servant if servant is not None else Item(),
        EternalConfig(),
        on_reply_produced=lambda conn, data: replies.append((conn, data)),
    )
    return scheduler, container, replies


def request_bytes(request_id, op="bump", args=(1,)):
    return encode_message(RequestMessage(request_id=request_id,
                                         object_key=GROUP_KEY,
                                         operation=op, args=args))


def test_request_executes_after_duration_and_replies():
    scheduler, container, replies = build()
    container.submit_request(CONN, request_bytes(0))
    assert container.servant.value == 0      # not yet: takes 10 ms
    scheduler.run_until(0.02)
    assert container.servant.value == 1
    assert len(replies) == 1
    assert decode_message(replies[0][1]).result == 1


def test_queue_is_fifo():
    scheduler, container, replies = build()
    for i in range(3):
        container.submit_request(CONN, request_bytes(i, args=(i,)))
    scheduler.run_until(0.1)
    assert container.servant.calls == [0, 1, 2]
    assert container.operations_executed == 3


def test_quiescence_during_execution():
    scheduler, container, replies = build()
    container.submit_request(CONN, request_bytes(0))
    scheduler.run_until(0.005)
    assert not container.quiescence.is_quiescent()
    scheduler.run_until(0.05)
    assert container.quiescence.is_quiescent()


def test_get_state_waits_behind_queued_requests():
    scheduler, container, replies = build()
    states = []
    container.submit_request(CONN, request_bytes(0, args=(5,)))
    container.submit_get_state(
        "t1", lambda tid, blob, digest: states.append(decode_any(blob).value)
    )
    scheduler.run_until(0.1)
    assert states == [{"value": 5}]      # request executed first


def test_set_state_applies_value():
    scheduler, container, replies = build()
    done = []
    blob = encode_any(to_any({"value": 99}))
    container.submit_set_state(blob, lambda: done.append(1))
    scheduler.run_until(0.1)
    assert done == [1]
    assert container.servant.value == 99


def test_requests_after_set_state_run_on_new_state():
    scheduler, container, replies = build()
    blob = encode_any(to_any({"value": 10}))
    container.submit_set_state(blob, lambda: None)
    container.submit_request(CONN, request_bytes(0, args=(1,)))
    scheduler.run_until(0.1)
    assert container.servant.value == 11


def test_get_state_on_uninstantiated_replica_raises():
    scheduler = Scheduler()
    process = Process(scheduler, "n1")
    container = ReplicaContainer(process, "g", None, EternalConfig(),
                                 on_reply_produced=lambda c, d: None)
    assert not container.instantiated
    with pytest.raises(StateTransferError):
        container.submit_get_state("t", lambda tid, blob, digest: None)


def test_install_servant_enables_execution():
    scheduler = Scheduler()
    process = Process(scheduler, "n1")
    replies = []
    container = ReplicaContainer(process, "g", None, EternalConfig(),
                                 on_reply_produced=lambda c, d:
                                 replies.append(d))
    container.install_servant(Item())
    container.submit_request(CONN, request_bytes(0))
    scheduler.run_until(0.1)
    assert container.servant.value == 1


def test_crashed_process_stops_queue():
    scheduler, container, replies = build()
    container.submit_request(CONN, request_bytes(0))
    container.process.crash()
    scheduler.run()
    assert container.servant.value == 0


def test_state_duration_scales_with_size():
    scheduler, container, replies = build()
    small = container._state_duration(10)
    large = container._state_duration(1_000_000)
    assert large > small


def test_submit_reply_routes_to_orb_and_callback():
    scheduler, container, replies = build()
    from repro.giop.ior import IOR
    ior = IOR("IDL:T:1.0", "g2", 2809, GROUP_KEY)
    executed = []
    proxy = container.connect(ior)
    container.orb.set_client_transport(lambda h, p, d: None)
    results = []
    proxy.invoke("x", on_reply=lambda r: results.append(r.result))
    from repro.giop.messages import ReplyMessage
    reply = encode_message(ReplyMessage(request_id=0, result="ok"))
    container.submit_reply("g2", 2809, reply,
                           on_executed=lambda: executed.append(1))
    scheduler.run_until(0.01)
    assert executed == [1]
    assert results == ["ok"]


def test_servant_gets_container_handle():
    scheduler, container, replies = build()
    assert container.servant._eternal_container is container
