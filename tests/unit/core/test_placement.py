"""Unit and property tests for the consistent-hashing placement ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import HashRing, PlacementError

KEYS = [f"group-{i}" for i in range(4_000)]


# ---------------------------------------------------------------------------
# Construction and membership
# ---------------------------------------------------------------------------

def test_empty_ring_refuses_lookup():
    ring = HashRing()
    with pytest.raises(PlacementError):
        ring.owner_of("anything")


def test_virtual_nodes_must_be_positive():
    with pytest.raises(PlacementError):
        HashRing(virtual_nodes=0)


def test_duplicate_shard_refused():
    ring = HashRing(["r0"])
    with pytest.raises(PlacementError):
        ring.add_shard("r0")


def test_remove_unknown_shard_refused():
    ring = HashRing(["r0"])
    with pytest.raises(PlacementError):
        ring.remove_shard("r1")


def test_membership_introspection():
    ring = HashRing(["r0", "r1"])
    assert len(ring) == 2
    assert "r0" in ring and "r2" not in ring
    ring.remove_shard("r0")
    assert ring.shards == ("r1",)
    # Removing a shard removes all of its circle points.
    assert len(ring._points) == ring.virtual_nodes


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def test_lookup_is_deterministic_and_order_independent():
    """Every router must derive identical placements, regardless of the
    order it learned the shards in (points depend only on shard names)."""
    a = HashRing(["r0", "r1", "r2", "r3"])
    b = HashRing(["r3", "r1", "r0", "r2"])
    for key in KEYS[:500]:
        assert a.owner_of(key) == b.owner_of(key)


def test_single_shard_owns_everything():
    ring = HashRing(["only"])
    assert all(ring.owner_of(k) == "only" for k in KEYS[:100])


# ---------------------------------------------------------------------------
# Distribution spread
# ---------------------------------------------------------------------------

def test_virtual_nodes_spread_load():
    ring = HashRing([f"r{i}" for i in range(8)], virtual_nodes=64)
    counts = ring.distribution(KEYS)
    assert sum(counts.values()) == len(KEYS)
    mean = len(KEYS) / 8
    # 64 points per shard keep every shard within a 2x band of fair
    # share (the deterministic hash makes this exact, not flaky).
    for shard, count in counts.items():
        assert 0.5 * mean < count < 2.0 * mean, (shard, count)


def test_more_virtual_nodes_flatten_the_spread():
    def spread(virtual_nodes):
        ring = HashRing([f"r{i}" for i in range(8)],
                        virtual_nodes=virtual_nodes)
        counts = ring.distribution(KEYS)
        return max(counts.values()) - min(counts.values())

    assert spread(128) < spread(4)


# ---------------------------------------------------------------------------
# Minimal disruption (the consistent-hashing property)
# ---------------------------------------------------------------------------

shard_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=2, max_size=8, unique=True)


@settings(max_examples=50, deadline=None)
@given(shards=shard_names, data=st.data())
def test_removing_a_shard_only_remaps_its_own_keys(shards, data):
    removed = data.draw(st.sampled_from(shards))
    ring = HashRing(shards, virtual_nodes=16)
    before = {key: ring.owner_of(key) for key in KEYS[:300]}
    ring.remove_shard(removed)
    for key, owner in before.items():
        if owner == removed:
            assert ring.owner_of(key) != removed
        else:
            assert ring.owner_of(key) == owner


@settings(max_examples=50, deadline=None)
@given(shards=shard_names, newcomer=st.text(alphabet="xyz", min_size=1,
                                            max_size=6))
def test_adding_a_shard_only_steals_keys_for_itself(shards, newcomer):
    ring = HashRing(shards, virtual_nodes=16)
    before = {key: ring.owner_of(key) for key in KEYS[:300]}
    ring.add_shard(newcomer)
    for key, owner in before.items():
        after = ring.owner_of(key)
        if after != owner:
            assert after == newcomer


def test_remap_volume_is_about_one_nth():
    """Removing one of N shards remaps ~K/N keys, not the world."""
    shards = [f"r{i}" for i in range(8)]
    ring = HashRing(shards, virtual_nodes=64)
    before = {key: ring.owner_of(key) for key in KEYS}
    ring.remove_shard("r3")
    moved = sum(1 for key in KEYS if ring.owner_of(key) != before[key])
    fair = len(KEYS) / 8
    assert moved == sum(1 for o in before.values() if o == "r3")
    assert moved < 2.0 * fair
