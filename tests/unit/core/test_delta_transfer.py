"""Behaviour tests for delta state transfer in the recovery protocol.

The responder ships page deltas only when the transfer names a base
checkpoint it also holds; every mismatch — stale base, undecodable body,
missing checkpoint — must degrade to a full snapshot without breaking
the transfer.
"""

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.kvstore import KvStoreServant, make_kvstore_factory
from repro.core.config import EternalConfig
from repro.core.envelope import ReplicaJoin
from repro.core.recovery import STATUS_RECOVERING

KVSTORE = "IDL:repro/KvStore:1.0"
PAYLOAD = 40_000        # ~40 pages of bulk state


def make_system(payload=PAYLOAD, eternal_config=None):
    system = EternalSystem(["m", "n1", "n2"], keep_trace_records=True,
                           eternal_config=eternal_config)
    system.register_factory(KVSTORE, make_kvstore_factory(payload),
                            nodes=["n1", "n2"])
    system.create_group(
        "g", KVSTORE,
        FTProperties(replication_style=ReplicationStyle.WARM_PASSIVE,
                     initial_replicas=2, min_replicas=1,
                     checkpoint_interval=60.0),
        nodes=["n1", "n2"],
    )
    system.run_for(0.1)
    return system


def _primary_recovery(system):
    info = system.mechanisms("m").groups["g"]
    return system.mechanisms(info.primary_node).recovery, info.primary_node


def _scribble(system, node, fraction=0.1):
    servant = system.mechanisms(node).bindings["g"].container.servant
    assert isinstance(servant, KvStoreServant)
    return servant.scribble(fraction)


def _delta_records(system, event):
    return [r for r in system.tracer.records
            if r.category == "delta" and r.event == event]


def test_second_checkpoint_ships_delta():
    system = make_system()
    recovery, primary = _primary_recovery(system)
    recovery.initiate_checkpoint("g")       # first: no base -> full
    system.run_for(0.3)
    assert system.tracer.count("delta.delta_sent") == 0
    for node in ("n1", "n2"):
        _scribble(system, node)             # dirty ~10 % on both replicas
    recovery.initiate_checkpoint("g")       # second: shared base -> delta
    system.run_for(0.3)
    sent = _delta_records(system, "delta_sent")
    assert sent
    economics = sent[-1].fields
    assert economics["pages_skipped"] > economics["pages_sent"]
    assert economics["wire_bytes"] < economics["full_bytes"] / 2
    # both replicas end with byte-identical checkpoints
    digests = {system.mechanisms(n).bindings["g"].log.checkpoint.app_digest
               for n in ("n1", "n2")}
    assert len(digests) == 1


def test_unchanged_state_ships_near_empty_delta():
    system = make_system()
    recovery, _ = _primary_recovery(system)
    recovery.initiate_checkpoint("g")
    system.run_for(0.3)
    recovery.initiate_checkpoint("g")       # nothing changed in between
    system.run_for(0.3)
    sent = _delta_records(system, "delta_sent")
    assert sent and sent[-1].fields["pages_sent"] == 0


def test_recovery_transfer_uses_delta_against_checkpoint():
    system = make_system()
    recovery, primary = _primary_recovery(system)
    recovery.initiate_checkpoint("g")       # align a group-wide base
    system.run_for(0.3)
    for node in ("n1", "n2"):
        _scribble(system, node)
    backup = "n2" if primary == "n1" else "n1"
    mechanisms = system.mechanisms(backup)
    binding = mechanisms.bindings["g"]
    # Put the backup (which holds the aligned checkpoint) back through the
    # §5.1 protocol: the announcement names its checkpoint as delta base.
    binding.status = STATUS_RECOVERING
    mechanisms.recovery.announce_join(binding)
    assert system.wait_for(lambda: binding.operational, timeout=5.0)
    assert system.tracer.count("delta.delta_sent") >= 1
    assert system.tracer.count("delta.delta_applied") >= 1
    # recovered replica's state matches the primary's, byte for byte
    survivor = system.mechanisms(primary).bindings["g"].container.servant
    recovered = binding.container.servant
    assert recovered.payload == survivor.payload
    assert recovered.scribble_count == survivor.scribble_count


def test_base_digest_mismatch_falls_back_to_full():
    system = make_system()
    recovery, _ = _primary_recovery(system)
    recovery.initiate_checkpoint("g")
    system.run_for(0.3)
    baseline_full = system.tracer.count("delta.full_sent")
    # A join naming a base nobody holds: the responder must ship the full
    # snapshot rather than a delta against the wrong base.
    system.mechanisms("n2").multicast(ReplicaJoin(
        group_id="g", node_id="n2", transfer_id="tid-stale-base",
        base_digest="sha256:no-such-checkpoint"))
    system.run_for(0.5)
    assert system.tracer.count("delta.full_sent") > baseline_full
    reasons = {r.fields["reason"]
               for r in _delta_records(system, "full_sent")}
    assert "base_mismatch" in reasons


def test_delta_disabled_by_config_sends_full_bodies():
    system = make_system(
        eternal_config=EternalConfig(delta_state_transfer=False))
    recovery, _ = _primary_recovery(system)
    recovery.initiate_checkpoint("g")
    system.run_for(0.3)
    recovery.initiate_checkpoint("g")
    system.run_for(0.3)
    assert system.tracer.count("delta.delta_sent") == 0
    assert system.mechanisms("n1").bindings["g"].log.checkpoint is not None
