"""Unit tests for the EternalSystem facade."""

import pytest

from repro import EternalSystem, FTProperties
from repro.apps.counter import CounterServant
from repro.errors import SimulationError, UnknownNode

COUNTER = "IDL:repro/Counter:1.0"


def test_requires_nodes():
    with pytest.raises(SimulationError):
        EternalSystem([])


def test_manager_node_defaults_to_first():
    system = EternalSystem(["x", "y"])
    assert system.manager_node == "x"
    assert system.replication_manager is not None


def test_manager_node_override():
    system = EternalSystem(["x", "y"], manager_node="y")
    assert system.manager_node == "y"
    assert system.replication_manager.mechanisms.node_id == "y"


def test_run_for_advances_simulated_time():
    system = EternalSystem(["x"])
    system.run_for(1.5)
    assert system.now == pytest.approx(1.5)


def test_wait_for_success_and_timeout():
    system = EternalSystem(["x"])
    deadline = {}
    system.scheduler.call_after(0.2, lambda: deadline.update(done=True))
    assert system.wait_for(lambda: deadline.get("done"), timeout=1.0)
    assert not system.wait_for(lambda: False, timeout=0.1)


def test_kill_and_restart_unknown_node_rejected():
    system = EternalSystem(["x"])
    with pytest.raises(UnknownNode):
        system.kill_node("nope")
    with pytest.raises(UnknownNode):
        system.restart_node("nope")


def test_stack_lookup():
    system = EternalSystem(["x", "y"])
    assert system.stack("y").node_id == "y"
    with pytest.raises(UnknownNode):
        system.stack("z")


def test_restart_rebuilds_stack_objects():
    system = EternalSystem(["x", "y"])
    system.run_for(0.05)
    old_totem = system.stack("y").totem
    system.kill_node("y")
    system.restart_node("y")
    assert system.stack("y").totem is not old_totem
    assert system.wait_for(system.ring_formed, timeout=2.0)


def test_ring_formed_false_while_node_down():
    system = EternalSystem(["x", "y", "z"])
    system.run_for(0.05)
    assert system.ring_formed()
    system.kill_node("z")
    # immediately after the crash the survivors still list z
    assert not system.ring_formed()
    system.run_for(0.2)
    assert system.ring_formed()     # survivors reformed without z


def test_group_handle_errors_when_unknown():
    system = EternalSystem(["x"])
    from repro.core.system import GroupHandle
    handle = GroupHandle(system, "ghost")
    with pytest.raises(SimulationError):
        handle.iogr()


def test_deterministic_rerun_same_seed():
    def run():
        system = EternalSystem(["m", "n1", "n2"], seed=42)
        system.register_factory(COUNTER, CounterServant,
                                nodes=["n1", "n2"])
        system.create_group("g", COUNTER,
                            FTProperties(initial_replicas=2),
                            nodes=["n1", "n2"])
        system.run_for(0.3)
        return (system.scheduler.events_executed,
                system.tracer.counters.get("net.bytes", 0))

    assert run() == run()
