"""Unit tests for the checkpoint + message log (paper §3.3)."""

from repro.core.envelope import IiopEnvelope
from repro.core.identifiers import ConnectionKey, OpKind
from repro.core.msglog import MessageLog

CONN = ConnectionKey("c", "s")


def env(request_id):
    return IiopEnvelope(CONN, OpKind.REQUEST, request_id, "n", b"")


def test_empty_log():
    log = MessageLog("g")
    assert log.checkpoint is None
    assert log.log_length == 0
    assert log.messages_since_checkpoint() == []


def test_append_and_replay_in_order():
    log = MessageLog("g")
    for i in range(5):
        log.append(i, env(i))
    assert [e.request_id for e in log.messages_since_checkpoint()] == \
        [0, 1, 2, 3, 4]


def test_checkpoint_prunes_covered_messages():
    log = MessageLog("g")
    for i in range(10):
        log.append(i, env(i))
    log.mark_get_position("t1", 6)
    record = log.commit_checkpoint("t1", b"state", b"orb", b"infra")
    assert record.position == 6
    assert [e.request_id for e in log.messages_since_checkpoint()] == \
        [7, 8, 9]
    assert log.log_length == 3


def test_new_checkpoint_overwrites_previous():
    """'the next checkpoint ... overwrites the previous checkpoint'."""
    log = MessageLog("g")
    log.append(0, env(0))
    log.mark_get_position("t1", 0)
    log.commit_checkpoint("t1", b"one", b"", b"")
    log.append(1, env(1))
    log.mark_get_position("t2", 1)
    log.commit_checkpoint("t2", b"two", b"", b"")
    assert log.checkpoint.app_state == b"two"
    assert log.checkpoints_taken == 2
    assert log.messages_since_checkpoint() == []


def test_checkpoint_without_marked_position_keeps_all_messages():
    log = MessageLog("g")
    log.append(0, env(0))
    log.commit_checkpoint("ghost", b"s", b"", b"")
    assert log.log_length == 1


def test_messages_at_get_position_are_covered():
    log = MessageLog("g")
    log.append(5, env(5))
    log.mark_get_position("t", 5)
    log.commit_checkpoint("t", b"s", b"", b"")
    assert log.messages_since_checkpoint() == []


def test_replay_respects_checkpoint_boundary():
    log = MessageLog("g")
    log.mark_get_position("t", 3)
    log.commit_checkpoint("t", b"s", b"", b"")
    log.append(4, env(4))
    assert [e.request_id for e in log.messages_since_checkpoint()] == [4]


def test_clear_resets_everything():
    log = MessageLog("g")
    log.append(0, env(0))
    log.mark_get_position("t", 0)
    log.commit_checkpoint("t", b"s", b"", b"")
    log.clear()
    assert log.checkpoint is None and log.log_length == 0
