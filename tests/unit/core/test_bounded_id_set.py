"""Unit tests for the bounded handled-ids set."""

import pytest

from repro.core.recovery import BoundedIdSet


def test_add_and_membership():
    ids = BoundedIdSet(capacity=10)
    assert ids.add("a") is True
    assert ids.add("a") is False
    assert "a" in ids
    assert "b" not in ids
    assert len(ids) == 1


def test_fifo_eviction_at_capacity():
    ids = BoundedIdSet(capacity=3)
    for item in ("a", "b", "c", "d"):
        ids.add(item)
    assert "a" not in ids           # oldest evicted
    assert all(x in ids for x in ("b", "c", "d"))
    assert len(ids) == 3


def test_duplicate_add_does_not_evict():
    ids = BoundedIdSet(capacity=2)
    ids.add("a")
    ids.add("b")
    ids.add("a")        # duplicate: no growth, no eviction
    assert "a" in ids and "b" in ids


def test_invalid_capacity():
    with pytest.raises(ValueError):
        BoundedIdSet(capacity=0)


def test_transfer_ids_embed_epoch():
    """Regression: ids from a rebuilt stack must not collide with the
    previous incarnation's (the chaos-test bug)."""
    from repro import EternalSystem, FTProperties
    from repro.apps.counter import CounterServant
    system = EternalSystem(["m", "n1", "n2"])
    system.register_factory("IDL:repro/Counter:1.0", CounterServant,
                            nodes=["n1", "n2"])
    group = system.create_group("g", "IDL:repro/Counter:1.0",
                                FTProperties(initial_replicas=2),
                                nodes=["n1", "n2"])
    system.run_for(0.05)
    recovery = system.mechanisms("n2").recovery
    binding = system.mechanisms("n2").bindings["g"]
    recovery.announce_join(binding)
    first_id = binding.pending_transfer
    # simulate a rebuild: kill + restart resets the counter but bumps epoch
    system.kill_node("n2")
    system.run_for(0.1)
    system.restart_node("n2")
    assert system.wait_for(lambda: group.is_operational_on("n2"),
                           timeout=5.0)
    rebuilt = system.mechanisms("n2")
    assert rebuilt.announce_epoch > 0
    rebuilt_binding = rebuilt.bindings["g"]
    rebuilt.recovery.announce_join(rebuilt_binding)
    assert rebuilt_binding.pending_transfer != first_id
