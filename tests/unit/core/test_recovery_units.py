"""Unit tests for Recovery Mechanisms internals (dedup guards, snapshots,
transfer-id handling) using a small live system for realistic wiring."""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.counter import CounterServant
from repro.core.envelope import StateGet, StateSet, TransferPurpose

COUNTER = "IDL:repro/Counter:1.0"


def make_system(style=ReplicationStyle.ACTIVE):
    system = EternalSystem(["m", "n1", "n2"])
    system.register_factory(COUNTER, CounterServant, nodes=["n1", "n2"])
    system.create_group(
        "g", COUNTER,
        FTProperties(replication_style=style, initial_replicas=2,
                     min_replicas=1, checkpoint_interval=60.0),
        nodes=["n1", "n2"],
    )
    system.run_for(0.05)
    return system


def test_duplicate_state_get_handled_once():
    system = make_system()
    recovery = system.mechanisms("n1").recovery
    get = StateGet("g", "tid-1", TransferPurpose.RECOVERY, "n2", "n2")
    recovery.handle_state_get(get)
    queued_after_first = system.mechanisms("n1").bindings["g"] \
        .container.queue_depth
    recovery.handle_state_get(get)      # duplicate: ignored
    queued_after_second = system.mechanisms("n1").bindings["g"] \
        .container.queue_depth
    assert queued_after_first == queued_after_second


def test_duplicate_state_set_handled_once():
    system = make_system()
    recovery = system.mechanisms("n1").recovery
    blob = b""
    st = StateSet("g", "tid-9", TransferPurpose.CHECKPOINT, "n2", "",
                  blob, blob, blob)
    recovery.handle_state_set(st)
    checkpoints = system.mechanisms("n1").bindings["g"].log.checkpoints_taken
    recovery.handle_state_set(st)
    assert system.mechanisms("n1").bindings["g"].log.checkpoints_taken \
        == checkpoints


def test_state_get_for_unknown_group_ignored():
    system = make_system()
    recovery = system.mechanisms("n1").recovery
    recovery.handle_state_get(
        StateGet("ghost", "t", TransferPurpose.RECOVERY, "x", "y")
    )   # must not raise


def test_filter_snapshot_taken_at_get_and_consumed():
    system = make_system()
    mechanisms = system.mechanisms("n1")
    recovery = mechanisms.recovery
    get = StateGet("g", "tid-snap", TransferPurpose.RECOVERY, "n2", "n2")
    recovery.handle_state_get(get)
    assert "tid-snap" in recovery._filter_snapshots
    system.run_for(0.05)    # get_state completes, SET multicast
    assert "tid-snap" not in recovery._filter_snapshots


def test_checkpoint_initiation_requires_primary():
    system = make_system(style=ReplicationStyle.WARM_PASSIVE)
    info = system.mechanisms("m").groups["g"]
    backup = [n for n in ("n1", "n2") if n != info.primary_node][0]
    recovery = system.mechanisms(backup).recovery
    before = system.tracer.count("recovery.checkpoint_initiated")
    recovery.initiate_checkpoint("g")       # not the primary: no-op
    assert system.tracer.count("recovery.checkpoint_initiated") == before
    primary_recovery = system.mechanisms(info.primary_node).recovery
    primary_recovery.initiate_checkpoint("g")
    assert system.tracer.count("recovery.checkpoint_initiated") == before + 1


def test_checkpoint_initiation_skips_while_one_pending():
    system = make_system(style=ReplicationStyle.WARM_PASSIVE)
    info = system.mechanisms("m").groups["g"]
    recovery = system.mechanisms(info.primary_node).recovery
    recovery.initiate_checkpoint("g")
    recovery.initiate_checkpoint("g")       # guard: one in flight
    assert system.tracer.count("recovery.checkpoint_initiated") == 1
    system.run_for(0.1)                     # transfer completes
    recovery.initiate_checkpoint("g")
    assert system.tracer.count("recovery.checkpoint_initiated") == 2


def test_active_groups_never_checkpoint_spontaneously():
    system = make_system(style=ReplicationStyle.ACTIVE)
    system.run_for(1.0)
    assert system.tracer.count("recovery.checkpoint_initiated") == 0


def test_transfer_ids_are_unique_per_announcement():
    system = make_system()
    recovery = system.mechanisms("n1").recovery
    binding = system.mechanisms("n1").bindings["g"]
    ids = set()
    for _ in range(5):
        recovery.announce_join(binding)
        ids.add(binding.pending_transfer)
    assert len(ids) == 5
