"""Unit tests for quiescence tracking (paper §5)."""

from repro.core.quiescence import QuiescenceMonitor


def test_initially_quiescent():
    assert QuiescenceMonitor().is_quiescent()


def test_busy_during_operation():
    monitor = QuiescenceMonitor()
    monitor.begin_operation(until=1.0)
    assert monitor.busy
    assert not monitor.is_quiescent()
    monitor.end_operation()
    assert monitor.is_quiescent()


def test_nested_invocations_block_quiescence():
    monitor = QuiescenceMonitor()
    monitor.nested_issued()
    assert not monitor.is_quiescent()
    monitor.nested_completed()
    assert monitor.is_quiescent()


def test_nested_counter_never_negative():
    monitor = QuiescenceMonitor()
    monitor.nested_completed()
    assert monitor.is_quiescent()


def test_callback_fires_immediately_when_quiescent():
    monitor = QuiescenceMonitor()
    fired = []
    monitor.when_quiescent(lambda: fired.append(1))
    assert fired == [1]


def test_callback_deferred_until_quiescent():
    monitor = QuiescenceMonitor()
    monitor.begin_operation(until=1.0)
    fired = []
    monitor.when_quiescent(lambda: fired.append(1))
    assert fired == []
    monitor.end_operation()
    assert fired == [1]


def test_callback_waits_for_all_conditions():
    monitor = QuiescenceMonitor()
    monitor.begin_operation(until=1.0)
    monitor.nested_issued()
    fired = []
    monitor.when_quiescent(lambda: fired.append(1))
    monitor.end_operation()
    assert fired == []
    monitor.nested_completed()
    assert fired == [1]


def test_multiple_waiters_fire_in_order():
    monitor = QuiescenceMonitor()
    monitor.begin_operation(until=1.0)
    order = []
    monitor.when_quiescent(lambda: order.append("a"))
    monitor.when_quiescent(lambda: order.append("b"))
    monitor.end_operation()
    assert order == ["a", "b"]


def test_waiters_fire_once():
    monitor = QuiescenceMonitor()
    monitor.begin_operation(until=1.0)
    fired = []
    monitor.when_quiescent(lambda: fired.append(1))
    monitor.end_operation()
    monitor.begin_operation(until=2.0)
    monitor.end_operation()
    assert fired == [1]
