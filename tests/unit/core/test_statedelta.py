"""Unit tests for page-level delta encoding of Checkpointable state."""

import pytest

from repro.core.statedelta import (
    PAGE_SIZE,
    DeltaMismatch,
    StateDelta,
    apply_delta,
    compute_delta,
    decode_delta,
    encode_delta,
    page_digests,
    split_pages,
)
from repro.errors import StateTransferError
from repro.obs.audit import state_digest


def _blob(n, fill=0):
    return bytes((i + fill) & 0xFF for i in range(n))


# -- paging -----------------------------------------------------------------

def test_split_pages_covers_blob_exactly():
    blob = _blob(PAGE_SIZE * 2 + 100)
    pages = split_pages(blob)
    assert [len(p) for p in pages] == [PAGE_SIZE, PAGE_SIZE, 100]
    assert b"".join(pages) == blob
    assert split_pages(b"") == []
    assert len(page_digests(blob)) == 3


def test_split_pages_rejects_bad_page_size():
    with pytest.raises(ValueError):
        split_pages(b"x", 0)


# -- compute / apply --------------------------------------------------------

def test_identical_snapshots_yield_empty_delta():
    blob = _blob(5000)
    delta = compute_delta(blob, blob)
    assert delta.pages_sent == 0
    assert delta.pages_skipped == delta.total_pages == 5
    assert apply_delta(blob, delta) == blob


def test_localized_change_ships_one_page():
    base = _blob(PAGE_SIZE * 8)
    new = bytearray(base)
    new[3 * PAGE_SIZE + 17] ^= 0xFF
    new = bytes(new)
    delta = compute_delta(base, new)
    assert delta.pages_sent == 1
    assert delta.pages[0][0] == 3
    assert apply_delta(base, delta) == new


def test_growing_snapshot_ships_new_pages():
    base = _blob(PAGE_SIZE * 2)
    new = base + _blob(PAGE_SIZE + 10, fill=7)
    delta = compute_delta(base, new)
    assert delta.pages_sent == 2            # the two appended pages
    assert apply_delta(base, delta) == new


def test_shrinking_snapshot_reconstructs():
    base = _blob(PAGE_SIZE * 4)
    new = base[:PAGE_SIZE * 2 + 50]
    delta = compute_delta(base, new)
    # page 2 shrank, pages 0-1 unchanged
    assert delta.pages_sent == 1
    assert apply_delta(base, delta) == new


def test_empty_snapshots():
    delta = compute_delta(b"", b"")
    assert delta.total_pages == 0
    assert apply_delta(b"", delta) == b""
    grow = compute_delta(b"", b"hello")
    assert apply_delta(b"", grow) == b"hello"
    shrink = compute_delta(b"hello", b"")
    assert apply_delta(b"hello", shrink) == b""


def test_apply_against_wrong_base_raises_mismatch():
    base = _blob(PAGE_SIZE * 3)
    new = _blob(PAGE_SIZE * 3, fill=1)
    delta = compute_delta(base, new)
    with pytest.raises(DeltaMismatch):
        apply_delta(base + b"tainted", delta)


def test_corrupt_page_fails_crc():
    base = _blob(PAGE_SIZE * 2)
    new = _blob(PAGE_SIZE * 2, fill=9)
    delta = compute_delta(base, new)
    index, tag, page = delta.pages[0]
    bad = StateDelta(delta.base_digest, delta.new_digest, delta.new_length,
                     delta.page_size,
                     ((index, tag, b"\x00" * len(page)),) + delta.pages[1:])
    with pytest.raises(DeltaMismatch):
        apply_delta(base, bad)


def test_out_of_range_page_index_rejected():
    base = _blob(PAGE_SIZE)
    delta = compute_delta(base, base)
    from zlib import crc32
    bad = StateDelta(delta.base_digest, delta.new_digest, delta.new_length,
                     delta.page_size, ((7, crc32(b"x"), b"x"),))
    with pytest.raises(DeltaMismatch):
        apply_delta(base, bad)


def test_missing_grown_pages_detected():
    base = _blob(PAGE_SIZE)
    new = _blob(PAGE_SIZE * 3)
    delta = compute_delta(base, new)
    truncated = StateDelta(delta.base_digest, delta.new_digest,
                           delta.new_length, delta.page_size,
                           delta.pages[:1])
    with pytest.raises(DeltaMismatch):
        apply_delta(base, truncated)


# -- wire encoding ----------------------------------------------------------

def test_encode_decode_round_trip():
    base = _blob(PAGE_SIZE * 6)
    new = bytearray(base)
    new[0] ^= 1
    new[5 * PAGE_SIZE] ^= 1
    new = bytes(new)
    delta = compute_delta(base, new)
    decoded = decode_delta(encode_delta(delta))
    assert decoded == delta
    assert apply_delta(base, decoded) == new


def test_decode_rejects_unknown_version_and_truncation():
    delta = compute_delta(b"a" * 10, b"b" * 10)
    encoded = bytearray(encode_delta(delta))
    encoded[0] = 99
    with pytest.raises(StateTransferError):
        decode_delta(bytes(encoded))
    # truncated bodies must surface as StateTransferError (the recovery
    # layer's fallback trigger), not as a raw CDR UnmarshalError
    with pytest.raises(StateTransferError):
        decode_delta(encode_delta(delta)[:6])


def test_delta_smaller_than_full_for_sparse_change():
    base = _blob(PAGE_SIZE * 100)
    new = bytearray(base)
    for i in range(0, 10 * PAGE_SIZE, PAGE_SIZE):    # dirty 10 % of pages
        new[i] ^= 0xFF
    new = bytes(new)
    delta = compute_delta(base, new)
    assert delta.pages_sent == 10
    encoded = encode_delta(delta)
    assert len(encoded) < len(new) / 5
    assert state_digest(apply_delta(base, decode_delta(encoded))) == \
        delta.new_digest
