"""Unit tests for the pull-based replica fault detector."""

from repro.bench.deployments import build_client_server
from repro.core.fault_detector import SUSPECT_AFTER
from repro.ftcorba.properties import ReplicationStyle


def deploy():
    return build_client_server(style=ReplicationStyle.ACTIVE,
                               server_replicas=2, state_size=100,
                               warmup=0.2, keep_trace_records=True)


def test_detector_created_on_hosting_nodes():
    deployment = deploy()
    for node in deployment.server_nodes:
        assert deployment.system.mechanisms(node).fault_detector is not None


def test_busy_but_progressing_replica_not_suspected():
    deployment = deploy()
    deployment.system.run_for(1.0)
    assert deployment.system.tracer.count("fault_detector.report") == 0


def test_hung_replica_suspected_then_reported_once():
    deployment = deploy()
    system = deployment.system
    system.hang_replica("store", "s1")
    assert system.wait_for(
        lambda: system.tracer.count("fault_detector.report") >= 1,
        timeout=3.0,
    )
    suspects = system.tracer.count("fault_detector.suspect")
    assert suspects >= SUSPECT_AFTER
    system.run_for(0.2)
    # a single report per fault (no flapping)
    reports = [r for r in system.tracer.find("fault_detector", "report")
               if r.fields.get("node") == "s1"]
    assert len(reports) == 1


def test_detection_latency_bounded_by_monitoring_interval():
    deployment = deploy()
    system = deployment.system
    info = system.mechanisms("s1").groups["store"]
    hang_at = system.now
    system.hang_replica("store", "s1")
    assert system.wait_for(
        lambda: system.tracer.count("fault_detector.report") >= 1,
        timeout=3.0,
    )
    latency = system.now - hang_at
    # SUSPECT_AFTER polls plus one interval of slack
    assert latency <= (SUSPECT_AFTER + 2) * info.fault_monitoring_interval


def test_cold_backups_never_suspected():
    deployment = build_client_server(
        style=ReplicationStyle.COLD_PASSIVE, server_replicas=2,
        state_size=100, checkpoint_interval=0.1, warmup=0.2,
        keep_trace_records=True,
    )
    deployment.system.run_for(1.0)
    assert deployment.system.tracer.count("fault_detector.report") == 0


def test_transient_suspicion_refuted_and_counted_as_false_positive():
    """A replica that stalls briefly but resumes before SUSPECT_AFTER
    polls emits a ``refuted`` event and counts as one false positive,
    not a report."""
    deployment = deploy()
    system = deployment.system
    servant = deployment.server_group.servant_on("s1")
    info = system.mechanisms("s1").groups["store"]
    servant._hung_for_test = True
    # a 1.5-interval window sees 1-2 polls: suspected, never reported
    system.run_for(info.fault_monitoring_interval * 1.5)
    servant._hung_for_test = False
    system.run_for(info.fault_monitoring_interval * 3)
    assert system.tracer.count("fault_detector.refuted") >= 1
    assert system.tracer.count("fault_detector.report") == 0
    metrics = system.metrics
    suspicions = sum(m.value for _, _, m in
                     metrics.find("fault_detector.suspicions"))
    false_positives = sum(m.value for _, _, m in
                          metrics.find("fault_detector.false_positives"))
    assert suspicions >= 1
    assert false_positives >= 1


def test_reported_fault_feeds_metrics_counters():
    deployment = deploy()
    system = deployment.system
    system.hang_replica("store", "s1")
    assert system.wait_for(
        lambda: system.tracer.count("fault_detector.report") >= 1,
        timeout=3.0,
    )
    assert system.metrics.counter("fault_detector.suspicions",
                                  node="s1", group="store").value == 1
    assert system.metrics.counter("fault_detector.reports",
                                  node="s1", group="store").value == 1


def test_snapshot_exposes_strikes_and_reported_state():
    deployment = deploy()
    system = deployment.system
    detector = system.mechanisms("s1").fault_detector
    assert detector.snapshot() == {"store": {"strikes": 0, "reported": 0}}
    system.hang_replica("store", "s1")
    assert system.wait_for(
        lambda: system.tracer.count("fault_detector.report") >= 1,
        timeout=3.0,
    )
    assert detector.snapshot()["store"]["reported"] == 1
