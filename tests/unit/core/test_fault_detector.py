"""Unit tests for the pull-based replica fault detector."""

from repro.bench.deployments import build_client_server
from repro.core.fault_detector import SUSPECT_AFTER
from repro.ftcorba.properties import ReplicationStyle


def deploy():
    return build_client_server(style=ReplicationStyle.ACTIVE,
                               server_replicas=2, state_size=100,
                               warmup=0.2, keep_trace_records=True)


def test_detector_created_on_hosting_nodes():
    deployment = deploy()
    for node in deployment.server_nodes:
        assert deployment.system.mechanisms(node).fault_detector is not None


def test_busy_but_progressing_replica_not_suspected():
    deployment = deploy()
    deployment.system.run_for(1.0)
    assert deployment.system.tracer.count("fault_detector.report") == 0


def test_hung_replica_suspected_then_reported_once():
    deployment = deploy()
    system = deployment.system
    system.hang_replica("store", "s1")
    assert system.wait_for(
        lambda: system.tracer.count("fault_detector.report") >= 1,
        timeout=3.0,
    )
    suspects = system.tracer.count("fault_detector.suspect")
    assert suspects >= SUSPECT_AFTER
    system.run_for(0.2)
    # a single report per fault (no flapping)
    reports = [r for r in system.tracer.find("fault_detector", "report")
               if r.fields.get("node") == "s1"]
    assert len(reports) == 1


def test_detection_latency_bounded_by_monitoring_interval():
    deployment = deploy()
    system = deployment.system
    info = system.mechanisms("s1").groups["store"]
    hang_at = system.now
    system.hang_replica("store", "s1")
    assert system.wait_for(
        lambda: system.tracer.count("fault_detector.report") >= 1,
        timeout=3.0,
    )
    latency = system.now - hang_at
    # SUSPECT_AFTER polls plus one interval of slack
    assert latency <= (SUSPECT_AFTER + 2) * info.fault_monitoring_interval


def test_cold_backups_never_suspected():
    deployment = build_client_server(
        style=ReplicationStyle.COLD_PASSIVE, server_replicas=2,
        state_size=100, checkpoint_interval=0.1, warmup=0.2,
        keep_trace_records=True,
    )
    deployment.system.run_for(1.0)
    assert deployment.system.tracer.count("fault_detector.report") == 0
