"""Unit tests for operation identifiers and duplicate suppression."""

from repro.core.identifiers import (
    ConnectionKey,
    DuplicateFilter,
    OperationId,
    OpKind,
)

CONN = ConnectionKey("client", "server")


def op(request_id, kind=OpKind.REQUEST, conn=CONN):
    return OperationId(conn, request_id, kind)


def test_connection_key_string_roundtrip():
    assert ConnectionKey.from_str(CONN.as_str()) == CONN


def test_matching_reply_id():
    reply = op(5).matching_reply()
    assert reply.kind is OpKind.REPLY
    assert reply.request_id == 5
    assert reply.connection == CONN


def test_first_delivery_not_duplicate():
    assert DuplicateFilter().seen_before(op(0)) is False


def test_second_delivery_is_duplicate():
    f = DuplicateFilter()
    f.seen_before(op(0))
    assert f.seen_before(op(0)) is True


def test_requests_and_replies_tracked_separately():
    f = DuplicateFilter()
    assert f.seen_before(op(0, OpKind.REQUEST)) is False
    assert f.seen_before(op(0, OpKind.REPLY)) is False
    assert f.seen_before(op(0, OpKind.REPLY)) is True


def test_connections_tracked_separately():
    f = DuplicateFilter()
    other = ConnectionKey("client2", "server")
    assert f.seen_before(op(0)) is False
    assert f.seen_before(op(0, conn=other)) is False


def test_watermark_compaction():
    f = DuplicateFilter()
    for i in range(100):
        assert f.seen_before(op(i)) is False
    key = (CONN, OpKind.REQUEST)
    assert f._watermark[key] == 99
    assert f._sparse[key] == set()


def test_out_of_order_ids_eventually_compact():
    f = DuplicateFilter()
    for i in (2, 0, 1):
        f.seen_before(op(i))
    key = (CONN, OpKind.REQUEST)
    assert f._watermark[key] == 2


def test_capture_restore_roundtrip():
    f = DuplicateFilter()
    for i in (0, 1, 5):
        f.seen_before(op(i))
    restored = DuplicateFilter.restore(f.capture())
    assert restored.seen_before(op(0)) is True
    assert restored.seen_before(op(5)) is True
    assert restored.seen_before(op(2)) is False


def test_merge_unions_histories():
    a, b = DuplicateFilter(), DuplicateFilter()
    for i in range(5):
        a.seen_before(op(i))
    b.seen_before(op(7))
    a.merge(b)
    assert a.seen_before(op(3)) is True
    assert a.seen_before(op(7)) is True
    assert a.seen_before(op(5)) is False


def test_merge_with_higher_watermark():
    a, b = DuplicateFilter(), DuplicateFilter()
    a.seen_before(op(0))
    for i in range(10):
        b.seen_before(op(i))
    a.merge(b)
    for i in range(10):
        assert a.seen_before(op(i)) is True


def test_merge_compacts_across_sources():
    a, b = DuplicateFilter(), DuplicateFilter()
    a.seen_before(op(0))
    a.seen_before(op(2))
    b.seen_before(op(0))
    b.seen_before(op(1))
    a.merge(b)
    key = (CONN, OpKind.REQUEST)
    assert a._watermark[key] == 2


def test_empty_merge_is_noop():
    a = DuplicateFilter()
    a.seen_before(op(0))
    a.merge(DuplicateFilter())
    assert a.seen_before(op(0)) is True
    assert a.seen_before(op(1)) is False


def test_operation_ids_are_ordered_and_hashable():
    assert op(1) < op(2)
    assert len({op(1), op(1), op(2)}) == 2
