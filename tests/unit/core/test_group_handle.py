"""Unit tests for GroupHandle conveniences."""

import pytest

from repro import EternalSystem, FTProperties
from repro.apps.counter import CounterServant
from repro.errors import SimulationError

COUNTER = "IDL:repro/Counter:1.0"


def deploy():
    system = EternalSystem(["m", "c1", "n1", "n2"])
    system.register_factory(COUNTER, CounterServant,
                            nodes=["c1", "n1", "n2"])
    group = system.create_group("ctr", COUNTER,
                                FTProperties(initial_replicas=2),
                                nodes=["n1", "n2"])
    helper = system.create_group("helper", COUNTER,
                                 FTProperties(initial_replicas=1),
                                 nodes=["c1"])
    system.run_for(0.05)
    return system, group, helper


def test_connect_from_invokes_through_the_ordered_path():
    system, group, helper = deploy()
    proxy = group.connect_from("c1")
    results = []
    proxy.invoke("increment", 5, on_reply=lambda r: results.append(r.result))
    system.run_for(0.05)
    assert results == [5]
    # both active replicas executed it
    assert group.servant_on("n1").value == 5
    assert group.servant_on("n2").value == 5


def test_connect_from_node_without_containers_rejected():
    system, group, helper = deploy()
    with pytest.raises(SimulationError):
        group.connect_from("m")      # the manager hosts no replicas


def test_member_and_operational_listings():
    system, group, helper = deploy()
    assert group.member_nodes() == ["n1", "n2"]
    assert group.operational_nodes() == ["n1", "n2"]
    assert group.primary_node() is None       # active style
    assert group.is_operational_on("n1")
    assert not group.is_operational_on("c1")


def test_servant_on_non_member_is_none():
    system, group, helper = deploy()
    assert group.servant_on("c1") is None
    assert group.binding_on("c1") is None
