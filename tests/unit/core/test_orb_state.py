"""Unit tests for ORB/POA-level state tracking (paper §4.2)."""

from repro.core.identifiers import ConnectionKey
from repro.core.orb_state import OrbStateTracker
from repro.giop.messages import ReplyMessage, RequestMessage, encode_message
from repro.giop.service_context import CodeSetContext
from repro.orb.objectkey import make_key

CONN = ConnectionKey("c", "s")
KEY = make_key("RootPOA", b"obj")


def plain_request(request_id=0, contexts=()):
    return encode_message(RequestMessage(
        request_id=request_id, object_key=KEY, operation="op",
        service_contexts=tuple(contexts),
    ))


def test_outgoing_request_ids_tracked_monotonically():
    tracker = OrbStateTracker()
    tracker.observe_outgoing_request(CONN, 3)
    tracker.observe_outgoing_request(CONN, 7)
    tracker.observe_outgoing_request(CONN, 5)   # retransmit never regresses
    assert tracker.client_request_ids[CONN] == 7


def test_handshake_request_stored_once():
    tracker = OrbStateTracker()
    handshake = plain_request(0, [CodeSetContext().to_service_context()])
    later = plain_request(1, [CodeSetContext().to_service_context()])
    tracker.observe_delivered_request(CONN, handshake)
    tracker.observe_delivered_request(CONN, later)
    assert tracker.handshakes[CONN] == handshake


def test_plain_request_not_stored_as_handshake():
    tracker = OrbStateTracker()
    tracker.observe_delivered_request(CONN, plain_request())
    assert CONN not in tracker.handshakes


def test_non_request_ignored():
    tracker = OrbStateTracker()
    tracker.observe_delivered_request(
        CONN, encode_message(ReplyMessage(request_id=0, result=None))
    )
    assert CONN not in tracker.handshakes


def test_capture_decode_roundtrip():
    tracker = OrbStateTracker()
    handshake = plain_request(0, [CodeSetContext().to_service_context()])
    tracker.observe_outgoing_request(CONN, 350)
    tracker.observe_delivered_request(CONN, handshake)
    decoded = OrbStateTracker.decode(tracker.capture())
    assert decoded.client_request_ids == {CONN: 350}
    assert decoded.handshakes == {CONN: handshake}


def test_decode_empty_blob():
    tracker = OrbStateTracker.decode(b"")
    assert tracker.client_request_ids == {}
    assert tracker.handshakes == {}


def test_multiple_connections_independent():
    tracker = OrbStateTracker()
    other = ConnectionKey("c2", "s")
    tracker.observe_outgoing_request(CONN, 1)
    tracker.observe_outgoing_request(other, 9)
    decoded = OrbStateTracker.decode(tracker.capture())
    assert decoded.client_request_ids == {CONN: 1, other: 9}
