"""Unit tests for the Eternal Interceptor (request_id rewriting, §4.2.1)."""

import pytest

from repro.core.identifiers import ConnectionKey, OpKind
from repro.core.infra_state import InfraState
from repro.core.interceptor import Interceptor
from repro.core.orb_state import OrbStateTracker
from repro.giop.messages import (
    ReplyMessage,
    RequestMessage,
    decode_message,
    encode_message,
)
from repro.orb.objectkey import make_key

KEY = make_key("RootPOA", b"obj")
CONN = ConnectionKey("client-grp", "server-grp")


def build():
    sent = []
    infra = InfraState()
    orb_state = OrbStateTracker()
    interceptor = Interceptor("n1", "client-grp", sent.append, infra,
                              orb_state)
    return interceptor, sent, infra, orb_state


def request_bytes(request_id, operation="op"):
    return encode_message(RequestMessage(request_id=request_id,
                                         object_key=KEY,
                                         operation=operation))


def test_capture_wraps_and_multicasts():
    interceptor, sent, infra, orb_state = build()
    interceptor.capture_client_request("server-grp", 2809, request_bytes(0))
    assert len(sent) == 1
    envelope = sent[0]
    assert envelope.connection == CONN
    assert envelope.kind is OpKind.REQUEST
    assert envelope.request_id == 0
    assert decode_message(envelope.iiop_bytes).request_id == 0


def test_offset_rewrites_outgoing_request_id():
    interceptor, sent, infra, orb_state = build()
    interceptor.set_request_id_offset(CONN, 351)
    interceptor.capture_client_request("server-grp", 2809, request_bytes(0))
    envelope = sent[0]
    assert envelope.request_id == 351
    assert decode_message(envelope.iiop_bytes).request_id == 351


def test_orb_state_observes_wire_ids():
    interceptor, sent, infra, orb_state = build()
    interceptor.set_request_id_offset(CONN, 100)
    interceptor.capture_client_request("server-grp", 2809, request_bytes(2))
    assert orb_state.client_request_ids[CONN] == 102


def test_reissue_suppressed_on_wire_but_awaited():
    interceptor, sent, infra, orb_state = build()
    infra.record_issued(CONN, 5, "op", True)   # already issued pre-crash
    interceptor.set_request_id_offset(CONN, 5)
    interceptor.capture_client_request("server-grp", 2809, request_bytes(0))
    assert sent == []                          # duplicate never multicast
    assert interceptor.suppressed_reissues == 1
    assert infra.awaiting_reply(CONN, 5) == "op"


def test_fresh_ids_after_reissue_are_sent():
    interceptor, sent, infra, orb_state = build()
    infra.record_issued(CONN, 5, "op", True)
    interceptor.set_request_id_offset(CONN, 5)
    interceptor.capture_client_request("server-grp", 2809, request_bytes(0))
    interceptor.capture_client_request("server-grp", 2809, request_bytes(1))
    assert [e.request_id for e in sent] == [6]


def test_incoming_reply_rewritten_back():
    interceptor, sent, infra, orb_state = build()
    interceptor.set_request_id_offset(CONN, 351)
    wire_reply = encode_message(ReplyMessage(request_id=351, result=7))
    local = interceptor.rewrite_incoming_reply(CONN, wire_reply)
    assert decode_message(local).request_id == 0


def test_no_offset_means_no_rewrite():
    interceptor, sent, infra, orb_state = build()
    wire_reply = encode_message(ReplyMessage(request_id=3, result=None))
    assert interceptor.rewrite_incoming_reply(CONN, wire_reply) is wire_reply


def test_server_reply_captured_with_request_id():
    interceptor, sent, infra, orb_state = build()
    reply = encode_message(ReplyMessage(request_id=42, result=None))
    interceptor.capture_server_reply(CONN, reply)
    envelope = sent[0]
    assert envelope.kind is OpKind.REPLY
    assert envelope.request_id == 42
