"""Unit tests for per-node group views and failover determinism."""

from repro.core.groupinfo import (
    GroupInfo,
    ROLE_ACTIVE,
    ROLE_BACKUP,
    ROLE_PRIMARY,
)
from repro.ftcorba.properties import ReplicationStyle


def make_info(style=ReplicationStyle.WARM_PASSIVE):
    return GroupInfo("g", "IDL:T:1.0", style, 0.5)


def test_add_member_and_roles():
    info = make_info()
    info.add_member("n1", ROLE_PRIMARY, operational=True)
    info.add_member("n2", ROLE_BACKUP)
    assert info.member_nodes == ["n1", "n2"]
    assert info.primary_node == "n1"
    assert info.role_of("n2") == ROLE_BACKUP
    assert info.operational_nodes() == ["n1"]


def test_executes_predicate():
    info = make_info()
    info.add_member("n1", ROLE_PRIMARY)
    info.add_member("n2", ROLE_BACKUP)
    assert info.executes("n1")
    assert not info.executes("n2")
    assert not info.executes("ghost")


def test_responds_to_recovery_requires_operational_executor():
    info = make_info(ReplicationStyle.ACTIVE)
    info.add_member("n1", ROLE_ACTIVE, operational=True)
    info.add_member("n2", ROLE_ACTIVE, operational=False)
    assert info.responds_to_recovery("n1")
    assert not info.responds_to_recovery("n2")


def test_backup_never_responds_to_recovery():
    info = make_info()
    info.add_member("n1", ROLE_BACKUP, operational=True)
    assert not info.responds_to_recovery("n1")


def test_mark_operational_only_for_members():
    info = make_info()
    info.mark_operational("ghost")
    assert info.operational == set()


def test_promote_swaps_roles():
    info = make_info()
    info.add_member("n1", ROLE_PRIMARY)
    info.add_member("n2", ROLE_BACKUP)
    info.promote("n2")
    assert info.primary_node == "n2"
    assert info.role_of("n1") == ROLE_BACKUP


def test_node_loss_without_primary_loss():
    info = make_info()
    info.add_member("n1", ROLE_PRIMARY)
    info.add_member("n2", ROLE_BACKUP)
    assert info.handle_node_loss({"n2"}) is None
    assert info.member_nodes == ["n1"]


def test_node_loss_promotes_first_surviving_backup():
    info = make_info()
    info.add_member("n1", ROLE_PRIMARY)
    info.add_member("n3", ROLE_BACKUP)
    info.add_member("n2", ROLE_BACKUP)
    promoted = info.handle_node_loss({"n1"})
    assert promoted == "n2"        # deterministic: sorted order
    assert info.primary_node == "n2"


def test_node_loss_of_everything():
    info = make_info()
    info.add_member("n1", ROLE_PRIMARY)
    assert info.handle_node_loss({"n1"}) is None
    assert info.member_nodes == []


def test_node_loss_same_decision_on_every_node():
    """Two replicas of the view applying the same loss reach the same
    promotion — the determinism failover depends on."""
    views = [make_info(), make_info()]
    for info in views:
        info.add_member("a", ROLE_BACKUP)
        info.add_member("b", ROLE_PRIMARY)
        info.add_member("c", ROLE_BACKUP)
    decisions = {info.handle_node_loss({"b"}) for info in views}
    assert decisions == {"a"}


def test_surviving_backups_sorted():
    info = make_info()
    info.add_member("z", ROLE_BACKUP)
    info.add_member("a", ROLE_BACKUP)
    info.add_member("p", ROLE_PRIMARY)
    assert info.surviving_backups(set()) == ["a", "z"]
    assert info.surviving_backups({"a"}) == ["z"]
