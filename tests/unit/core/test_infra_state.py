"""Unit tests for infrastructure-level state (paper §4.3)."""

from repro.core.identifiers import ConnectionKey, OperationId, OpKind
from repro.core.infra_state import InfraState

CONN = ConnectionKey("c", "s")


def test_record_issued_new_then_reissue():
    state = InfraState()
    assert state.record_issued(CONN, 0, "op", True) is True
    assert state.record_issued(CONN, 1, "op", True) is True
    # a deterministic re-issue of an already-sent id is not new
    assert state.record_issued(CONN, 1, "op", True) is False


def test_awaiting_tracks_unanswered_invocations():
    state = InfraState()
    state.record_issued(CONN, 0, "credit", True)
    assert state.awaiting_reply(CONN, 0) == "credit"
    state.record_reply_delivered(CONN, 0)
    assert state.awaiting_reply(CONN, 0) is None


def test_oneways_not_awaited():
    state = InfraState()
    state.record_issued(CONN, 0, "notify", False)
    assert state.awaiting_reply(CONN, 0) is None


def test_reply_for_unknown_request_ignored():
    InfraState().record_reply_delivered(CONN, 99)   # must not raise


def test_capture_decode_roundtrip():
    state = InfraState(style="warm_passive", role="primary")
    state.record_issued(CONN, 0, "a", True)
    state.record_issued(CONN, 1, "b", True)
    state.record_reply_delivered(CONN, 0)
    state.duplicates.seen_before(OperationId(CONN, 7, OpKind.REPLY))
    decoded = InfraState.decode(state.capture())
    assert decoded.style == "warm_passive"
    assert decoded.role == "primary"
    assert decoded.issued == {CONN: 1}
    assert decoded.awaiting == {CONN: {1: "b"}}
    assert decoded.duplicates.seen_before(
        OperationId(CONN, 7, OpKind.REPLY)
    ) is True


def test_decode_empty_blob():
    state = InfraState.decode(b"")
    assert state.issued == {} and state.awaiting == {}


def test_capture_with_duplicates_override():
    state = InfraState()
    snapshot = state.duplicates.capture()
    state.duplicates.seen_before(OperationId(CONN, 0, OpKind.REQUEST))
    decoded = InfraState.decode(state.capture(duplicates_override=snapshot))
    # the override predates the seen_before, so 0 must look fresh
    assert decoded.duplicates.seen_before(
        OperationId(CONN, 0, OpKind.REQUEST)
    ) is False


def test_adopt_merges_duplicates_and_issued():
    local = InfraState(role="backup")
    other = InfraState(role="primary")
    other.duplicates.seen_before(OperationId(CONN, 0, OpKind.REQUEST))
    other.record_issued(CONN, 5, "x", True)
    local.duplicates.seen_before(OperationId(CONN, 1, OpKind.REQUEST))
    local.adopt(other)
    assert local.role == "backup"      # role preserved by default
    assert local.duplicates.seen_before(
        OperationId(CONN, 0, OpKind.REQUEST)
    ) is True
    assert local.duplicates.seen_before(
        OperationId(CONN, 1, OpKind.REQUEST)
    ) is True
    assert local.issued[CONN] == 5
    assert local.awaiting == {CONN: {5: "x"}}


def test_adopt_keeps_higher_local_issued():
    local, other = InfraState(), InfraState()
    local.record_issued(CONN, 10, "x", False)
    other.record_issued(CONN, 5, "y", False)
    local.adopt(other)
    assert local.issued[CONN] == 10


def test_adopt_can_take_role():
    local = InfraState(role="backup")
    other = InfraState(role="primary")
    local.adopt(other, keep_role=False)
    assert local.role == "primary"
