"""Meta-tests: documentation coverage of the public surface.

Deliverable discipline: every module and every public class/function in
``repro`` carries a docstring, and the repository-level documents exist
with their required sections.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent
REPO_ROOT = SRC_ROOT.parent.parent


def iter_modules():
    for info in pkgutil.walk_packages([str(SRC_ROOT)], prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_documented():
    missing = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module.__name__:
                continue        # re-export
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"classes without docstrings: {missing}"


def test_every_public_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module.__name__:
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"functions without docstrings: {missing}"


@pytest.mark.parametrize("filename,required", [
    ("README.md", ["Quickstart", "Architecture", "Install"]),
    ("DESIGN.md", ["Per-experiment index", "substitutions",
                   "System inventory"]),
    ("EXPERIMENTS.md", ["Figure 6", "overhead", "replication styles"]),
    ("PROTOCOL.md", ["Recovery", "Checkpointing", "Membership"]),
])
def test_repository_documents_present(filename, required):
    path = REPO_ROOT / filename
    assert path.exists(), f"{filename} missing"
    text = path.read_text(encoding="utf-8").lower()
    for fragment in required:
        assert fragment.lower() in text, f"{filename} lacks {fragment!r}"


def test_examples_are_documented_and_runnable_scripts():
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    assert len(examples) >= 5
    for example in examples:
        text = example.read_text(encoding="utf-8")
        assert text.startswith("#!/usr/bin/env python"), example.name
        assert '"""' in text.split("\n", 2)[1] + text, example.name
        assert "__main__" in text, example.name
