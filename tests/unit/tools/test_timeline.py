"""Unit tests for the trace timeline tool."""

from repro.simnet.trace import Tracer
from repro.tools.timeline import recovery_summary, render_timeline


def make_tracer(records):
    tracer = Tracer(keep_records=True)
    clock = {"now": 0.0}
    tracer.bind_clock(lambda: clock["now"])
    for time, category, event, fields in records:
        clock["now"] = time
        tracer.emit(category, event, **fields)
    return tracer


RECOVERY_RECORDS = [
    (0.100, "fault", "crash", {"node": "s2"}),
    (0.200, "process", "restart", {"node": "s2"}),
    (0.201, "recovery", "join_announced",
     {"node": "s2", "group": "store", "transfer": "rec:1"}),
    (0.202, "recovery", "sync_point",
     {"node": "s2", "group": "store", "transfer": "rec:1"}),
    (0.203, "recovery", "set_state_multicast",
     {"node": "s1", "group": "store", "app_bytes": 1234}),
    (0.205, "recovery", "recovery_set_received",
     {"node": "s2", "group": "store", "app_bytes": 1234}),
    (0.206, "recovery", "recovered", {"node": "s2", "group": "store"}),
]


def test_render_includes_labels_and_times():
    text = render_timeline(make_tracer(RECOVERY_RECORDS))
    assert "sync point" in text
    assert "replica reinstated" in text
    assert "201.000 ms" in text


def test_render_filters_by_category():
    text = render_timeline(make_tracer(RECOVERY_RECORDS),
                           categories={"fault"})
    assert "crash" in text
    assert "reinstated" not in text


def test_render_filters_by_window():
    text = render_timeline(make_tracer(RECOVERY_RECORDS), since=0.202,
                           until=0.204)
    assert "set_state() fabricated" in text
    assert "join announced" not in text


def test_render_filters_by_group():
    records = RECOVERY_RECORDS + [
        (0.300, "recovery", "recovered", {"node": "x", "group": "other"}),
    ]
    text = render_timeline(make_tracer(records), group="store")
    assert "other" not in text


def test_render_empty_message():
    assert "no matching" in render_timeline(Tracer(keep_records=True))


def test_recovery_summary_complete():
    summaries = recovery_summary(make_tracer(RECOVERY_RECORDS))
    assert len(summaries) == 1
    summary = summaries[0]
    assert summary.group == "store" and summary.node == "s2"
    assert summary.state_bytes == 1234
    assert summary.duration is not None
    assert abs(summary.duration - 0.005) < 1e-9


def test_recovery_summary_in_flight():
    records = RECOVERY_RECORDS[:4]     # no 'recovered' yet
    summaries = recovery_summary(make_tracer(records))
    assert len(summaries) == 1
    assert summaries[0].recovered_at is None
    assert summaries[0].duration is None


def test_recovery_summary_multiple_sorted():
    records = list(RECOVERY_RECORDS)
    records += [
        (0.400, "recovery", "join_announced",
         {"node": "s1", "group": "store", "transfer": "rec:2"}),
        (0.410, "recovery", "recovered", {"node": "s1", "group": "store"}),
    ]
    summaries = recovery_summary(make_tracer(records))
    assert [s.node for s in summaries] == ["s2", "s1"]


def test_summary_from_live_system():
    from repro.bench.deployments import build_client_server, measure_recovery
    deployment = build_client_server(server_replicas=2, state_size=500,
                                     warmup=0.1, keep_trace_records=True)
    measure_recovery(deployment, "s2")
    summaries = recovery_summary(deployment.system.tracer)
    assert any(s.node == "s2" and s.duration is not None
               for s in summaries)
