"""Unit tests for the exception hierarchy contract."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    GiopError,
    MarshalError,
    NetworkError,
    OrbError,
    ProtocolError,
    RecoveryError,
    ReplicationError,
    ReproError,
    SimulationError,
    TotemError,
    UnmarshalError,
)


def test_every_library_error_derives_from_repro_error():
    for name, obj in vars(errors_module).items():
        if inspect.isclass(obj) and issubclass(obj, Exception):
            assert issubclass(obj, ReproError), name


def test_family_groupings():
    assert issubclass(MarshalError, GiopError)
    assert issubclass(UnmarshalError, GiopError)
    assert issubclass(ProtocolError, GiopError)
    assert issubclass(NetworkError, SimulationError)
    assert not issubclass(TotemError, SimulationError)
    assert not issubclass(OrbError, GiopError)


def test_ft_corba_user_exceptions_are_corba_exceptions():
    from repro.ftcorba.checkpointable import InvalidState, NoStateAvailable
    from repro.orb.servant import CorbaUserException
    assert issubclass(NoStateAvailable, CorbaUserException)
    assert issubclass(InvalidState, CorbaUserException)


def test_catching_base_covers_subsystem_failures():
    with pytest.raises(ReproError):
        raise ReplicationError("x")
    with pytest.raises(ReproError):
        raise RecoveryError("x")
