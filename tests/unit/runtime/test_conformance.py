"""Conformance suite for the :mod:`repro.runtime` interfaces.

Every assertion here runs against *both* substrates — the discrete-event
simulator and the asyncio/UDP live runtime — so the protocol stack can
treat them interchangeably.  The harness hides the one real difference:
how time passes (running the event heap vs. awaiting the wall clock).

The live parametrization carries the ``live`` marker: it opens real
loopback sockets and sleeps real milliseconds.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import pytest

from repro.errors import NetworkError
from repro.runtime.timers import PeriodicTimer
from repro.totem.wire import register_wire_type


@dataclass(frozen=True)
class Ping:
    value: str


@dataclass(frozen=True)
class Pong:
    value: str


class PingSub(Ping):
    pass


# The live transport's binary codec carries only registered frame types;
# give the conformance payloads extension codecs (exact class preserved,
# which the MRO-dispatch assertions below depend on).
for _tag, _cls in ((64, Ping), (65, Pong), (66, PingSub)):
    register_wire_type(
        _tag, _cls,
        lambda out, obj: out.write_string(obj.value),
        lambda inp, c=_cls: c(inp.read_string()),
    )


class SimHarness:
    """Scheduler + modelled Ethernet + Endpoint transports."""

    def __init__(self, node_ids):
        from repro.simnet.endpoint import Endpoint
        from repro.simnet.network import Network
        from repro.simnet.process import Process
        from repro.simnet.scheduler import Scheduler

        self.scheduler = Scheduler()
        self.network = Network(self.scheduler)
        self.hosts = {}
        self.transports = {}
        for node_id in node_ids:
            host = Process(self.scheduler, node_id)
            self.hosts[node_id] = host
            self.transports[node_id] = Endpoint(host, self.network)

    def run_until(self, predicate, timeout=1.0):
        return self.scheduler.run_while(lambda: not predicate(), timeout)

    def advance(self, duration):
        self.scheduler.run_until(self.scheduler.now + duration)

    def close(self):
        pass


class LiveHarness:
    """asyncio loop + loopback UDP sockets + UdpTransport."""

    def __init__(self, node_ids):
        from repro.live.clock import LiveScheduler
        from repro.live.transport import (
            SegmentDispatcher,
            UdpTransport,
            bind_udp_socket,
        )
        from repro.runtime.host import BaseHost

        self.loop = asyncio.new_event_loop()
        self.scheduler = LiveScheduler(self.loop)
        self.segment = SegmentDispatcher()
        self.segment.open(self.loop)
        self.hosts = {}
        self.transports = {}
        peers = {}
        socks = {node_id: bind_udp_socket() for node_id in node_ids}
        for node_id, sock in socks.items():
            peers[node_id] = sock.getsockname()
        self.segment.set_members(list(peers.values()))
        for node_id in node_ids:
            host = BaseHost(self.scheduler, node_id)
            transport = UdpTransport(host, socks[node_id], peers,
                                     self.segment.addr)
            transport.open(self.loop)
            self.hosts[node_id] = host
            self.transports[node_id] = transport

    def run_until(self, predicate, timeout=2.0):
        async def poll():
            deadline = self.loop.time() + timeout
            while not predicate():
                if self.loop.time() >= deadline:
                    return bool(predicate())
                await asyncio.sleep(0.002)
            return True
        return self.loop.run_until_complete(poll())

    def advance(self, duration):
        self.loop.run_until_complete(asyncio.sleep(duration))

    def close(self):
        for transport in self.transports.values():
            transport.close()
        self.segment.close()
        self.loop.close()


HARNESSES = {"simnet": SimHarness, "live": LiveHarness}


@pytest.fixture(params=[pytest.param("simnet"),
                        pytest.param("live", marks=pytest.mark.live)])
def harness(request):
    h = HARNESSES[request.param](["x", "y", "z"])
    yield h
    h.close()


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------

def test_broadcast_reaches_every_node_including_sender(harness):
    got = {n: [] for n in harness.transports}
    for node_id, transport in harness.transports.items():
        transport.register(Ping, lambda src, p, n=node_id: got[n].append(src))
    harness.transports["x"].broadcast(Ping("hello"), 20)
    assert harness.run_until(lambda: all(len(v) == 1 for v in got.values()))
    assert {srcs[0] for srcs in got.values()} == {"x"}


def test_unicast_reaches_only_the_destination(harness):
    got = {n: [] for n in harness.transports}
    for node_id, transport in harness.transports.items():
        transport.register(Ping, lambda src, p, n=node_id: got[n].append(p))
    harness.transports["x"].unicast("y", Ping("direct"), 20)
    assert harness.run_until(lambda: len(got["y"]) == 1)
    harness.advance(0.05)     # give a mis-delivery time to show up
    assert got["x"] == [] and got["z"] == []
    assert got["y"][0].value == "direct"


def test_dispatch_by_exact_type_then_mro(harness):
    got = []
    transport = harness.transports["y"]
    transport.register(Ping, lambda src, p: got.append(("base", p.value)))
    transport.register(Pong, lambda src, p: got.append(("pong", p.value)))
    harness.transports["x"].unicast("y", PingSub("sub"), 20)
    harness.transports["x"].unicast("y", Pong("pong"), 20)
    assert harness.run_until(lambda: len(got) == 2)
    assert sorted(got) == [("base", "sub"), ("pong", "pong")]
    transport.register(PingSub, lambda src, p: got.append(("exact", p.value)))
    harness.transports["x"].unicast("y", PingSub("again"), 20)
    assert harness.run_until(lambda: len(got) == 3)
    assert got[-1] == ("exact", "again")


def test_unregister_stops_delivery(harness):
    got = []
    harness.transports["y"].register(Ping, lambda src, p: got.append(p))
    harness.transports["y"].unregister(Ping)
    harness.transports["x"].unicast("y", Ping("gone"), 20)
    harness.advance(0.05)
    assert got == []


def test_declared_size_above_mtu_is_rejected(harness):
    transport = harness.transports["x"]
    oversize = transport.mtu_payload + 1
    with pytest.raises(NetworkError):
        transport.broadcast(Ping("big"), oversize)
    with pytest.raises(NetworkError):
        transport.unicast("y", Ping("big"), oversize)


def test_mtu_payload_matches_ethernet_model(harness):
    # Both substrates present the same 1500-byte payload budget, so the
    # ring member fragments identically and Figure-6 style curves compare.
    assert harness.transports["x"].mtu_payload == 1500


def test_crashed_host_receives_nothing(harness):
    got = []
    harness.transports["y"].register(Ping, lambda src, p: got.append(p))
    harness.hosts["y"].crash()
    harness.transports["x"].broadcast(Ping("too late"), 20)
    harness.advance(0.05)
    assert got == []


# ---------------------------------------------------------------------------
# Clock / scheduler
# ---------------------------------------------------------------------------

def test_clock_starts_near_zero_and_advances(harness):
    t0 = harness.scheduler.now
    assert t0 >= 0.0
    harness.advance(0.05)
    assert harness.scheduler.now >= t0 + 0.05


def test_call_after_runs_in_delay_order(harness):
    fired = []
    harness.scheduler.call_after(0.03, fired.append, "third")
    harness.scheduler.call_after(0.01, fired.append, "first")
    harness.scheduler.call_after(0.02, fired.append, "second")
    assert harness.run_until(lambda: len(fired) == 3)
    assert fired == ["first", "second", "third"]


def test_cancelled_timer_never_fires(harness):
    fired = []
    handle = harness.scheduler.call_after(0.01, fired.append, "no")
    handle.cancel()
    harness.scheduler.cancel(None)          # None is a no-op
    harness.advance(0.05)
    assert fired == []


def test_host_call_after_is_incarnation_guarded(harness):
    fired = []
    host = harness.hosts["x"]
    host.call_after(0.01, fired.append, "dropped")
    host.crash()
    host.restart()
    host.call_after(0.01, fired.append, "kept")
    assert harness.run_until(lambda: "kept" in fired)
    harness.advance(0.05)
    assert fired == ["kept"]


def test_periodic_timer_ticks_and_stops(harness):
    ticks = []
    timer = PeriodicTimer(harness.scheduler, 0.02,
                          lambda: ticks.append(harness.scheduler.now))
    assert harness.run_until(lambda: len(ticks) >= 3, timeout=2.0)
    timer.stop()
    seen = len(ticks)
    harness.advance(0.06)
    assert len(ticks) == seen
