"""Property-based tests: auction invariants over arbitrary bid scripts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.auction import (
    AuctionClosed,
    AuctionServant,
    BidRejected,
    NoSuchAuction,
)
from repro.orb.servant import CorbaUserException

actions = st.lists(
    st.one_of(
        st.tuples(st.just("bid"),
                  st.sampled_from(["alice", "bob", "carol"]),
                  st.integers(0, 500)),
        st.tuples(st.just("watch"),
                  st.sampled_from(["alice", "bob", "carol"])),
        st.tuples(st.just("close")),
    ),
    max_size=60,
)


@given(actions, st.integers(0, 300))
@settings(max_examples=200, deadline=None)
def test_invariants_hold_under_any_script(script, reserve):
    servant = AuctionServant()
    servant.create_auction("lot", reserve)
    accepted = 0
    for action in script:
        try:
            if action[0] == "bid":
                servant.bid("lot", action[1], action[2])
                accepted += 1
            elif action[0] == "watch":
                servant.watch("lot", action[1])
            else:
                servant.close_auction("lot")
        except CorbaUserException:
            pass
    servant.check_invariants()
    status = servant.status("lot")
    assert status["bids"] == accepted
    if accepted:
        assert status["high_bid"] >= reserve


@given(actions)
@settings(max_examples=100, deadline=None)
def test_state_roundtrip_preserves_everything(script):
    servant = AuctionServant()
    servant.create_auction("lot", 10)
    for action in script:
        try:
            if action[0] == "bid":
                servant.bid("lot", action[1], action[2])
            elif action[0] == "watch":
                servant.watch("lot", action[1])
            else:
                servant.close_auction("lot")
        except CorbaUserException:
            pass
    clone = AuctionServant()
    clone.set_state(servant.get_state())
    assert clone.get_state() == servant.get_state()
    clone.check_invariants()


@given(st.lists(st.integers(1, 1000), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_high_bid_is_monotone(amounts):
    servant = AuctionServant()
    servant.create_auction("lot", 1)
    highs = []
    for amount in amounts:
        try:
            servant.bid("lot", "x", amount)
        except BidRejected:
            pass
        highs.append(servant.status("lot")["high_bid"])
    assert highs == sorted(highs)
    assert highs[-1] == max(amounts)
