"""Property-based tests: GIOP messages and envelopes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import (
    IiopEnvelope,
    StateSet,
    TransferPurpose,
    decode_envelope,
    encode_envelope,
)
from repro.core.identifiers import ConnectionKey, OpKind
from repro.giop.messages import (
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    decode_message,
    encode_message,
    peek_request_id,
)

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           blacklist_characters=">-"),
    min_size=1, max_size=16,
)
args_values = st.lists(
    st.one_of(st.integers(-2**40, 2**40), st.text(max_size=20),
              st.binary(max_size=50), st.booleans(), st.none()),
    max_size=5,
)


@given(
    request_id=st.integers(0, 2**32 - 1),
    object_key=st.binary(min_size=1, max_size=40),
    operation=names,
    args=args_values,
    response_expected=st.booleans(),
    little=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_request_roundtrip(request_id, object_key, operation, args,
                           response_expected, little):
    original = RequestMessage(
        request_id=request_id, object_key=object_key, operation=operation,
        args=tuple(args), response_expected=response_expected,
    )
    wire = encode_message(original, little)
    decoded = decode_message(wire)
    assert decoded.request_id == request_id
    assert decoded.object_key == object_key
    assert decoded.operation == operation
    assert list(decoded.args) == args
    assert decoded.response_expected == response_expected
    assert peek_request_id(wire) == request_id


@given(
    request_id=st.integers(0, 2**32 - 1),
    status=st.sampled_from(list(ReplyStatus)[:3]),
    little=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_reply_roundtrip(request_id, status, little):
    if status is ReplyStatus.NO_EXCEPTION:
        original = ReplyMessage(request_id=request_id, result=[1, "x"])
    else:
        original = ReplyMessage(request_id=request_id, reply_status=status,
                                exception_id="IDL:E:1.0", result="detail")
    wire = encode_message(original, little)
    decoded = decode_message(wire)
    assert decoded.request_id == request_id
    assert decoded.reply_status is status
    assert peek_request_id(wire) == request_id


@given(
    client=names, server=names,
    kind=st.sampled_from(list(OpKind)),
    request_id=st.integers(0, 2**32 - 1),
    node=names,
    payload=st.binary(max_size=500),
)
@settings(max_examples=150, deadline=None)
def test_iiop_envelope_roundtrip(client, server, kind, request_id, node,
                                 payload):
    original = IiopEnvelope(ConnectionKey(client, server), kind, request_id,
                            node, payload)
    assert decode_envelope(encode_envelope(original)) == original


@given(
    app=st.binary(max_size=2000),
    orb=st.binary(max_size=200),
    infra=st.binary(max_size=200),
    purpose=st.sampled_from(list(TransferPurpose)),
)
@settings(max_examples=100, deadline=None)
def test_state_set_roundtrip(app, orb, infra, purpose):
    original = StateSet("g", "t", purpose, "src", "dst", app, orb, infra)
    assert decode_envelope(encode_envelope(original)) == original
