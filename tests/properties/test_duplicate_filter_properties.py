"""Property-based tests: duplicate-suppression invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identifiers import (
    ConnectionKey,
    DuplicateFilter,
    OperationId,
    OpKind,
)

CONN = ConnectionKey("c", "s")


def ops_from(ids):
    return [OperationId(CONN, i, OpKind.REQUEST) for i in ids]


@given(st.lists(st.integers(0, 50), max_size=100))
@settings(max_examples=200, deadline=None)
def test_at_most_once(ids):
    """Whatever the arrival order/duplication, each id passes exactly once."""
    f = DuplicateFilter()
    passed = [op.request_id for op in ops_from(ids)
              if not f.seen_before(op)]
    assert sorted(passed) == sorted(set(ids))


@given(st.lists(st.integers(0, 50), max_size=60),
       st.lists(st.integers(0, 50), max_size=60))
@settings(max_examples=150, deadline=None)
def test_capture_restore_equivalence(before, after):
    """A restored filter behaves identically to the original."""
    f = DuplicateFilter()
    for op in ops_from(before):
        f.seen_before(op)
    restored = DuplicateFilter.restore(f.capture())
    for op in ops_from(after):
        assert f.seen_before(op) == restored.seen_before(op)


@given(st.lists(st.integers(0, 40), max_size=50),
       st.lists(st.integers(0, 40), max_size=50),
       st.lists(st.integers(0, 60), max_size=60))
@settings(max_examples=150, deadline=None)
def test_merge_is_union(a_ids, b_ids, probe_ids):
    """After merging B into A, exactly ids seen by either are duplicates."""
    a, b = DuplicateFilter(), DuplicateFilter()
    for op in ops_from(a_ids):
        a.seen_before(op)
    for op in ops_from(b_ids):
        b.seen_before(op)
    a.merge(b)
    union = set(a_ids) | set(b_ids)
    for op in ops_from(sorted(set(probe_ids))):
        assert a.seen_before(op) == (op.request_id in union)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_sparse_set_stays_bounded_for_contiguous_traffic(ids):
    """Contiguous prefixes compact into the watermark."""
    f = DuplicateFilter()
    for op in ops_from(range(max(ids) + 1)):
        f.seen_before(op)
    key = (CONN, OpKind.REQUEST)
    assert f._sparse[key] == set()
    assert f._watermark[key] == max(ids)
