"""Property-based test: strong replica consistency under random fault
schedules — the paper's end-to-end guarantee.

Hypothesis chooses arbitrary crash/restart schedules for the server
replicas of an active group under a constant invocation stream; after the
dust settles, every live replica must have executed exactly the same
operations (identical application state), and exactly-once semantics must
hold against the client's acknowledgement count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle

# a schedule step: (victim server index, downtime before restart in ms)
fault_steps = st.lists(
    st.tuples(st.integers(0, 1), st.integers(10, 300)),
    min_size=1, max_size=3,
)


@given(fault_steps, st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_active_replicas_identical_after_arbitrary_fault_schedule(steps,
                                                                  seed):
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=500,
        warmup=0.2,
        seed=seed,
    )
    system = deployment.system
    group = deployment.server_group
    for victim_index, downtime_ms in steps:
        victim = deployment.server_nodes[victim_index]
        if not system.stacks[victim].process.alive:
            continue
        # never kill the last live replica (total group failure is a
        # different scenario)
        other = deployment.server_nodes[1 - victim_index]
        if not system.stacks[other].process.alive:
            continue
        system.kill_node(victim)
        system.run_for(downtime_ms / 1000.0)
        system.restart_node(victim)
        assert system.wait_for(
            lambda v=victim: group.is_operational_on(v), timeout=10.0
        ), f"{victim} failed to recover"
    system.run_for(0.5)
    servants = [deployment.server_servant(n)
                for n in deployment.server_nodes]
    driver = deployment.driver
    assert servants[0].echo_count == servants[1].echo_count
    assert servants[0].get_state() == servants[1].get_state()
    # exactly-once against the client's acknowledgements (±1 in flight)
    assert abs(servants[0].echo_count - driver.acked) <= 1
    assert driver.acked > 0


@given(st.integers(10, 400), st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_warm_passive_exactly_once_for_any_failover_phase(kill_delay_ms,
                                                          seed):
    """Whenever in the checkpoint cycle the primary dies, the promoted
    backup agrees exactly with the client's acknowledgements."""
    deployment = build_client_server(
        style=ReplicationStyle.WARM_PASSIVE,
        server_replicas=2,
        state_size=300,
        checkpoint_interval=0.1,
        warmup=0.2,
        seed=seed,
    )
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    system.run_for(kill_delay_ms / 1000.0)
    primary = group.primary_node()
    acked_at_kill = driver.acked
    system.kill_node(primary)
    assert system.wait_for(lambda: driver.acked > acked_at_kill + 20,
                           timeout=10.0)
    system.run_for(0.3)
    survivor = group.primary_node()
    servant = group.servant_on(survivor)
    assert 0 <= servant.echo_count - driver.acked <= 1
