"""Property-based robustness: decoders never crash on hostile bytes.

Every wire decoder must either return a valid object or raise an exception
from this library's hierarchy (:class:`repro.errors.ReproError`) — never
an uncontrolled ``struct.error`` / ``IndexError`` / ``MemoryError`` from
attacker-controlled lengths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import decode_envelope, encode_envelope, IiopEnvelope
from repro.core.identifiers import ConnectionKey, OpKind
from repro.errors import ReproError
from repro.giop.ior import IOR
from repro.giop.messages import (
    RequestMessage,
    decode_message,
    encode_message,
    peek_request_id,
)
from repro.giop.types import decode_any


@given(st.binary(max_size=300))
@settings(max_examples=300, deadline=None)
def test_decode_message_contained(data):
    try:
        decode_message(data)
    except ReproError:
        pass


@given(st.binary(max_size=300))
@settings(max_examples=300, deadline=None)
def test_peek_request_id_contained(data):
    try:
        peek_request_id(data)
    except ReproError:
        pass


@given(st.binary(max_size=300))
@settings(max_examples=300, deadline=None)
def test_decode_envelope_contained(data):
    try:
        decode_envelope(data)
    except ReproError:
        pass


@given(st.binary(max_size=200))
@settings(max_examples=200, deadline=None)
def test_decode_any_contained(data):
    try:
        decode_any(data)
    except ReproError:
        pass


@given(st.text(max_size=120))
@settings(max_examples=200, deadline=None)
def test_ior_from_string_contained(text):
    try:
        IOR.from_string(text)
    except ReproError:
        pass


_VALID_WIRE = encode_message(RequestMessage(
    request_id=7, object_key=b"\x00\x00\x01Pk", operation="op",
    args=(1, "two", b"3"),
))
_VALID_ENVELOPE = encode_envelope(IiopEnvelope(
    ConnectionKey("c", "s"), OpKind.REQUEST, 7, "n", _VALID_WIRE,
))


@given(st.integers(0, len(_VALID_WIRE) - 1), st.integers(0, 255))
@settings(max_examples=300, deadline=None)
def test_mutated_giop_contained(position, value):
    """Single-byte corruption of a valid message: decode either still
    succeeds (the byte was slack) or raises a library error."""
    mutated = bytearray(_VALID_WIRE)
    mutated[position] = value
    try:
        decode_message(bytes(mutated))
    except ReproError:
        pass


@given(st.integers(0, len(_VALID_ENVELOPE) - 1), st.integers(0, 255))
@settings(max_examples=300, deadline=None)
def test_mutated_envelope_contained(position, value):
    mutated = bytearray(_VALID_ENVELOPE)
    mutated[position] = value
    try:
        decode_envelope(bytes(mutated))
    except ReproError:
        pass


@given(st.integers(1, 64))
@settings(max_examples=50, deadline=None)
def test_truncated_giop_contained(cut):
    data = _VALID_WIRE[:max(0, len(_VALID_WIRE) - cut)]
    with pytest.raises(ReproError):
        decode_message(data)
