"""Property-based tests: CDR and Any round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.giop.types import decode_any, encode_any, from_any, to_any

# Scalars that survive an exact Any round-trip.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**63, max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=200),
)

# Keys must be hashable scalars (dict round-trips preserve them).
keys = st.one_of(st.integers(min_value=-2**31, max_value=2**31 - 1),
                 st.text(max_size=20))

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(keys, children, max_size=6),
    ),
    max_leaves=25,
)


@given(values, st.booleans())
@settings(max_examples=200, deadline=None)
def test_any_roundtrip(value, little_endian):
    blob = encode_any(to_any(value), little_endian=little_endian)
    assert from_any(decode_any(blob)) == value


primitive_cases = st.lists(
    st.one_of(
        st.tuples(st.just("octet"), st.integers(0, 255)),
        st.tuples(st.just("boolean"), st.booleans()),
        st.tuples(st.just("short"), st.integers(-2**15, 2**15 - 1)),
        st.tuples(st.just("ushort"), st.integers(0, 2**16 - 1)),
        st.tuples(st.just("long"), st.integers(-2**31, 2**31 - 1)),
        st.tuples(st.just("ulong"), st.integers(0, 2**32 - 1)),
        st.tuples(st.just("longlong"), st.integers(-2**63, 2**63 - 1)),
        st.tuples(st.just("ulonglong"), st.integers(0, 2**64 - 1)),
        st.tuples(st.just("double"),
                  st.floats(allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("string"), st.text(max_size=30)),
        st.tuples(st.just("octets"), st.binary(max_size=100)),
    ),
    max_size=20,
)


@given(primitive_cases, st.booleans())
@settings(max_examples=200, deadline=None)
def test_mixed_primitive_stream_roundtrip(cases, little_endian):
    """Any interleaving of primitives round-trips with correct alignment."""
    out = CdrOutputStream(little_endian)
    for kind, value in cases:
        getattr(out, f"write_{kind}")(value)
    inp = CdrInputStream(out.getvalue(), little_endian)
    for kind, value in cases:
        assert getattr(inp, f"read_{kind}")() == value


@given(st.binary(max_size=64), st.booleans())
@settings(max_examples=100, deadline=None)
def test_encapsulation_roundtrip(payload, inner_little):
    inner = CdrOutputStream(inner_little)
    inner.write_octets(payload)
    outer = CdrOutputStream()
    outer.write_encapsulation(inner)
    decoded = CdrInputStream(outer.getvalue()).read_encapsulation()
    assert decoded.read_octets() == payload
