"""Property-based tests: message-log / checkpoint GC invariants (§3.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import IiopEnvelope
from repro.core.identifiers import ConnectionKey, OpKind
from repro.core.msglog import MessageLog

CONN = ConnectionKey("c", "s")


def env(request_id):
    return IiopEnvelope(CONN, OpKind.REQUEST, request_id, "n", b"")


# A log script: "append" or "checkpoint at the current position"
script_steps = st.lists(st.sampled_from(["append", "checkpoint"]),
                        min_size=1, max_size=80)


@given(script_steps)
@settings(max_examples=200, deadline=None)
def test_replay_always_equals_suffix_after_last_checkpoint(steps):
    log = MessageLog("g")
    position = 0
    appended = []            # (position, request_id)
    last_checkpoint_position = -1
    checkpoint_count = 0
    for step in steps:
        if step == "append":
            position += 1
            log.append(position, env(position))
            appended.append(position)
        else:
            checkpoint_count += 1
            tid = f"t{checkpoint_count}"
            log.mark_get_position(tid, position)
            log.commit_checkpoint(tid, b"s", b"", b"")
            last_checkpoint_position = position
    expected = [p for p in appended if p > last_checkpoint_position]
    assert [e.request_id for e in log.messages_since_checkpoint()] \
        == expected
    # the log never retains anything the checkpoint covers
    assert log.log_length == len(expected)


@given(st.integers(0, 50), st.integers(0, 50))
@settings(max_examples=100, deadline=None)
def test_checkpoint_position_boundary_inclusive(before, after):
    """Messages at positions ≤ the GET position are covered; those after
    are replayed — exactly, for any split."""
    log = MessageLog("g")
    position = 0
    for _ in range(before):
        position += 1
        log.append(position, env(position))
    log.mark_get_position("t", position)
    log.commit_checkpoint("t", b"s", b"", b"")
    tail = []
    for _ in range(after):
        position += 1
        log.append(position, env(position))
        tail.append(position)
    assert [e.request_id for e in log.messages_since_checkpoint()] == tail


@given(st.lists(st.integers(1, 5), min_size=2, max_size=10))
@settings(max_examples=100, deadline=None)
def test_later_checkpoint_always_wins(batch_sizes):
    """Interleaved checkpoints: only the last one's state remains and its
    position governs replay (the overwrite rule)."""
    log = MessageLog("g")
    position = 0
    for index, batch in enumerate(batch_sizes):
        for _ in range(batch):
            position += 1
            log.append(position, env(position))
        tid = f"t{index}"
        log.mark_get_position(tid, position)
        log.commit_checkpoint(tid, str(index).encode(), b"", b"")
    assert log.checkpoint.app_state == str(len(batch_sizes) - 1).encode()
    assert log.messages_since_checkpoint() == []
    assert log.checkpoints_taken == len(batch_sizes)
