"""Property-based tests: fragmentation/reassembly invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.totem.fragmentation import Fragmenter, Reassembler


@given(st.binary(max_size=5000), st.integers(1, 600))
@settings(max_examples=200, deadline=None)
def test_fragment_reassemble_identity(payload, max_chunk):
    fragmenter = Fragmenter("n", max_chunk)
    reassembler = Reassembler()
    result = None
    for msg_id, index, count, chunk in fragmenter.fragment(payload):
        assert len(chunk) <= max_chunk
        assert result is None        # completes only on the last fragment
        result = reassembler.add(msg_id, index, count, chunk)
    assert result == payload


@given(st.lists(st.binary(max_size=1000), min_size=1, max_size=10),
       st.integers(1, 100))
@settings(max_examples=100, deadline=None)
def test_in_order_interleaving_of_messages(payloads, max_chunk):
    """Fragments of different messages may interleave as long as each
    message's fragments stay in order (the ring guarantees this)."""
    fragmenter = Fragmenter("n", max_chunk)
    streams = [list(fragmenter.fragment(p)) for p in payloads]
    reassembler = Reassembler()
    results = []
    # round-robin across messages
    while any(streams):
        for stream in streams:
            if stream:
                out = reassembler.add(*stream.pop(0))
                if out is not None:
                    results.append(out)
    # completion order depends on message lengths; content must match 1:1
    from collections import Counter
    assert Counter(results) == Counter(payloads)


@given(st.binary(min_size=1, max_size=2000), st.integers(1, 300))
@settings(max_examples=150, deadline=None)
def test_fragment_count_matches_helper(payload, max_chunk):
    frags = Fragmenter("n", max_chunk).fragment(payload)
    assert len(frags) == Fragmenter.fragment_count(len(payload), max_chunk)


@given(st.binary(max_size=500), st.integers(1, 50), st.integers(1, 5))
@settings(max_examples=100, deadline=None)
def test_skip_tail_join(payload, max_chunk, skip):
    """Joining mid-message: feeding only a suffix of fragments yields no
    message and leaves the reassembler clean for the next one."""
    frags = Fragmenter("n", max_chunk).fragment(payload)
    if len(frags) <= skip:
        return
    reassembler = Reassembler()
    for frag in frags[skip:]:
        assert reassembler.add(*frag) is None
    assert reassembler.pending == 0
    # next full message still works
    frags2 = Fragmenter("n", max_chunk).fragment(b"next")
    out = None
    for frag in frags2:
        out = reassembler.add(*frag)
    assert out == b"next"
