"""Property-based tests: interceptor request_id rewriting (§4.2.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identifiers import ConnectionKey
from repro.core.infra_state import InfraState
from repro.core.interceptor import Interceptor
from repro.core.orb_state import OrbStateTracker
from repro.giop.messages import (
    ReplyMessage,
    RequestMessage,
    decode_message,
    encode_message,
)
from repro.orb.objectkey import make_key

KEY = make_key("RootPOA", b"obj")
CONN = ConnectionKey("cg", "sg")


def build(offset=0):
    sent = []
    interceptor = Interceptor("n", "cg", sent.append, InfraState(),
                              OrbStateTracker())
    if offset:
        interceptor.set_request_id_offset(CONN, offset)
    return interceptor, sent


@given(st.integers(0, 1000), st.integers(0, 2**20))
@settings(max_examples=200, deadline=None)
def test_rewrite_roundtrip(local_id, offset):
    """outgoing rewrite then incoming rewrite is the identity on ids."""
    interceptor, sent = build(offset)
    wire = encode_message(RequestMessage(request_id=local_id,
                                         object_key=KEY, operation="op"))
    interceptor.capture_client_request("sg", 2809, wire)
    assert len(sent) == 1
    wire_id = sent[0].request_id
    assert wire_id == local_id + offset
    reply = encode_message(ReplyMessage(request_id=wire_id, result=None))
    back = interceptor.rewrite_incoming_reply(CONN, reply)
    assert decode_message(back).request_id == local_id


@given(st.lists(st.integers(0, 30), min_size=1, max_size=50),
       st.integers(0, 100))
@settings(max_examples=150, deadline=None)
def test_wire_ids_at_most_once(local_ids, offset):
    """Whatever local ids the ORB produces (including re-issues), each
    wire id is multicast at most once."""
    interceptor, sent = build(offset)
    for local_id in local_ids:
        wire = encode_message(RequestMessage(request_id=local_id,
                                             object_key=KEY,
                                             operation="op"))
        interceptor.capture_client_request("sg", 2809, wire)
    wire_ids = [e.request_id for e in sent]
    assert len(wire_ids) == len(set(wire_ids))
    assert set(wire_ids) <= {i + offset for i in local_ids}
    # suppressions + sends account for every capture
    assert len(sent) + interceptor.suppressed_reissues == len(local_ids)


@given(st.integers(0, 500))
@settings(max_examples=100, deadline=None)
def test_observation_tracks_maximum_wire_id(count):
    interceptor, sent = build()
    tracker = interceptor._orb_state
    for i in range(count):
        wire = encode_message(RequestMessage(request_id=i, object_key=KEY,
                                             operation="op"))
        interceptor.capture_client_request("sg", 2809, wire)
    if count:
        assert tracker.client_request_ids[CONN] == count - 1
    else:
        assert CONN not in tracker.client_request_ids
