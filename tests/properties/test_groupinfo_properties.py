"""Property-based tests: group-view transition invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groupinfo import (
    GroupInfo,
    ROLE_BACKUP,
    ROLE_PRIMARY,
)
from repro.core.infra_state import InfraState
from repro.ftcorba.properties import ReplicationStyle

node_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    min_size=1, max_size=8, unique=True,
)


def passive_info(nodes):
    info = GroupInfo("g", "T", ReplicationStyle.WARM_PASSIVE, 0.1)
    for index, node in enumerate(nodes):
        info.add_member(node, ROLE_PRIMARY if index == 0 else ROLE_BACKUP,
                        operational=True)
    return info


@given(node_names, st.data())
@settings(max_examples=200, deadline=None)
def test_at_most_one_primary_through_arbitrary_losses(nodes, data):
    info = passive_info(nodes)
    remaining = list(nodes)
    while remaining:
        victim = data.draw(st.sampled_from(remaining))
        remaining.remove(victim)
        info.handle_node_loss({victim})
        primaries = [n for n, r in info.roles.items() if r == ROLE_PRIMARY]
        assert len(primaries) <= 1
        if remaining:
            # as long as any member survives, someone must lead eventually:
            # a backup-only residue happens only if the primary survived
            if info.roles:
                assert primaries or info.primary_node is None
    assert info.roles == {}


@given(node_names)
@settings(max_examples=100, deadline=None)
def test_promotion_is_deterministic_across_observers(nodes):
    if len(nodes) < 2:
        return
    views = [passive_info(nodes) for _ in range(3)]
    primary = nodes[0]
    outcomes = {view.handle_node_loss({primary}) for view in views}
    assert len(outcomes) == 1
    promoted = outcomes.pop()
    assert promoted == sorted(nodes[1:])[0]


@given(node_names, node_names)
@settings(max_examples=100, deadline=None)
def test_loss_is_idempotent(nodes, extra):
    info = passive_info(nodes)
    lost = set(nodes[: len(nodes) // 2])
    info.handle_node_loss(lost)
    snapshot = (dict(info.roles), set(info.operational))
    info.handle_node_loss(lost)          # same loss again: no change
    assert (dict(info.roles), set(info.operational)) == snapshot


@given(st.lists(st.integers(0, 20), max_size=40),
       st.lists(st.integers(0, 20), max_size=40))
@settings(max_examples=150, deadline=None)
def test_infra_adopt_is_idempotent(a_ids, b_ids):
    from repro.core.identifiers import ConnectionKey, OperationId, OpKind
    conn = ConnectionKey("c", "s")
    local, other = InfraState(), InfraState()
    for i in a_ids:
        local.duplicates.seen_before(OperationId(conn, i, OpKind.REQUEST))
    for i in b_ids:
        other.duplicates.seen_before(OperationId(conn, i, OpKind.REQUEST))
    local.adopt(other)
    first = local.capture()
    local.adopt(other)
    assert local.capture() == first
