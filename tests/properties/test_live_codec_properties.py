"""Property tests for the live frame codec (:mod:`repro.live.transport`).

Two guarantees the raw-speed work must not erode:

* **Zero-copy equivalence** — decoding through the ``memoryview`` fast
  path (and encoding through a reused scratch buffer) produces results
  identical to a generic decode over a fresh private copy of the bytes.
  The zero-copy layer is an allocation optimization, never a semantic
  change.
* **Hostile containment** — arbitrary, truncated, or bit-flipped
  datagrams either decode (the corrupted byte was slack) or raise
  :class:`~repro.errors.NetworkError`; nothing escapes the library's
  error hierarchy, so the transport drops the frame and keeps running.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.live.transport import decode_frame, encode_frame
from repro.totem.messages import (DataMsg, JoinMsg, PackedDataMsg,
                                  PackedPayload, Token)

node_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12)

msg_ids = st.tuples(node_ids, st.integers(0, 2 ** 40))

data_msgs = st.builds(
    DataMsg,
    ring_id=st.integers(0, 2 ** 32 - 1),
    seq=st.integers(0, 2 ** 40),
    sender=node_ids,
    msg_id=msg_ids,
    frag_index=st.integers(0, 1000),
    frag_count=st.integers(1, 1001),
    chunk=st.binary(max_size=1400),
    retransmit=st.booleans(),
    trace_id=st.one_of(st.just(""), node_ids),
)

packed_msgs = st.builds(
    PackedDataMsg,
    ring_id=st.integers(0, 2 ** 32 - 1),
    seq=st.integers(0, 2 ** 40),
    sender=node_ids,
    payloads=st.tuples() | st.lists(
        st.builds(
            PackedPayload,
            msg_id=msg_ids,
            frag_index=st.integers(0, 1000),
            frag_count=st.integers(1, 1001),
            chunk=st.binary(max_size=200),
        ),
        min_size=1, max_size=5).map(tuple),
    retransmit=st.booleans(),
)

tokens = st.builds(
    Token,
    ring_id=st.integers(0, 2 ** 32 - 1),
    seq=st.integers(0, 2 ** 40),
    aru=st.integers(0, 2 ** 40),
    aru_id=st.one_of(st.just(""), node_ids),
    rtr=st.lists(st.integers(0, 2 ** 40), max_size=6),
    rotations=st.integers(0, 2 ** 40),
    ring_key=st.integers(0, 2 ** 32 - 1),
    commit_phase=st.integers(0, 2),
)

join_msgs = st.builds(
    JoinMsg,
    sender=node_ids,
    ring_id_seen=st.integers(0, 2 ** 32 - 1),
    delivered_aru=st.integers(0, 2 ** 40),
    held=st.frozensets(st.integers(0, 2 ** 40), max_size=6),
    fresh=st.booleans(),
)

frames = st.one_of(data_msgs, packed_msgs, tokens, join_msgs)


@given(src=node_ids, msg=frames)
@settings(max_examples=300, deadline=None)
def test_zero_copy_decode_equals_generic(src, msg):
    scratch = bytearray()
    wire = encode_frame(src, msg, scratch)
    # Scratch reuse never changes the encoded bytes.
    assert wire == encode_frame(src, msg)
    src_fast, out_fast = decode_frame(wire)
    # Generic decode: a fresh private copy, so no zero-copy views into
    # the original buffer can be involved.
    src_slow, out_slow = decode_frame(bytes(bytearray(wire)))
    assert src_fast == src_slow == src
    assert out_fast == out_slow == msg
    assert type(out_fast) is type(msg)


@given(data=st.binary(max_size=400))
@settings(max_examples=300, deadline=None)
def test_hostile_datagram_contained(data):
    try:
        decode_frame(data)
    except NetworkError:
        pass


_VALID_FRAME = encode_frame("n1", DataMsg(
    ring_id=3, seq=17, sender="n2", msg_id=("n2", 4),
    frag_index=0, frag_count=2, chunk=b"\xAB" * 96))


@given(position=st.integers(0, len(_VALID_FRAME) - 1),
       value=st.integers(0, 255))
@settings(max_examples=300, deadline=None)
def test_bit_flipped_frame_contained(position, value):
    mutated = bytearray(_VALID_FRAME)
    mutated[position] = value
    try:
        decode_frame(bytes(mutated))
    except NetworkError:
        pass


@given(cut=st.integers(1, len(_VALID_FRAME)))
@settings(max_examples=100, deadline=None)
def test_truncated_frame_contained(cut):
    try:
        decode_frame(_VALID_FRAME[:-cut])
    except NetworkError:
        pass
