"""Property-based tests: journal crash-recovery invariants.

The claim under test is the store's durability contract with
``fsync="always"``: crash at *any* point — mid-append, mid-compaction,
with a torn partial frame on the tail — then reopen and replay the
operation stream from the last durable checkpoint onward, and the
journal reconstructs exactly the state of a run that never crashed.
Replay is intentionally overlapping (it re-applies operations that were
already durable), so this also proves the position-keyed dedup rules.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.msglog import CheckpointRecord
from repro.store.journal import JournalStore
from repro.store.memory import MemoryStore
from repro.store.records import encode_message, frame

STATE_SIZE = 4096
PAGE_SIZE = 1024

#: Crash-hook labels inside multi-step journal operations (compaction and
#: the append path); "close" is a plain kill between operations and
#: "shear" additionally leaves a torn partial frame on the tail segment.
CRASH_MODES = ["close", "shear", "rewrite.segment", "manifest.replaced",
               "rewrite.cleanup", "append.flushed"]


def _payload(position):
    return (b"msg-%06d-" % position) * 4


def _ckpt(position):
    app = bytearray(STATE_SIZE)
    app[0:8] = b"%08d" % position          # one dirty page per checkpoint
    return CheckpointRecord(f"xfer-{position}", position, bytes(app),
                            b"orb", b"infra")


def _apply(group, op):
    kind, position = op
    if kind == "msg":
        group.append_message(position, _payload(position))
    else:
        group.commit_checkpoint(_ckpt(position))


def _digest(store):
    group = store.group("g", page_size=PAGE_SIZE)
    group.close()
    state = group.load()
    ckpt = state.checkpoint
    return (
        (ckpt.position, ckpt.app_state, ckpt.orb_state, ckpt.infra_state)
        if ckpt else None,
        state.messages,
    )


class _CrashAt:
    def __init__(self, label):
        self.label = label

    def __call__(self, label):
        if label == self.label:
            raise RuntimeError(f"simulated crash at {label}")


@st.composite
def scripts(draw):
    """An operation stream: messages at positions 1..n, with checkpoints
    interleaved after a drawn subset of them."""
    n = draw(st.integers(min_value=1, max_value=12))
    ckpt_after = draw(st.sets(st.integers(min_value=1, max_value=n),
                              max_size=4))
    ops = []
    for position in range(1, n + 1):
        ops.append(("msg", position))
        if position in ckpt_after:
            ops.append(("ckpt", position))
    return ops


@given(
    ops=scripts(),
    crash_index=st.integers(min_value=0, max_value=200),
    mode=st.sampled_from(CRASH_MODES),
)
@settings(max_examples=40, deadline=None)
def test_crash_replay_matches_never_crashed_run(ops, crash_index, mode):
    crash_index = min(crash_index, len(ops))

    # Reference: the same stream with no crash, on the in-memory backend.
    reference = MemoryStore(fsync="always")
    ref_group = reference.group("g", page_size=PAGE_SIZE)
    for op in ops:
        _apply(ref_group, op)

    root = tempfile.mkdtemp(prefix="store-crash-")
    try:
        store = JournalStore(root, fsync="always", segment_max_bytes=512)
        group = group_before = store.group("g", page_size=PAGE_SIZE)
        if mode not in ("close", "shear"):
            group.backend.crash_hook = _CrashAt(mode)
        for i, op in enumerate(ops):
            if i == crash_index and mode in ("close", "shear"):
                break
            try:
                _apply(group, op)
            except RuntimeError:
                break
        store.handle_crash()
        if mode == "shear" and crash_index < len(ops):
            # A torn partial frame of the next record on the tail segment.
            directory = group_before.backend.directory
            manifest = os.path.join(directory, "MANIFEST")
            if os.path.exists(manifest):
                with open(manifest, "r", encoding="ascii") as fh:
                    names = [l.strip() for l in fh if l.strip()][1:]
                if names:
                    torn = frame(encode_message(999, b"torn-tail"))[:-3]
                    with open(os.path.join(directory, names[-1]), "ab") as fh:
                        fh.write(torn)

        # Restart: a fresh store on the same directory must load cleanly …
        reborn = JournalStore(root, fsync="always", segment_max_bytes=512)
        group = reborn.group("g", page_size=PAGE_SIZE)
        durable = group.load()
        covered = (durable.checkpoint.position if durable.checkpoint else 0)
        # … and replaying the stream from the durable checkpoint onward —
        # overlapping whatever already survived — must converge on the
        # reference state.
        for op in ops:
            if op[1] > covered:
                _apply(group, op)
        assert _digest(reborn) == _digest(reference)
    finally:
        shutil.rmtree(root, ignore_errors=True)
