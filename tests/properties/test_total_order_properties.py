"""Property-based tests: total order and replica-consistency invariants.

These drive whole simulated rings / deployments from hypothesis-chosen
schedules, checking the invariants the paper's correctness rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.endpoint import Endpoint
from repro.simnet.faults import FaultInjector
from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.totem.config import TotemConfig
from repro.totem.member import TotemMember


def build_ring(node_ids, seed=0):
    scheduler = Scheduler()
    network = Network(scheduler)
    faults = FaultInjector(network, seed=seed)
    delivered = {n: [] for n in node_ids}
    members = {}
    for node_id in node_ids:
        endpoint = Endpoint(Process(scheduler, node_id), network)
        members[node_id] = TotemMember(
            endpoint, TotemConfig(),
            on_deliver=lambda origin, payload, n=node_id:
                delivered[n].append((origin, payload)),
        )
    return scheduler, network, faults, members, delivered


# one schedule entry: (sender index, payload size, inter-send gap in µs)
schedule_entries = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 3000),
              st.integers(0, 2000)),
    min_size=1, max_size=30,
)


@given(schedule_entries, st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_total_order_under_arbitrary_schedules_and_loss(entries, seed):
    """All members deliver identical sequences whatever the send schedule
    and a lossy network."""
    node_ids = ("A", "B", "C")
    scheduler, network, faults, members, delivered = build_ring(node_ids,
                                                                seed)
    scheduler.run_until(0.05)
    faults.set_loss_rate(0.05)
    clock = 0.05
    for index, (sender, size, gap) in enumerate(entries):
        clock += gap * 1e-6
        scheduler.call_at(
            clock,
            lambda s=sender, i=index, z=size:
                members[node_ids[s]].multicast(bytes([i % 256]) * max(1, z)),
        )
    scheduler.run_until(clock + 0.5)
    faults.set_loss_rate(0.0)
    scheduler.run_until(clock + 1.5)
    assert delivered["A"] == delivered["B"] == delivered["C"]
    assert len(delivered["A"]) == len(entries)


@given(st.integers(0, 2), st.integers(1, 20), st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_crash_preserves_prefix_property(victim_index, kill_after, seed):
    """Survivors' delivery sequences remain identical after any crash."""
    node_ids = ("A", "B", "C")
    scheduler, network, faults, members, delivered = build_ring(node_ids,
                                                                seed)
    scheduler.run_until(0.05)
    victim = node_ids[victim_index]
    for i in range(30):
        sender = node_ids[i % 3]
        scheduler.call_at(0.05 + i * 0.001,
                          lambda s=sender, i=i:
                          members[s].multicast(bytes([i])) if
                          network.process(s).alive else None)
    faults.crash_after(0.05 + kill_after * 0.001, victim)
    scheduler.run_until(1.0)
    survivors = [n for n in node_ids if n != victim]
    a, b = (delivered[n] for n in survivors)
    assert a == b
