"""Integration: bounded message logs force early checkpoints (§3.3 ext).

With ``max_log_messages`` set, the primary fabricates a checkpoint
get_state() as soon as the log reaches the bound, independent of the
checkpoint interval — bounding both log memory and failover replay time.
The per-group FTProperties bound wins when set; otherwise the deployment
default ``EternalConfig.max_log_length`` applies (0 disables both).
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant
from repro.core.config import EternalConfig

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


def deploy(max_log_messages, checkpoint_interval=60.0,
           eternal_config=None):
    system = EternalSystem(["m", "c1", "s1", "s2"],
                           eternal_config=eternal_config,
                           keep_trace_records=False)
    system.register_factory(KVSTORE, make_kvstore_factory(1000),
                            nodes=["s1", "s2"])
    store = system.create_group(
        "store", KVSTORE,
        FTProperties(replication_style=ReplicationStyle.WARM_PASSIVE,
                     initial_replicas=2, min_replicas=1,
                     checkpoint_interval=checkpoint_interval,
                     max_log_messages=max_log_messages),
        nodes=["s1", "s2"],
    )
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(iogr),
                            nodes=["c1"])
    system.create_group("drv", DRIVER, FTProperties(initial_replicas=1),
                        nodes=["c1"])
    system.run_for(0.1)
    return system, store


def test_bound_forces_checkpoints_despite_huge_interval():
    system, store = deploy(max_log_messages=100)
    system.run_for(1.0)
    # the 60 s interval alone would give zero checkpoints in 1 s
    assert system.tracer.count("recovery.checkpoint_initiated") >= 3


def test_unbounded_log_grows_without_checkpoints():
    # group bound of 0 falls back to the deployment default, so that has
    # to be switched off too for a truly unbounded log
    system, store = deploy(max_log_messages=0,
                           eternal_config=EternalConfig(max_log_length=0))
    system.run_for(1.0)
    assert system.tracer.count("recovery.checkpoint_initiated") == 0
    backup = [n for n in ("s1", "s2") if n != store.primary_node()][0]
    assert store.binding_on(backup).log.log_length > 500


def test_log_stays_near_bound():
    system, store = deploy(max_log_messages=100)
    system.run_for(1.0)
    primary = store.primary_node()
    log_length = store.binding_on(primary).log.log_length
    # bound plus the traffic of one in-flight checkpoint transfer
    assert log_length < 300


def test_failover_replay_bounded():
    system, store = deploy(max_log_messages=100)
    system.run_for(1.0)
    primary = store.primary_node()
    backup = [n for n in ("s1", "s2") if n != primary][0]
    replay_len = len(
        store.binding_on(backup).log.messages_since_checkpoint()
    )
    assert replay_len < 300


def test_deployment_default_bound_applies_when_group_unset():
    # no per-group bound: EternalConfig.max_log_length kicks in
    system, store = deploy(max_log_messages=0,
                           eternal_config=EternalConfig(max_log_length=100))
    system.run_for(1.0)
    assert system.tracer.count("recovery.checkpoint_initiated") >= 3
    primary = store.primary_node()
    assert store.binding_on(primary).log.log_length < 300


def test_group_bound_overrides_deployment_default():
    # a tight group bound wins over a loose deployment default
    system, store = deploy(max_log_messages=100,
                           eternal_config=EternalConfig(
                               max_log_length=100_000))
    system.run_for(1.0)
    assert system.tracer.count("recovery.checkpoint_initiated") >= 3


def test_invalid_bound_rejected():
    from repro.errors import PropertyError
    with pytest.raises(PropertyError):
        FTProperties(max_log_messages=-1)
    with pytest.raises(ValueError):
        EternalConfig(max_log_length=-1)
