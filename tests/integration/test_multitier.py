"""Integration: a replicated middle tier acting as client *and* server.

"For multi-tiered CORBA applications, the middle-tier plays the roles of
both client and server; replication of the middle-tier objects involves
replicating both the client-side and the server-side code" (paper §4.2.1,
footnote 2).  The relay group below receives invocations from the front
driver and issues its own invocations to the backend — so recovering one
of its replicas must synchronize server-side state (handshake) *and*
client-side state (request_id counters) at once.
"""

import pytest

from repro import EternalSystem, FTProperties
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant
from repro.ftcorba.checkpointable import Checkpointable
from repro.giop.ior import IOR
from repro.giop.messages import ReplyStatus
from repro.orb.servant import operation

BACKEND = "IDL:repro/KvStore:1.0"
RELAY = "IDL:repro/Relay:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


class RelayServant(Checkpointable):
    """Echoes to the caller and forwards every token to the backend."""

    type_id = RELAY

    def __init__(self, backend_ior):
        self._backend_ior = backend_ior
        self.relayed = 0
        self.backend_acks = 0
        self._proxy = None

    def _ensure(self):
        if self._proxy is None:
            self._proxy = self._eternal_container.connect(
                IOR.from_string(self._backend_ior)
            )
        return self._proxy

    @operation
    def echo(self, token):
        self.relayed += 1
        self._ensure().invoke("echo", token, on_reply=self._on_backend_reply)
        return token

    def _on_backend_reply(self, reply):
        if reply.reply_status is ReplyStatus.NO_EXCEPTION:
            self.backend_acks += 1

    def resume(self):
        # re-issue the forwards the state says are outstanding, oldest
        # first; the interceptor suppresses them on the wire
        for token in range(self.backend_acks, self.relayed):
            self._ensure().invoke("echo", token,
                                  on_reply=self._on_backend_reply)

    def get_state(self):
        return {"relayed": self.relayed, "backend_acks": self.backend_acks}

    def set_state(self, state):
        self.relayed = state["relayed"]
        self.backend_acks = state["backend_acks"]


@pytest.fixture
def tiers():
    system = EternalSystem(["m", "front", "r1", "r2", "b1"])
    system.register_factory(BACKEND, make_kvstore_factory(100), nodes=["b1"])
    backend = system.create_group("backend", BACKEND,
                                  FTProperties(initial_replicas=1),
                                  nodes=["b1"])
    system.run_for(0.05)
    backend_ior = backend.iogr().stringify()
    system.register_factory(RELAY, lambda: RelayServant(backend_ior),
                            nodes=["r1", "r2"])
    relay = system.create_group("relay", RELAY,
                                FTProperties(initial_replicas=2,
                                             min_replicas=1),
                                nodes=["r1", "r2"])
    system.run_for(0.05)
    relay_ior = relay.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(relay_ior),
                            nodes=["front"])
    driver = system.create_group("drv", DRIVER,
                                 FTProperties(initial_replicas=1),
                                 nodes=["front"])
    system.run_for(0.3)
    return system, backend, relay, driver


def test_middle_tier_forwards_exactly_once(tiers):
    system, backend, relay, driver = tiers
    front = driver.servant_on("front")
    backend_servant = backend.servant_on("b1")
    r1 = relay.servant_on("r1")
    r2 = relay.servant_on("r2")
    assert front.acked > 100
    # both relay replicas executed every invocation...
    assert r1.relayed == r2.relayed
    # ...but the backend saw each forward exactly once (duplicates from the
    # two relay replicas suppressed)
    assert abs(backend_servant.echo_count - r1.relayed) <= 2


def test_middle_tier_replica_recovery_synchronizes_both_sides(tiers):
    system, backend, relay, driver = tiers
    system.kill_node("r2")
    system.run_for(0.2)
    system.restart_node("r2")
    assert system.wait_for(lambda: relay.is_operational_on("r2"),
                           timeout=5.0)
    system.run_for(0.5)
    r1 = relay.servant_on("r1")
    r2 = relay.servant_on("r2")
    assert r1.relayed == r2.relayed
    assert r1.get_state() == r2.get_state()
    # server side restored: no discarded requests at the recovered ORB
    binding = relay.binding_on("r2")
    assert binding.container.orb.requests_discarded == 0
    # client side restored: the backend never executed duplicates
    backend_servant = backend.servant_on("b1")
    assert abs(backend_servant.echo_count - r1.relayed) <= 2
    front = driver.servant_on("front")
    assert front.acked > 200


def test_backend_sees_consistent_stream_through_relay_failover(tiers):
    system, backend, relay, driver = tiers
    backend_servant = backend.servant_on("b1")
    count_before = backend_servant.echo_count
    system.kill_node("r1")       # permanent loss of one relay replica
    system.run_for(0.5)
    assert backend_servant.echo_count > count_before + 100
    r2 = relay.servant_on("r2")
    assert abs(backend_servant.echo_count - r2.relayed) <= 2
