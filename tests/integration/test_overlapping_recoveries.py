"""Integration: recoveries of DIFFERENT groups interleaving.

The recovery protocol is per-group; transfers for independent groups must
interleave freely on the shared total order without cross-talk (shared
handled-sets, snapshots, or enqueue buffers leaking across groups would
show up here).
"""

import pytest

from repro import EternalSystem, FTProperties
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


def deploy():
    system = EternalSystem(["m", "c1", "c2", "s1", "s2"])
    system.register_factory(KVSTORE, make_kvstore_factory(30_000),
                            nodes=["s1", "s2"])
    alpha = system.create_group("alpha", KVSTORE,
                                FTProperties(initial_replicas=2,
                                             min_replicas=1),
                                nodes=["s1", "s2"])
    beta = system.create_group("beta", KVSTORE,
                               FTProperties(initial_replicas=2,
                                            min_replicas=1),
                               nodes=["s1", "s2"])
    system.run_for(0.05)
    for label, group, client in (("a", alpha, "c1"), ("b", beta, "c2")):
        iogr = group.iogr().stringify()
        type_id = f"IDL:repro/Driver{label}:1.0"
        system.register_factory(
            type_id,
            (lambda i: (lambda: PacketDriverServant(i)))(iogr),
            nodes=[client],
        )
        system.create_group(f"drv-{label}", type_id,
                            FTProperties(initial_replicas=1),
                            nodes=[client])
    system.run_for(0.3)
    return system, alpha, beta


def test_both_groups_recover_concurrently_on_one_node(strict_audit):
    """Killing s2 fails a replica of BOTH groups; both recoveries run on
    the same rebuilt node, interleaved in one total order.

    The online consistency auditor runs in hard-fail mode throughout
    (``strict_audit``): any digest disagreement, duplicate delivery, or
    recovery-window violation across the interleaved transfers fails the
    test at teardown."""
    system, alpha, beta = deploy()
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s2")
    assert system.wait_for(
        lambda: (alpha.is_operational_on("s2")
                 and beta.is_operational_on("s2")),
        timeout=10.0,
    )
    system.run_for(0.3)
    for group in (alpha, beta):
        s1 = group.servant_on("s1")
        s2 = group.servant_on("s2")
        assert s1.echo_count == s2.echo_count
        assert s1.payload == s2.payload
    # the two groups saw different traffic (independent drivers)
    assert alpha.servant_on("s1").echo_count > 100
    assert beta.servant_on("s1").echo_count > 100
    # both overlapping transfers were actually observed by the auditor,
    # and none of them produced a finding
    (auditor,) = strict_audit
    audited_groups = {group for _ring, group, _ in auditor._digests}
    assert {"alpha", "beta"} <= audited_groups
    assert auditor.finish() == []


def test_states_do_not_cross_groups(strict_audit):
    system, alpha, beta = deploy()
    # make the two groups' states distinguishable
    alpha.connect_from("c1").invoke("put", "who", "alpha")
    beta.connect_from("c2").invoke("put", "who", "beta")
    system.run_for(0.1)
    system.kill_node("s2")
    system.run_for(0.1)
    system.restart_node("s2")
    assert system.wait_for(
        lambda: (alpha.is_operational_on("s2")
                 and beta.is_operational_on("s2")),
        timeout=10.0,
    )
    system.run_for(0.2)
    assert alpha.servant_on("s2").get("who") == "alpha"
    assert beta.servant_on("s2").get("who") == "beta"
