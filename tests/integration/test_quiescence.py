"""Integration: quiescence — state capture must wait for in-progress
operations (paper §5).

"The replicated object may be in the middle of another operation ...
Eternal must determine the moment that the object is quiescent, i.e. when
it is 'safe', from the viewpoint of replica consistency, to deliver a new
invocation."
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.ftcorba.checkpointable import Checkpointable
from repro.orb.servant import operation

SLOW = "IDL:repro/SlowObject:1.0"


class SlowObject(Checkpointable):
    """An object whose operation takes 40 ms of simulated execution."""

    type_id = SLOW

    def __init__(self):
        self.completed = 0

    @operation(duration=0.040)
    def work(self, token):
        self.completed += 1
        return token

    def get_state(self):
        return {"completed": self.completed}

    def set_state(self, state):
        self.completed = state["completed"]


def deploy(style=ReplicationStyle.WARM_PASSIVE):
    system = EternalSystem(["m", "c1", "s1", "s2"],
                           keep_trace_records=True)
    system.register_factory(SLOW, SlowObject, nodes=["s1", "s2"])
    group = system.create_group(
        "slow", SLOW,
        FTProperties(replication_style=style, initial_replicas=2,
                     min_replicas=1, checkpoint_interval=0.05),
        nodes=["s1", "s2"],
    )
    system.run_for(0.05)
    return system, group


def test_checkpoint_waits_for_in_progress_operation():
    """A checkpoint GET that lands mid-operation must capture the state
    *after* the operation completes (the GET queues behind it)."""
    system, group = deploy()

    # A one-replica client group supplies the ordered invocation path.
    client_node = "c1"
    system.register_factory("IDL:repro/Nothing:1.0", SlowObject,
                            nodes=[client_node])
    client_group = system.create_group(
        "clientish", "IDL:repro/Nothing:1.0",
        FTProperties(initial_replicas=1), nodes=[client_node],
    )
    system.run_for(0.05)

    binding = client_group.binding_on(client_node)
    proxy = binding.container.connect(group.iogr())
    seen = []
    proxy.invoke("work", 1, on_reply=lambda r: seen.append(1))
    proxy.invoke("work", 2, on_reply=lambda r: seen.append(2))
    # run long enough for several checkpoint cycles + the two operations
    assert system.wait_for(lambda: len(seen) == 2, timeout=5.0)
    system.run_for(0.3)

    # every checkpoint was taken at quiescence: the captured 'completed'
    # counts must be whole operation counts reflected identically at the
    # warm backup (which applies each checkpoint)
    backup = [n for n in ("s1", "s2") if n != group.primary_node()][0]
    primary_servant = group.servant_on(group.primary_node())
    backup_servant = group.servant_on(backup)
    assert primary_servant.completed == 2
    assert backup_servant.completed in (0, 1, 2)
    checkpoint = group.binding_on(backup).log.checkpoint
    assert checkpoint is not None


def test_recovery_get_state_queues_behind_running_operation():
    system, group = deploy(style=ReplicationStyle.ACTIVE)
    system.run_for(0.1)
    # keep s1 busy: enqueue work directly into its container
    from repro.core.identifiers import ConnectionKey
    binding = group.binding_on("s1")
    # Recover s2 while s1 executes a 40 ms operation
    system.kill_node("s2")
    system.run_for(0.1)

    # inject work through the ordered path so BOTH replicas see it:
    client = group.binding_on("s1").container.connect(group.iogr())
    done = []
    client.invoke("work", 9, on_reply=lambda r: done.append(r.result))
    system.restart_node("s2")
    assert system.wait_for(lambda: group.is_operational_on("s2"),
                           timeout=5.0)
    assert system.wait_for(lambda: bool(done), timeout=5.0)
    system.run_for(0.3)
    s1 = group.servant_on("s1")
    s2 = group.servant_on("s2")
    assert s1.completed == s2.completed
    # the recovery trace shows get_state executed (sync point + transfer)
    assert system.tracer.count("recovery.recovered") >= 1
