"""Integration: resource attribution across a kill/recover cycle.

With profiling enabled, every §5.1 recovery step the simulated scenario
exercises must come out of the run with real CPU attributed — the
profile CLI's per-phase table is only useful if the attribution covers
the whole protocol, not just the hot steady-state phases.
"""

import pytest

from repro.bench.deployments import build_client_server, measure_recovery
from repro.ftcorba.properties import ReplicationStyle
from repro.obs.profiling import ProfilingConfig

#: §5.1 steps the kill/recover scenario must attribute (recovery.quiesce
#: and recovery.bulk appear only in specific configurations).
EXPECTED_PHASES = (
    "recovery.total", "recovery.announce", "recovery.capture",
    "recovery.xfer", "recovery.apply", "recovery.assign", "recovery.drain",
)


@pytest.fixture
def profiled_deployment():
    return build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=2_000,
        warmup=0.2,
        profiling=ProfilingConfig(enabled=True, alloc_spans=None),
    )


def test_recovery_phases_attribute_nonzero_cpu(profiled_deployment):
    system = profiled_deployment.system
    measure_recovery(profiled_deployment, "s2")
    system.run_for(0.2)
    phases = system.profiler.phases
    for name in EXPECTED_PHASES:
        assert name in phases, sorted(phases)
        cost = phases[name]
        assert cost.spans >= 1, name
        assert cost.cpu_ns > 0, name
    # The steady-state phases ride along with real CPU and allocations.
    assert phases["totem.rotation"].cpu_ns > 0
    assert phases["rpc.roundtrip"].cpu_ns > 0
    # Allocation probes ran (the *net* delta of any one phase can be
    # negative — frees of older objects land inside later spans — so
    # assert activity, not sign).
    assert any(cost.alloc_blocks != 0 for cost in phases.values())


def test_recovery_phase_cpu_lands_in_metrics_history(profiled_deployment):
    system = profiled_deployment.system
    measure_recovery(profiled_deployment, "s2")
    system.telemetry.sample_now()
    snapshot = system.telemetry.history.snapshot()
    cpu_series = [key for key in snapshot["series"]
                  if key.startswith("profile.cpu_ns{")]
    attributed = {key.split("phase=", 1)[1].rstrip("}")
                  for key in cpu_series}
    for name in EXPECTED_PHASES:
        assert name in attributed, sorted(attributed)


def test_profiling_does_not_change_recovery_outcome(profiled_deployment):
    system = profiled_deployment.system
    recovery_time = measure_recovery(profiled_deployment, "s2")
    assert recovery_time < 1.0
    system.run_for(0.3)
    s1 = profiled_deployment.server_servant("s1")
    s2 = profiled_deployment.server_servant("s2")
    assert s1.get_state() == s2.get_state()
