"""Integration: the exported trace of a mid-invocation kill/recover run.

Kills a server replica while the packet driver is streaming invocations,
recovers it, exports the trace in both formats, and asserts the exported
Chrome trace carries exactly one complete span per §5.1 recovery step
i–vi — nested under one ``recovery.total`` root — with monotonically
ordered timestamps.
"""

import json

import pytest

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle
from repro.obs.report import RECOVERY_PHASES
from repro.obs.spans import SpanTracker

#: §5.1 steps i–vi as span names (quiesce nests inside capture).
STEP_SPANS = [f"recovery.{phase}" for phase in RECOVERY_PHASES]


@pytest.fixture(scope="module")
def recovered_deployment():
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=20_000,
        warmup=0.2,
        keep_trace_records=True,
    )
    system = deployment.system
    driver = deployment.driver
    assert driver.acked > 0           # invocations are in flight
    system.kill_node("s2")
    system.run_for(0.05)
    system.restart_node("s2")
    assert system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=5.0
    )
    system.run_for(0.2)
    return deployment


def test_trace_contains_one_complete_span_per_recovery_step(
        recovered_deployment):
    tracker = SpanTracker.from_tracer(recovered_deployment.system.tracer)
    roots = [s for s in tracker.roots() if s.name == "recovery.total"]
    assert len(roots) == 1
    root = roots[0]
    assert root.complete
    for name in STEP_SPANS:
        spans = [s for s in tracker.named(name) if s.complete]
        assert len(spans) == 1, f"expected one complete {name} span"
    assert tracker.nesting_violations() == []
    assert tracker.orphan_ends == []


def test_exported_chrome_trace_has_ordered_recovery_spans(
        recovered_deployment, tmp_path):
    path = tmp_path / "trace.json"
    written = recovered_deployment.system.export_trace(str(path),
                                                       fmt="chrome")
    assert written > 0
    data = json.loads(path.read_text())
    events = data["traceEvents"]

    complete = {}
    for event in events:
        if event["ph"] == "X" and event["name"].startswith("recovery."):
            complete.setdefault(event["name"], []).append(event)
    for name in STEP_SPANS + ["recovery.total"]:
        assert len(complete.get(name, [])) == 1, \
            f"expected exactly one complete {name} event"

    def window(name):
        event = complete[name][0]
        return event["ts"], event["ts"] + event["dur"]

    # §5.1 protocol order: each step starts no earlier than the previous
    # one, and every step fits inside the root span.
    ordered = ["recovery.announce", "recovery.capture", "recovery.xfer",
               "recovery.apply", "recovery.assign", "recovery.drain"]
    starts = [window(name)[0] for name in ordered]
    assert starts == sorted(starts), starts
    ends = [window(name)[1] for name in ordered]
    assert ends == sorted(ends), ends
    root_start, root_end = window("recovery.total")
    for name in ordered:
        start, end = window(name)
        assert root_start <= start <= end <= root_end, name
    # quiesce nests inside capture
    cap_start, cap_end = window("recovery.capture")
    q_start, q_end = window("recovery.quiesce")
    assert cap_start <= q_start <= q_end <= cap_end


def test_exported_jsonl_round_trips_every_record(recovered_deployment,
                                                 tmp_path):
    system = recovered_deployment.system
    path = tmp_path / "trace.jsonl"
    written = system.export_trace(str(path), fmt="jsonl")
    lines = path.read_text().splitlines()
    assert written == len(lines) == len(system.tracer.records)
    times = [json.loads(line)["ts"] for line in lines]
    assert times == sorted(times)


def test_metrics_registry_saw_every_phase(recovered_deployment):
    metrics = recovered_deployment.system.metrics
    for phase in RECOVERY_PHASES:
        series = metrics.find(f"span.recovery.{phase}")
        assert series, f"no metrics series for phase {phase!r}"
        total = sum(m.count for _, _, m in series)
        assert total == 1, phase
        for _, _, hist in series:
            assert hist.p50 <= hist.p95 <= hist.p99


def test_unknown_export_format_rejected(recovered_deployment, tmp_path):
    with pytest.raises(ValueError):
        recovered_deployment.system.export_trace(
            str(tmp_path / "x"), fmt="pcap")
