"""Integration: a long mixed-fault chaos schedule must converge.

One deployment endures crashes, fast restarts, replica hangs, a partition
with heal, and message loss — interleaved — and at the end every surviving
replica pair must be bit-identical with exactly-once semantics against the
client.  This is the closest single test to the paper's overall claim:
strong replica consistency "as replicas process invocations and responses,
as faults occur, causing replicas to fail, and as it recovers replicas
after a fault" (§8).
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


def deploy():
    system = EternalSystem(["m", "c1", "s1", "s2", "s3"], seed=13)
    nodes = ["s1", "s2", "s3"]
    system.register_factory(KVSTORE, make_kvstore_factory(5_000),
                            nodes=nodes)
    store = system.create_group("store", KVSTORE,
                                FTProperties(initial_replicas=3,
                                             min_replicas=1),
                                nodes=nodes)
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(iogr),
                            nodes=["c1"])
    system.create_group("drv", DRIVER, FTProperties(initial_replicas=1),
                        nodes=["c1"])
    system.run_for(0.2)
    return system, store


def test_mixed_fault_chaos_converges(strict_audit):
    system, store = deploy()
    from repro.core.system import GroupHandle
    driver = GroupHandle(system, "drv").servant_on("c1")

    # --- phase 1: crash + slow restart under 1% loss -------------------
    system.faults.set_loss_rate(0.01)
    system.kill_node("s2")
    system.run_for(0.15)
    system.restart_node("s2")
    assert system.wait_for(lambda: store.is_operational_on("s2"),
                           timeout=15.0)

    # --- phase 2: fast restart (shorter than the token timeout) --------
    system.kill_node("s3")
    system.run_for(0.005)
    system.restart_node("s3")
    assert system.wait_for(lambda: store.is_operational_on("s3"),
                           timeout=15.0)

    # --- phase 3: hang a replica (process stays alive) ------------------
    system.faults.set_loss_rate(0.0)
    system.hang_replica("store", "s1")
    assert system.wait_for(lambda: store.is_operational_on("s1"),
                           timeout=15.0)   # detected, replaced, recovered

    # --- phase 4: partition one replica away, then heal ------------------
    system.faults.partition([{"m", "c1", "s1", "s2"}, {"s3"}])
    system.run_for(0.4)
    system.faults.heal()
    assert system.wait_for(lambda: store.is_operational_on("s3"),
                           timeout=15.0)

    # --- convergence -----------------------------------------------------
    system.run_for(0.5)
    servants = {n: store.servant_on(n) for n in ("s1", "s2", "s3")}
    states = {n: s.get_state() for n, s in servants.items() if s}
    assert len(states) == 3
    reference = states["s1"]
    for node, state in states.items():
        assert state == reference, f"{node} diverged"
    assert 0 <= servants["s1"].echo_count - driver.acked <= 1
    assert driver.acked > 1000        # the stream ran the whole time


def test_chaos_is_deterministic(strict_audit):
    """The entire chaos schedule replays identically (same seed).

    The auditor rides along (``strict_audit``) to prove that observing
    the trace stream never perturbs the schedule."""
    def run():
        system, store = deploy()
        system.kill_node("s2")
        system.run_for(0.1)
        system.restart_node("s2")
        system.wait_for(lambda: store.is_operational_on("s2"), timeout=10.0)
        system.run_for(0.3)
        return (system.scheduler.events_executed,
                store.servant_on("s1").echo_count,
                store.servant_on("s2").echo_count)

    assert run() == run()
