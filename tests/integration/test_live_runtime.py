"""Live-runtime integration: a real 3-node ring on loopback UDP.

The wall-clock counterpart of the simulated kill/recover scenarios: form
a Totem ring over real sockets, replicate a counter under closed-loop
load, SIGKILL-style one replica, re-launch it, and require the §5.1
recovery to reinstate it — with a consistency-auditor-clean trace —
inside a wall-clock deadline.  Timeouts are generous (shared CI boxes);
a healthy run recovers in well under a second.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.counter import CounterServant
from repro.ftcorba.properties import FTProperties
from repro.live.loadgen import DRIVER_TYPE, make_driver_factory
from repro.live.system import LiveSystem

pytestmark = pytest.mark.live

NODES = ["n1", "n2", "n3"]


async def _kill_recover_scenario():
    system = LiveSystem(NODES)
    auditor = system.attach_auditor()
    try:
        assert await system.wait_for(system.ring_formed, timeout=15.0), \
            "Totem ring did not form on loopback UDP"

        server_nodes = ["n2", "n3"]
        system.register_factory(CounterServant.type_id, CounterServant,
                                nodes=server_nodes)
        group = system.create_group(
            "counter", CounterServant.type_id,
            FTProperties(initial_replicas=2, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=server_nodes,
        )
        assert await system.wait_for(
            lambda: all(group.is_operational_on(n) for n in server_nodes),
            timeout=15.0), "counter group never became operational"

        iogr = group.iogr().stringify()
        system.register_factory(
            DRIVER_TYPE, make_driver_factory(iogr, "increment"),
            nodes=["n1"])
        driver_group = system.create_group(
            "driver", DRIVER_TYPE,
            FTProperties(initial_replicas=1, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=["n1"],
        )
        assert await system.wait_for(
            lambda: driver_group.is_operational_on("n1"), timeout=15.0)
        driver = driver_group.servant_on("n1")
        assert await system.wait_for(lambda: driver.acked >= 10,
                                     timeout=15.0), "no load flowing"

        # SIGKILL-style: socket closed, volatile state gone.
        system.kill_node("n3")
        await system.run_for(0.3)
        relaunched_at = system.now
        system.restart_node("n3")
        assert await system.wait_for(
            lambda: group.is_operational_on("n3"), timeout=30.0), \
            "killed replica was not reinstated within the wall-clock budget"
        recovery_wall = system.now - relaunched_at

        # Service keeps making progress after the recovery …
        acked = driver.acked
        assert await system.wait_for(lambda: driver.acked > acked,
                                     timeout=10.0)
        # … and the recovered replica converges to the survivor's state
        # (the closed-loop driver keeps one request in flight, so the
        # replicas equalize between deliveries).
        assert await system.wait_for(
            lambda: (group.servant_on("n2").value
                     == group.servant_on("n3").value), timeout=10.0), \
            "recovered replica never converged with the survivor"
        return recovery_wall, auditor
    finally:
        system.close()


async def _durable_restart_scenario(store_dir):
    """Kill/re-launch with ``store_dir`` set: the relaunched node must come
    back through its on-disk journal (store restore, not a state-less
    rejoin), and the journal must actually exist on disk."""
    system = LiveSystem(NODES, store_dir=store_dir)
    auditor = system.attach_auditor()
    try:
        assert await system.wait_for(system.ring_formed, timeout=15.0)
        server_nodes = ["n2", "n3"]
        system.register_factory(CounterServant.type_id, CounterServant,
                                nodes=server_nodes)
        group = system.create_group(
            "counter", CounterServant.type_id,
            FTProperties(initial_replicas=2, min_replicas=1,
                         fault_monitoring_interval=0.5,
                         checkpoint_interval=0.2),
            nodes=server_nodes,
        )
        assert await system.wait_for(
            lambda: all(group.is_operational_on(n) for n in server_nodes),
            timeout=15.0)
        iogr = group.iogr().stringify()
        system.register_factory(
            DRIVER_TYPE, make_driver_factory(iogr, "increment"),
            nodes=["n1"])
        driver_group = system.create_group(
            "driver", DRIVER_TYPE,
            FTProperties(initial_replicas=1, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=["n1"],
        )
        assert await system.wait_for(
            lambda: driver_group.is_operational_on("n1"), timeout=15.0)
        driver = driver_group.servant_on("n1")
        assert await system.wait_for(lambda: driver.acked >= 10,
                                     timeout=15.0)
        # Let at least one periodic checkpoint land in the journals.
        await system.run_for(0.5)

        system.kill_node("n3")
        await system.run_for(0.3)
        restored_before = system.tracer.counters.get("store.restored", 0)
        system.restart_node("n3")
        assert await system.wait_for(
            lambda: group.is_operational_on("n3"), timeout=30.0)
        assert (system.tracer.counters.get("store.restored", 0)
                > restored_before), \
            "relaunched node rejoined without restoring from its journal"
        acked = driver.acked
        assert await system.wait_for(lambda: driver.acked > acked,
                                     timeout=10.0)
        assert await system.wait_for(
            lambda: (group.servant_on("n2").value
                     == group.servant_on("n3").value), timeout=10.0)
        return auditor
    finally:
        system.close()


def test_kill_and_recover_with_durable_store(tmp_path):
    import os

    auditor = asyncio.run(_durable_restart_scenario(str(tmp_path)))
    auditor.finish(raise_on_findings=True)
    journals = [
        os.path.join(root, name)
        for root, _dirs, names in os.walk(tmp_path)
        for name in names if name.endswith(".jrnl")
    ]
    assert journals, "no journal segments written under --store-dir"


def test_three_node_ring_kill_and_recover_clean_audit():
    recovery_wall, auditor = asyncio.run(_kill_recover_scenario())
    # Wall-clock budget: generous for CI, tight enough to catch a hang
    # masquerading as recovery via retries.
    assert recovery_wall < 10.0
    # The §5.1 invariants must hold on real time exactly as simulated.
    auditor.finish(raise_on_findings=True)
    assert auditor.records_scanned > 0
