"""Integration: partitioned operation and remerge (paper §2: "sustain
operation in all components of a partitioned system").

Our remerge follows primary-component semantics: the side with more ring
members keeps the canonical history; when the partition heals, nodes from
the other side rejoin and the Replication Manager re-adds their replicas,
which re-synchronize through the normal recovery protocol.
"""

import pytest

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle


def test_majority_side_keeps_serving_through_partition(strict_audit):
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=100,
                                     warmup=0.2)
    system = deployment.system
    driver = deployment.driver
    # isolate s2; the manager, client, and s1 stay connected
    system.faults.partition([{"m", "c1", "s1"}, {"s2"}])
    before = driver.acked
    system.run_for(0.5)
    assert driver.acked > before + 100


def test_isolated_replica_dropped_from_group(strict_audit):
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=100,
                                     warmup=0.2)
    system = deployment.system
    system.faults.partition([{"m", "c1", "s1"}, {"s2"}])
    system.run_for(0.5)
    info = system.mechanisms("m").groups["store"]
    assert "s2" not in info.roles


def test_heal_remerges_and_resynchronizes(strict_audit):
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=100,
                                     warmup=0.2)
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    system.faults.partition([{"m", "c1", "s1"}, {"s2"}])
    system.run_for(0.5)
    system.faults.heal()
    # the rings merge and the manager re-places the replica on s2, which
    # recovers via the standard state transfer
    assert system.wait_for(lambda: group.is_operational_on("s2"),
                           timeout=10.0)
    system.run_for(0.3)
    s1 = group.servant_on("s1")
    s2 = group.servant_on("s2")
    assert s1.echo_count == s2.echo_count
    assert abs(s1.echo_count - driver.acked) <= 1


def test_partitioned_primary_failover_in_majority(strict_audit):
    """Partition away the warm-passive primary: the majority side promotes
    its backup and continues."""
    deployment = build_client_server(style=ReplicationStyle.WARM_PASSIVE,
                                     server_replicas=2, state_size=100,
                                     checkpoint_interval=0.1, warmup=0.3)
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    primary = group.primary_node()
    backup = [n for n in deployment.server_nodes if n != primary][0]
    others = {"m", "c1", backup}
    system.faults.partition([others, {primary}])
    before = driver.acked
    assert system.wait_for(lambda: driver.acked > before + 50, timeout=5.0)
    info = system.mechanisms("m").groups["store"]
    assert info.primary_node == backup
