"""Integration: oneway invocations through the replicated stack.

"The use of oneways, CORBA-supported invocations that do not return
responses, introduces additional complications" (paper §5).  Oneways still
need total ordering and duplicate suppression; they produce no replies, so
reply-side machinery must stay quiet.
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.kvstore import make_kvstore_factory
from repro.ftcorba.checkpointable import Checkpointable
from repro.giop.ior import IOR
from repro.orb.servant import operation

KVSTORE = "IDL:repro/KvStore:1.0"
NOTIFIER = "IDL:repro/Notifier:1.0"


class OnewayNotifier(Checkpointable):
    """Fires a burst of oneway notifications at the store."""

    type_id = NOTIFIER

    def __init__(self, target_ior, burst=50):
        self._target_ior = target_ior
        self._burst = burst
        self.fired = 0

    def start(self):
        proxy = self._eternal_container.connect(
            IOR.from_string(self._target_ior)
        )
        for index in range(self._burst):
            proxy.oneway("put", f"key-{index}", index)
            self.fired += 1

    def get_state(self):
        return {"fired": self.fired}

    def set_state(self, state):
        self.fired = state["fired"]


def deploy(client_replicas=1):
    system = EternalSystem(
        ["m"] + [f"c{i+1}" for i in range(client_replicas)] + ["s1", "s2"]
    )
    system.register_factory(KVSTORE, make_kvstore_factory(10),
                            nodes=["s1", "s2"])
    store = system.create_group("store", KVSTORE,
                                FTProperties(initial_replicas=2),
                                nodes=["s1", "s2"])
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    clients = [f"c{i+1}" for i in range(client_replicas)]
    system.register_factory(NOTIFIER, lambda: OnewayNotifier(iogr),
                            nodes=clients)
    notifier = system.create_group("notifier", NOTIFIER,
                                   FTProperties(
                                       initial_replicas=client_replicas,
                                       min_replicas=1),
                                   nodes=clients)
    system.run_for(0.3)
    return system, store, notifier


def test_oneways_executed_on_all_active_replicas_in_order():
    system, store, notifier = deploy()
    for node in ("s1", "s2"):
        servant = store.servant_on(node)
        assert servant.size() == 50
        assert servant.get("key-49") == 49


def test_oneways_produce_no_replies():
    system, store, notifier = deploy()
    assert system.tracer.counters.get("interceptor.reply", 0) == 0


def test_oneways_from_replicated_client_deduplicated():
    system, store, notifier = deploy(client_replicas=2)
    for node in ("s1", "s2"):
        servant = store.servant_on(node)
        # 50 keys, not 100: the two client replicas' copies collapsed
        assert servant.size() == 50


def test_oneway_sender_stays_quiescent():
    system, store, notifier = deploy()
    binding = notifier.binding_on("c1")
    system.run_for(0.1)
    # no outstanding replies expected: the client is quiescent after firing
    assert binding.container.quiescence.is_quiescent()
    assert binding.infra.awaiting == {}
