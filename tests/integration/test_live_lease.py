"""Live (loopback-UDP) leader-lease test: kill the leaseholder mid-stream.

The wall-clock counterpart of the simulated lease tests: a real 3-node
ring, a read-heavy kvstore mix with the read fast path enabled, then a
SIGKILL of the node holding the read lease.  The stream must keep
flowing — stranded fast reads fall back to the total order, the ring
reforms, and the surviving replica takes over the lease — and the
consistency auditor (which shadows the lease-window rule) must stay
clean throughout.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.kvstore import make_kvstore_factory
from repro.core.config import EternalConfig
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.live.loadgen import ReadMixDriver
from repro.live.system import LiveSystem

pytestmark = pytest.mark.live

KVSTORE_TYPE = "IDL:repro/KvStore:1.0"
DRIVER_TYPE = "IDL:repro/ClosedLoopDriver:1.0"
NODES = ["n1", "n2", "n3"]


async def _kill_leaseholder_scenario():
    system = LiveSystem(
        NODES, eternal_config=EternalConfig(read_lease=True))
    auditor = system.attach_auditor()
    try:
        assert await system.wait_for(system.ring_formed, timeout=15.0), \
            "Totem ring did not form on loopback UDP"
        server_nodes = ["n2", "n3"]
        system.register_factory(KVSTORE_TYPE, make_kvstore_factory(200),
                                nodes=server_nodes)
        group = system.create_group(
            "store", KVSTORE_TYPE,
            FTProperties(replication_style=ReplicationStyle.ACTIVE,
                         initial_replicas=2, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=server_nodes)
        assert await system.wait_for(
            lambda: all(group.is_operational_on(n) for n in server_nodes),
            timeout=15.0)
        iogr = group.iogr().stringify()
        system.register_factory(DRIVER_TYPE,
                                lambda: ReadMixDriver(iogr), nodes=["n1"])
        driver_group = system.create_group(
            "driver", DRIVER_TYPE,
            FTProperties(replication_style=ReplicationStyle.ACTIVE,
                         initial_replicas=1, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=["n1"])
        assert await system.wait_for(
            lambda: driver_group.is_operational_on("n1"), timeout=15.0)
        driver = driver_group.servant_on("n1")
        t = system.tracer

        # The fast path is live: reads are being served point-to-point.
        assert await system.wait_for(
            lambda: t.count("lease.read_served") >= 50, timeout=15.0), \
            "read fast path never engaged"
        assert driver.reads_acked > 0

        # SIGKILL the leaseholder (the lowest executing ring member).
        before = driver.acked
        system.kill_node("n2")
        assert await system.wait_for(
            lambda: driver.acked > before + 100, timeout=20.0), \
            "read stream stalled after the leaseholder was killed"
        # The survivor holds the lease now and serves reads again.
        served = t.count("lease.read_served")
        assert await system.wait_for(
            lambda: t.count("lease.read_served") > served, timeout=15.0), \
            "fast path never resumed on the surviving replica"
        return auditor
    finally:
        system.close()


def test_live_kill_the_leaseholder_stream_continues_audit_clean():
    auditor = asyncio.run(_kill_leaseholder_scenario())
    auditor.finish(raise_on_findings=True)
