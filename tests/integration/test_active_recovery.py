"""Integration: recovery of an actively replicated server (paper §3.1, §5).

These tests reproduce the paper's headline experiment qualitatively: kill a
server replica under a constant invocation stream, re-launch it, and verify
the §5.1 protocol reinstates it with all three kinds of state synchronized.
"""

import pytest

from repro.bench.deployments import build_client_server, measure_recovery
from repro.ftcorba.properties import ReplicationStyle


@pytest.fixture
def deployment():
    return build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=2_000,
        warmup=0.2,
        keep_trace_records=True,
    )


def test_failure_is_masked_by_surviving_replica(deployment):
    system = deployment.system
    driver = deployment.driver
    system.kill_node("s2")
    before = driver.acked
    system.run_for(0.3)
    assert driver.acked > before + 100    # service continued


def test_recovered_replica_rejoins_and_stays_consistent(deployment):
    system = deployment.system
    recovery_time = measure_recovery(deployment, "s2")
    assert recovery_time < 1.0
    system.run_for(0.3)
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    assert s1.echo_count == s2.echo_count
    assert s1.payload == s2.payload
    assert s1.get_state() == s2.get_state()


def test_recovery_is_concurrent_with_normal_operation(deployment):
    """'the recovery of failed replicas is concurrent with the normal
    operation of existing replicas' (paper §8)."""
    system = deployment.system
    driver = deployment.driver
    system.kill_node("s2")
    system.run_for(0.2)
    before = driver.acked
    system.restart_node("s2")
    assert system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=5.0
    )
    # the client never stopped during the state transfer
    assert driver.acked > before


def test_protocol_event_order_follows_fig5(deployment):
    """§5.1 steps: join → sync point (get_state marker) → fabricated
    set_state multicast → state assignment → recovered."""
    system = deployment.system
    system.kill_node("s2")
    system.run_for(0.1)
    mark = len(system.tracer.records)
    system.restart_node("s2")
    assert system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=5.0
    )
    events = [r for r in system.tracer.records[mark:]
              if r.category == "recovery"]
    names = [r.event for r in events]
    for expected in ("join_announced", "sync_point", "set_state_multicast",
                     "recovery_set_received", "recovered"):
        assert expected in names, names
    assert names.index("join_announced") < names.index("sync_point")
    assert names.index("sync_point") < names.index("set_state_multicast")
    assert (names.index("set_state_multicast")
            < names.index("recovery_set_received"))
    assert names.index("recovery_set_received") < names.index("recovered")


def test_orb_level_state_transferred(deployment):
    """The recovered node's interceptor carries the request_id offset and
    the server connection knows the negotiated short keys (§4.2)."""
    system = deployment.system
    measure_recovery(deployment, "s2")
    binding = deployment.server_group.binding_on("s2")
    conn_id = "driver->store"
    server_conn = binding.container.orb.server_connection(conn_id)
    assert server_conn.short_keys          # handshake replayed
    system.run_for(0.3)
    assert binding.container.orb.requests_discarded == 0


def test_infrastructure_state_prevents_duplicates(deployment):
    system = deployment.system
    measure_recovery(deployment, "s2")
    system.run_for(0.5)
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    driver = deployment.driver
    # exactly-once execution on both replicas
    assert s1.echo_count == s2.echo_count
    assert abs(s1.echo_count - driver.acked) <= 1


def test_double_fault_and_double_recovery(deployment):
    system = deployment.system
    measure_recovery(deployment, "s2")
    system.run_for(0.2)
    recovery_time = measure_recovery(deployment, "s1")
    assert recovery_time < 1.0
    system.run_for(0.3)
    assert (deployment.server_servant("s1").echo_count
            == deployment.server_servant("s2").echo_count)


def test_recovery_of_both_replicas_in_turn_preserves_state(deployment):
    system = deployment.system
    payload_before = deployment.server_servant("s1").payload
    measure_recovery(deployment, "s2")
    measure_recovery(deployment, "s1")
    system.run_for(0.2)
    assert deployment.server_servant("s1").payload == payload_before
    assert deployment.server_servant("s2").payload == payload_before
