"""Integration: every example script runs to completion successfully.

The examples are the library's front door; each asserts its own outcome
internally, so importing and running ``main()`` both smoke-tests the
public API and keeps the examples from rotting.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def test_example_inventory_complete():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "bank_failover.py",
        "packet_driver_demo.py",
        "evolution_upgrade.py",
        "partition_demo.py",
        "recovery_timeline.py",
        "auction_bidding_war.py",
    }


@pytest.mark.parametrize("name", [n for n in EXAMPLES
                                  if n != "packet_driver_demo.py"])
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert "OK" in out or "consistent" in out or "recovered" in out


def test_packet_driver_demo_runs(capsys):
    # the Figure-6 sweep is the slowest example; keep it last and separate
    run_example("packet_driver_demo.py")
    out = capsys.readouterr().out
    assert "350,000" in out
    assert "Figure 6" in out
