"""Cross-ring gateway bridging: exactly-once under replay and failover.

A driver group on ring ``r0`` invokes a kvstore group placed on ring
``r1``.  Requests leave ``r0``'s total order with no local binding, the
elected gateway node hands them to the shared :class:`GatewayBridge`,
and the bridge re-multicasts them into ``r1`` — suppressing duplicates
on the interceptor's own operation ids.  Replies bridge back the same
way.  These tests replay bridged envelopes (same operation id) through
every layer that could double-deliver and assert the target servant
executed each invocation exactly once.
"""

import dataclasses

import pytest

from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant
from repro.bench.deployments import DRIVER_TYPE, KVSTORE_TYPE
from repro.core.identifiers import OpKind
from repro.ftcorba.properties import FTProperties
from repro.simnet.sharded import ShardedEternalSystem

ECHOES = 20


def _cross_ring_run(captured=None):
    """Two rings; a driver on r0 streams ECHOES echoes into a 2-replica
    store on r1.  Returns (system, store) once the stream completes."""
    system = ShardedEternalSystem(rings=2, node_template=("m", "c", "s1", "s2"))
    if captured is not None:
        inner = system.bridge.forward
        def spy(source, target, envelope):
            captured.append((source, target, envelope))
            inner(source, target, envelope)
        system.bridge.forward = spy
    system.register_factory(KVSTORE_TYPE, make_kvstore_factory(10))
    assert system.wait_for(system.ring_formed, timeout=5.0)
    store = system.create_group("store", KVSTORE_TYPE,
                                FTProperties(initial_replicas=2),
                                nodes=["r1.s1", "r1.s2"])
    system.run_for(0.1)
    iogr = store.iogr().stringify()
    system.register_factory(
        DRIVER_TYPE,
        lambda: PacketDriverServant(iogr, max_invocations=ECHOES),
        ring="r0")
    driver = system.create_group("drv", DRIVER_TYPE,
                                 FTProperties(initial_replicas=1),
                                 nodes=["r0.c"])
    assert system.wait_for(
        lambda: (driver.servant_on("r0.c") is not None
                 and driver.servant_on("r0.c").acked == ECHOES),
        timeout=10.0), "cross-ring stream never completed"
    return system, store


def test_cross_ring_invocations_execute_exactly_once():
    system, store = _cross_ring_run()
    # Both replicas of the target group executed each echo exactly once.
    assert store.servant_on("r1.s1").echo_count == ECHOES
    assert store.servant_on("r1.s2").echo_count == ECHOES
    # One forward per request plus one per reply; the second replica's
    # identical reply envelope is suppressed at the bridge.
    assert system.bridge.forwarded == 2 * ECHOES
    assert system.bridge.duplicates == ECHOES
    # Placement agrees with where the groups actually run.
    assert system.resolve_ring("store") == "r1"
    assert system.resolve_ring("drv") == "r0"


def test_replayed_envelope_is_suppressed_at_the_bridge():
    """A gateway failover re-forwarding an already-bridged envelope
    (same operation id) must not reach the target ring again."""
    captured = []
    system, store = _cross_ring_run(captured=captured)
    requests = [(s, t, e) for s, t, e in captured
                if e.kind is OpKind.REQUEST]
    assert len(requests) == ECHOES
    source, target, envelope = requests[0]

    before_fwd = system.bridge.forwarded
    system.bridge.forward(source, target, envelope)
    assert system.bridge.forwarded == before_fwd, \
        "replayed envelope was re-injected into the target ring"
    system.run_for(0.3)
    assert store.servant_on("r1.s1").echo_count == ECHOES
    assert store.servant_on("r1.s2").echo_count == ECHOES


def test_replay_past_the_bridge_is_dropped_by_replica_filters():
    """Exactly-once is enforced twice: wipe the bridge's filters (as a
    bridge restart would) and replay — the envelope *is* re-multicast
    into the target ring, and the replicas' own duplicate filters must
    drop it before the servant runs."""
    captured = []
    system, store = _cross_ring_run(captured=captured)
    source, target, envelope = next(
        (s, t, e) for s, t, e in captured if e.kind is OpKind.REQUEST)

    system.bridge._filters.clear()
    before_fwd = system.bridge.forwarded
    system.bridge.forward(source, target, envelope)
    assert system.bridge.forwarded == before_fwd + 1, \
        "wiped bridge should have forwarded the replay"
    system.run_for(0.3)
    assert store.servant_on("r1.s1").echo_count == ECHOES
    assert store.servant_on("r1.s2").echo_count == ECHOES


def test_dead_target_ring_does_not_poison_the_filter():
    """With no live member to inject through, the bridge drops the
    envelope *without* recording its operation id — a retransmission
    after the ring recovers must still go through."""
    captured = []
    system, store = _cross_ring_run(captured=captured)
    source, target, envelope = next(
        (s, t, e) for s, t, e in captured if e.kind is OpKind.REQUEST)
    # A fresh operation id the bridge has never seen.
    fresh = dataclasses.replace(envelope,
                                request_id=envelope.request_id + 1000)

    for node in ("r1.m", "r1.c", "r1.s1", "r1.s2"):
        system.kill_node(node)
    before_fwd = system.bridge.forwarded
    before_dup = system.bridge.duplicates
    system.bridge.forward(source, target, fresh)
    assert system.bridge.forwarded == before_fwd
    assert system.bridge.duplicates == before_dup

    for node in ("r1.m", "r1.c", "r1.s1", "r1.s2"):
        system.restart_node(node)
    system.run_for(0.5)
    system.bridge.forward(source, target, fresh)
    assert system.bridge.forwarded == before_fwd + 1, \
        "retransmission after ring recovery was treated as a duplicate"


def test_groups_cannot_span_rings():
    system = ShardedEternalSystem(rings=2, node_template=("m", "s1"))
    system.register_factory(KVSTORE_TYPE, make_kvstore_factory(10))
    assert system.wait_for(system.ring_formed, timeout=5.0)
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        system.create_group("split", KVSTORE_TYPE,
                            FTProperties(initial_replicas=2),
                            nodes=["r0.s1", "r1.s1"])
