"""Integration: the out-of-band bulk lane under faults (recovery §5.1).

Large-state recovery ships checkpoint pages over the point-to-point bulk
lane while the totally ordered ``set_state`` carries only a page manifest.
These tests exercise the degraded modes end to end on the simulator:

* a sponsor dies mid-stripe and the target restripes onto survivors,
* every bulk frame is dropped on the floor and the target falls back to
  the paper's in-order full transfer (re-announce without ``bulk_ok``),
* small states and ``bulk_lane=False`` never engage the lane at all.

All fault scenarios run under ``strict_audit`` so the post-recovery
state digests are checked against the survivors.
"""

import pytest

from repro.bench.deployments import build_client_server, measure_recovery
from repro.core.config import EternalConfig
from repro.ftcorba.properties import ReplicationStyle
from repro.totem.wire import BulkFetch, BulkNack, BulkPage

LARGE = 256 * 1024          # well above bulk_min_bytes


def deploy(*, state_size=LARGE, server_replicas=4, eternal_config=None):
    return build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=server_replicas,
        state_size=state_size,
        checkpoint_interval=0.5,
        eternal_config=eternal_config,
        warmup=0.2,
    )


def counters(deployment):
    return deployment.system.tracer.counters


def test_large_state_recovery_uses_bulk_lane(strict_audit):
    dep = deploy()
    measure_recovery(dep, "s1")
    c = counters(dep)
    assert c.get("bulk.manifest_sent", 0) >= 1
    assert c.get("bulk.session_complete", 0) == 1
    assert c.get("net.oob_unicast", 0) > 0
    dep.system.run_for(0.3)
    assert (dep.server_servant("s1").get_state()
            == dep.server_servant("s2").get_state())


def test_sponsor_death_mid_stripe_restripes_to_survivors(strict_audit):
    # A tight retransmit budget makes the bulk watchdog outrace the fault
    # detector: the dead sponsor is dropped from the session and its pages
    # restriped long before the membership change propagates.
    dep = deploy(eternal_config=EternalConfig(
        bulk_retransmit_timeout=0.01, bulk_max_retries=1))
    system = dep.system
    system.kill_node("s1")
    system.run_for(0.05)
    system.restart_node("s1")
    assert system.wait_for(
        lambda: counters(dep).get("bulk.session_start", 0) > 0, timeout=5.0)
    system.kill_node("s2")                  # a sponsor, mid-stripe
    assert system.wait_for(
        lambda: dep.server_group.is_operational_on("s1"), timeout=10.0)
    c = counters(dep)
    assert c.get("bulk.sponsor_dropped", 0) >= 1
    assert c.get("bulk.restripe", 0) >= 1
    assert c.get("bulk.session_complete", 0) >= 1
    system.run_for(0.3)
    assert (dep.server_servant("s1").get_state()
            == dep.server_servant("s3").get_state())


def test_all_bulk_frames_dropped_falls_back_to_inorder(strict_audit):
    dep = deploy(eternal_config=EternalConfig(
        bulk_retransmit_timeout=0.01, bulk_max_retries=1))
    dep.system.network.add_filter(
        lambda src, dst, payload, size: isinstance(
            payload, (BulkFetch, BulkPage, BulkNack)))
    recovery_time = measure_recovery(dep, "s1")
    assert recovery_time < 5.0
    c = counters(dep)
    assert c.get("bulk.session_failed", 0) >= 1
    assert c.get("recovery.bulk_fallback_reannounce", 0) >= 1
    assert c.get("bulk.session_complete", 0) == 0
    dep.system.run_for(0.3)
    assert (dep.server_servant("s1").get_state()
            == dep.server_servant("s2").get_state())


def test_small_state_stays_in_order():
    dep = deploy(state_size=2_000, server_replicas=2)
    measure_recovery(dep, "s1")
    c = counters(dep)
    assert c.get("bulk.session_start", 0) == 0
    assert c.get("bulk.manifest_sent", 0) == 0


def test_bulk_lane_disabled_by_config():
    dep = deploy(eternal_config=EternalConfig(bulk_lane=False))
    recovery_time = measure_recovery(dep, "s1")
    assert recovery_time < 1.0
    assert counters(dep).get("bulk.manifest_sent", 0) == 0
