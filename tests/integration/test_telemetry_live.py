"""Live telemetry acceptance: a real 3-node ring on loopback UDP with the
full telemetry plane on.

The observability counterpart of ``test_live_runtime``: replicate a
counter under closed-loop load, serve ``/metrics/history`` over real
HTTP, kill a replica and require (a) the killed node's flight recorder to
have dumped its recent past to disk at the moment of the crash, (b) the
sampled metrics history to hold actual time series, and (c) the per-node
flight dumps to stitch back into cross-node invocation timelines.
"""

from __future__ import annotations

import asyncio
import glob
import json

import pytest

from repro.apps.counter import CounterServant
from repro.ftcorba.properties import FTProperties
from repro.live.health_http import start_health_server
from repro.live.loadgen import DRIVER_TYPE, make_driver_factory
from repro.live.system import LiveSystem
from repro.obs.report import (
    load_trace_jsonl,
    stitch_invocations,
    stitch_jsonl_streams,
)
from repro.obs.telemetry import TelemetryConfig

pytestmark = pytest.mark.live

NODES = ["n1", "n2", "n3"]


async def _fetch(port: int, path: str) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"200" in head.split(b"\r\n", 1)[0], head
    return body


async def _telemetry_scenario(flight_dir: str):
    # Full wire fidelity (no exclusions) so the stitched timelines carry
    # the per-node ring_deliver stage too.
    system = LiveSystem(NODES, telemetry=TelemetryConfig(
        flight_dir=flight_dir, sample_interval=0.1, flight_exclude=()))
    auditor = system.attach_auditor()
    health_server = None
    try:
        assert await system.wait_for(system.ring_formed, timeout=15.0), \
            "Totem ring did not form on loopback UDP"
        health_server, port = await start_health_server(system, 0)

        server_nodes = ["n2", "n3"]
        system.register_factory(CounterServant.type_id, CounterServant,
                                nodes=server_nodes)
        group = system.create_group(
            "counter", CounterServant.type_id,
            FTProperties(initial_replicas=2, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=server_nodes,
        )
        assert await system.wait_for(
            lambda: all(group.is_operational_on(n) for n in server_nodes),
            timeout=15.0), "counter group never became operational"

        iogr = group.iogr().stringify()
        system.register_factory(
            DRIVER_TYPE, make_driver_factory(iogr, "increment"),
            nodes=["n1"])
        driver_group = system.create_group(
            "driver", DRIVER_TYPE,
            FTProperties(initial_replicas=1, min_replicas=1,
                         fault_monitoring_interval=0.5),
            nodes=["n1"],
        )
        assert await system.wait_for(
            lambda: driver_group.is_operational_on("n1"), timeout=15.0)
        driver = driver_group.servant_on("n1")
        assert await system.wait_for(lambda: driver.acked >= 20,
                                     timeout=15.0), "no load flowing"
        # Let the 0.1 s sampler tick a few times under load.
        await system.run_for(0.5)

        # -- (b) the history endpoint serves real sampled series --------
        body = await _fetch(port, "/metrics/history")
        history = json.loads(body)
        series = history["series"]
        named = {key.split("{", 1)[0] for key in series}
        assert {"totem.send_queue_depth",
                "eternal.outstanding_invocations"} <= named
        depths = [slot for key, slot in series.items()
                  if key.startswith("totem.send_queue_depth")]
        assert depths and all(len(s["points"]) >= 2 for s in depths), \
            "sampler produced fewer than 2 points per queue-depth series"
        assert all(s["kind"] == "gauge" for s in depths)

        # -- (a) killing a node dumps its flight ring at crash time -----
        system.kill_node("n3")
        await system.run_for(0.3)
        crash_dumps = glob.glob(f"{flight_dir}/flight-n3-*-crash.jsonl")
        assert crash_dumps, "killed node left no flight dump on disk"
        records = load_trace_jsonl(crash_dumps[0])
        assert records, "crash dump is empty"
        assert ("fault", "crash") in {(r.category, r.event)
                                      for r in records}
        assert any(r.category == "replication" for r in records), \
            "crash dump carries no causal context from before the kill"

        # -- (c) per-node dumps stitch into cross-node timelines --------
        system.telemetry.flight.dump_all("shutdown")
        return auditor
    finally:
        if health_server is not None:
            health_server.close()
        system.close()


def test_live_flight_dump_history_and_stitched_timelines(tmp_path):
    flight_dir = str(tmp_path)
    auditor = asyncio.run(_telemetry_scenario(flight_dir))
    auditor.finish(raise_on_findings=True)

    merged = stitch_jsonl_streams(sorted(glob.glob(f"{flight_dir}/*.jsonl")))
    timelines = stitch_invocations(merged)
    assert timelines, "no invocation trace ids survived into the dumps"
    complete = [t for t in timelines
                if t.total is not None and len(t.nodes) >= 2]
    assert complete, "no complete cross-node invocation could be stitched"
    sample = complete[len(complete) // 2]
    stages = {e.stage for e in sample.events}
    assert {"client_send", "ring_deliver", "execute",
            "client_done"} <= stages
    # The invocation demonstrably crossed the wire: client stages at the
    # driver node, execution at a replica node.
    client_nodes = {e.node for e in sample.events
                    if e.stage == "client_send"}
    exec_nodes = {e.node for e in sample.events if e.stage == "execute"}
    assert client_nodes == {"n1"} and exec_nodes <= {"n2", "n3"}
    assert exec_nodes, "no execute stage attributed to a replica"
