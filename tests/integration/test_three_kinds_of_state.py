"""Integration: the paper's three kinds of state, inspected on the wire.

§4 of the paper defines recovery as the synchronized transfer of
application-level, ORB/POA-level, and infrastructure-level state.  These
tests capture an actual fabricated ``set_state()`` envelope off the
multicast stream and verify each piggybacked blob carries exactly what the
paper says it must.
"""

import pytest

from repro.bench.deployments import build_client_server
from repro.core.envelope import StateSet, TransferPurpose, decode_envelope
from repro.core.identifiers import ConnectionKey
from repro.core.infra_state import InfraState
from repro.core.orb_state import OrbStateTracker
from repro.ftcorba.properties import ReplicationStyle
from repro.giop.messages import RequestMessage, decode_message
from repro.giop.service_context import VENDOR_HANDSHAKE_ID, find_context
from repro.giop.types import decode_any


@pytest.fixture
def captured_set():
    """Run a recovery and intercept the fabricated StateSet envelope."""
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=3_000,
        warmup=0.3,
    )
    system = deployment.system
    captured = []
    original_multicast = system.mechanisms("s1").multicast

    def spy(envelope):
        if isinstance(envelope, StateSet) \
                and envelope.purpose is TransferPurpose.RECOVERY:
            captured.append(envelope)
        original_multicast(envelope)

    system.mechanisms("s1").multicast = spy
    system.kill_node("s2")
    system.run_for(0.1)
    system.restart_node("s2")
    assert system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"),
        timeout=5.0,
    )
    assert captured, "no recovery StateSet observed"
    return deployment, captured[0]


def test_application_level_state_is_the_checkpointable_any(captured_set):
    """§4.1: the state returned by get_state(), encoded as a CORBA any."""
    deployment, envelope = captured_set
    state = decode_any(envelope.app_state).value
    live = deployment.server_servant("s1")
    assert state["payload"] == live.payload
    assert isinstance(state["echo_count"], int)
    assert set(state) == {"data", "payload", "echo_count",
                          "scribble_count"}


def test_orb_level_state_carries_request_ids_and_handshake(captured_set):
    """§4.2: per-connection GIOP request_ids (discovered by parsing the
    IIOP stream) and the stored client-server handshake message."""
    deployment, envelope = captured_set
    tracker = OrbStateTracker.decode(envelope.orb_state)
    conn = ConnectionKey("driver", "store")
    # the handshake for the driver connection, as raw GIOP bytes…
    assert conn in tracker.handshakes
    handshake = decode_message(tracker.handshakes[conn])
    assert isinstance(handshake, RequestMessage)
    # …which indeed carries the vendor negotiation context
    assert find_context(list(handshake.service_contexts),
                        VENDOR_HANDSHAKE_ID) is not None
    # the server replica issues no client requests, so no request_id
    # counters are expected on this (server-side) capture
    assert all(isinstance(v, int)
               for v in tracker.client_request_ids.values())


def test_infrastructure_level_state_carries_dedup_and_role(captured_set):
    """§4.3: duplicate-suppression filter, issued/awaiting bookkeeping,
    and the replica's style/role."""
    deployment, envelope = captured_set
    infra = InfraState.decode(envelope.infra_state)
    assert infra.style == "active"
    assert infra.role == "active"
    conn = ConnectionKey("driver", "store")
    # the filter must already have seen the driver's past requests: the
    # next fresh id is NOT a duplicate, a long-past one IS
    from repro.core.identifiers import OperationId, OpKind
    past = OperationId(conn, 0, OpKind.REQUEST)
    assert infra.duplicates.seen_before(past) is True


def test_assignment_order_app_then_orb_then_infra(captured_set):
    """§4.3: 'assign the application-level state first, the ORB/POA-level
    state next, and finally the infrastructure-level state' — verified
    against the recovered node's trace."""
    deployment, _ = captured_set
    system = deployment.system
    # The container applies set_state (app) before _finish_recovery runs
    # (orb + infra); handshake_replayed is emitted during the orb phase
    # and 'recovered' only after infra adoption.  The relative order is
    # asserted in test_active_recovery's Fig-5 test; here we just confirm
    # the recovered replica is fully synchronized end to end.
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    system.run_for(0.2)
    assert s1.get_state() == s2.get_state()
    binding = deployment.server_group.binding_on("s2")
    assert binding.container.orb.requests_discarded == 0
