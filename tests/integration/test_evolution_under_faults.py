"""Integration: Evolution Manager upgrades racing with faults.

A rolling upgrade exploits replication to keep the service available; it
must also survive the faults replication exists for — a replica crashing
*during* the upgrade window.
"""

import pytest

from repro import EternalSystem, FTProperties
from repro.apps.kvstore import KvStoreServant, make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


class KvStoreV2(KvStoreServant):
    IMPLEMENTATION_VERSION = 2


def deploy():
    system = EternalSystem(["m", "c1", "s1", "s2", "s3"])
    nodes = ["s1", "s2", "s3"]
    system.register_factory(KVSTORE, make_kvstore_factory(500), nodes=nodes)
    system.register_factory(KVSTORE, lambda: KvStoreV2(500), nodes=nodes,
                            version=1)
    store = system.create_group("store", KVSTORE,
                                FTProperties(initial_replicas=3,
                                             min_replicas=1),
                                nodes=nodes)
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(iogr),
                            nodes=["c1"])
    system.create_group("drv", DRIVER, FTProperties(initial_replicas=1),
                        nodes=["c1"])
    system.run_for(0.2)
    return system, store


def all_v2(store, nodes):
    return all(
        getattr(store.servant_on(n), "IMPLEMENTATION_VERSION", 1) == 2
        for n in nodes if store.servant_on(n) is not None
    )


def test_upgrade_completes_with_crash_of_untouched_replica():
    system, store = deploy()
    done = []
    system.evolution_manager.upgrade("store", 1,
                                     on_complete=lambda: done.append(1))
    # crash a replica that is (most likely) not the one being replaced
    system.run_for(0.02)
    system.kill_node("s3")
    assert system.wait_for(lambda: bool(done), timeout=20.0)
    system.run_for(0.5)
    members = store.member_nodes()
    assert members            # the group survived
    assert all_v2(store, members)
    # consistency among survivors
    counts = {store.servant_on(n).echo_count for n in members
              if store.servant_on(n) is not None}
    assert len(counts) == 1


def test_upgrade_then_recovery_uses_new_version():
    """A replica recovered after the upgrade must be built at V2 (the
    group's current version) and synchronized from V2 state."""
    system, store = deploy()
    done = []
    system.evolution_manager.upgrade("store", 1,
                                     on_complete=lambda: done.append(1))
    assert system.wait_for(lambda: bool(done), timeout=20.0)
    system.run_for(0.2)
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s2")
    assert system.wait_for(lambda: store.is_operational_on("s2"),
                           timeout=5.0)
    system.run_for(0.3)
    servant = store.servant_on("s2")
    assert getattr(servant, "IMPLEMENTATION_VERSION", 1) == 2
    counts = {store.servant_on(n).echo_count for n in store.member_nodes()}
    assert len(counts) == 1


def test_service_never_interrupted_by_upgrade():
    system, store = deploy()
    from repro.core.system import GroupHandle
    driver = GroupHandle(system, "drv").servant_on("c1")
    done = []
    acked_before = driver.acked
    system.evolution_manager.upgrade("store", 1,
                                     on_complete=lambda: done.append(1))
    assert system.wait_for(lambda: bool(done), timeout=20.0)
    # no acknowledged work was lost or rolled back during the upgrade…
    assert driver.acked >= acked_before
    # …and the stream keeps flowing at full rate afterwards
    acked_after_upgrade = driver.acked
    system.run_for(0.3)
    assert driver.acked > acked_after_upgrade + 100
