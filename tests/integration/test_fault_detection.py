"""Integration: pull-based replica fault detection (FT-CORBA monitoring).

A replica that hangs while its process stays alive is invisible to the
ring membership; the per-node fault detector polls each hosted replica at
the group's fault monitoring interval and reports via the total order, and
the Replication Manager replaces the faulty member.
"""

import pytest

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle


def test_hung_active_replica_detected_and_replaced():
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=200,
                                     warmup=0.2)
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    system.hang_replica("store", "s2")
    # the ring never changes: the process is alive
    assert system.stacks["s2"].process.alive
    # the detector reports, the RM drops the member and re-places it on
    # the same (healthy) node; recovery re-synchronizes the new replica
    assert system.wait_for(
        lambda: system.tracer.count("fault_detector.report") > 0,
        timeout=5.0,
    )
    assert system.wait_for(lambda: group.is_operational_on("s2"),
                           timeout=5.0)
    system.run_for(0.3)
    s1 = group.servant_on("s1")
    s2 = group.servant_on("s2")
    assert not getattr(s2, "_hung_for_test", False)   # fresh servant
    assert s1.echo_count == s2.echo_count
    assert driver.acked > 0


def test_service_continues_while_hung_replica_detected():
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=200,
                                     warmup=0.2)
    system = deployment.system
    driver = deployment.driver
    before = driver.acked
    system.hang_replica("store", "s2")
    system.run_for(0.5)
    # the healthy replica kept answering throughout detection+replacement
    assert driver.acked > before + 100


def test_hung_passive_primary_fails_over():
    deployment = build_client_server(style=ReplicationStyle.WARM_PASSIVE,
                                     server_replicas=2, state_size=200,
                                     checkpoint_interval=0.1, warmup=0.3)
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    primary = group.primary_node()
    backup = [n for n in deployment.server_nodes if n != primary][0]
    acked = driver.acked
    system.hang_replica("store", primary)
    assert system.wait_for(lambda: driver.acked > acked + 50, timeout=5.0)
    assert group.primary_node() == backup
    system.run_for(0.3)
    servant = group.servant_on(backup)
    assert 0 <= servant.echo_count - driver.acked <= 1


def test_fault_report_reaches_notifier_with_group():
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=200,
                                     warmup=0.2)
    system = deployment.system
    system.hang_replica("store", "s1")
    assert system.wait_for(
        lambda: any(r.group_id == "store" and r.node_id == "s1"
                    for r in system.fault_notifier.history),
        timeout=5.0,
    )
    report = next(r for r in system.fault_notifier.history
                  if r.group_id == "store")
    assert report.reason == "unresponsive"


def test_healthy_replicas_never_reported():
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=200,
                                     warmup=0.2)
    system = deployment.system
    system.run_for(1.0)
    assert system.tracer.count("fault_detector.report") == 0


def test_hang_unknown_replica_rejected():
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=1, state_size=100,
                                     warmup=0.1)
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        deployment.system.hang_replica("store", "c1")
