"""Integration: the declarative scenario DSL, and schedules written in it."""

import pytest

from repro.bench.deployments import build_client_server
from repro.core.config import EternalConfig
from repro.ftcorba.properties import ReplicationStyle
from repro.scenarios import (
    Check,
    ExpectConsistent,
    ExpectProgress,
    Heal,
    Kill,
    Partition,
    Restart,
    Run,
    Scenario,
    ScenarioError,
    SetLoss,
    WaitOperational,
)


def active_deployment(**kwargs):
    defaults = dict(style=ReplicationStyle.ACTIVE, server_replicas=2,
                    state_size=1_000, warmup=0.2)
    defaults.update(kwargs)
    return build_client_server(**defaults)


def test_kill_recover_schedule():
    transcript = Scenario(
        Run(0.1),
        Kill("s2"),
        ExpectProgress("driver", min_acks=100, within=0.5),
        Restart("s2"),
        WaitOperational("store", "s2"),
        Run(0.3),
        ExpectConsistent("store", ["s1", "s2"]),
    ).execute(active_deployment())
    assert any("kill s2" in line for line in transcript)
    assert any("consistent" in line for line in transcript)


def test_partition_heal_schedule():
    Scenario(
        Run(0.1),
        Partition([{"m", "c1", "s1"}, {"s2"}]),
        ExpectProgress("driver", min_acks=100, within=0.6),
        Heal(),
        WaitOperational("store", "s2", timeout=10.0),
        Run(0.3),
        ExpectConsistent("store", ["s1", "s2"]),
    ).execute(active_deployment())


def test_lossy_recovery_schedule():
    Scenario(
        Run(0.1),
        SetLoss(0.02),
        Kill("s2"),
        Run(0.2),
        Restart("s2"),
        WaitOperational("store", "s2", timeout=15.0),
        SetLoss(0.0),
        Run(0.4),
        ExpectConsistent("store", ["s1", "s2"]),
    ).execute(active_deployment(seed=7))


def test_failed_expectation_raises_with_transcript():
    deployment = active_deployment(
        eternal_config=EternalConfig(sync_orb_request_ids=False,
                                     sync_handshake=False),
    )
    with pytest.raises(ScenarioError) as info:
        Scenario(
            Run(0.1),
            Kill("s2"),
            Run(0.2),
            Restart("s2"),
            WaitOperational("store", "s2"),
            Run(0.4),
            # with the ablations off the recovered replica diverges
            ExpectConsistent("store", ["s1", "s2"]),
        ).execute(deployment)
    assert "divergence" in str(info.value)
    assert "scenario transcript" in str(info.value)
    assert "kill s2" in str(info.value)


def test_check_step_runs_predicate():
    with pytest.raises(ScenarioError) as info:
        Scenario(
            Run(0.1),
            Check("driver has a million acks",
                  lambda d: d.driver.acked > 1_000_000),
        ).execute(active_deployment())
    assert "driver has a million acks" in str(info.value)


def test_wait_operational_timeout_fails():
    deployment = active_deployment()
    with pytest.raises(ScenarioError):
        Scenario(
            Kill("s1"),
            Kill("s2"),
            Run(0.1),
            Restart("s2"),
            WaitOperational("store", "s2", timeout=1.0),  # no state holder
        ).execute(deployment)


def test_transcript_records_ordered_timestamps():
    transcript = Scenario(Run(0.1), Run(0.2)).execute(active_deployment())
    assert len(transcript) == 2
    assert transcript[0].lstrip().startswith("1.")
    assert transcript[1].lstrip().startswith("2.")
