"""Integration: recovering a replicated *client* (paper §4.2.1, Figure 4).

The client side is where the GIOP request_id problem lives: a recovered
client replica's ORB restarts its counters at zero and, without Eternal's
interceptor-level rewrite, either it or its sibling discards valid replies
and waits forever.
"""

import pytest

from repro.bench.deployments import build_client_server
from repro.core.config import EternalConfig
from repro.core.identifiers import ConnectionKey
from repro.ftcorba.properties import ReplicationStyle


def deploy(**config_kwargs):
    return build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=1,
        client_replicas=2,
        state_size=100,
        eternal_config=EternalConfig(**config_kwargs),
        warmup=0.3,
    )


def recover_c2(deployment):
    system = deployment.system
    system.kill_node("c2")
    system.run_for(0.2)
    system.restart_node("c2")
    assert system.wait_for(
        lambda: deployment.client_group.is_operational_on("c2"), timeout=5.0
    )


def test_recovered_client_resumes_in_lockstep():
    deployment = deploy()
    recover_c2(deployment)
    deployment.system.run_for(0.5)
    d1 = deployment.client_group.servant_on("c1")
    d2 = deployment.client_group.servant_on("c2")
    assert abs(d1.acked - d2.acked) <= 1
    assert d2.acked > 200                      # really running


def test_request_id_offset_installed_on_recovered_interceptor():
    deployment = deploy()
    d1 = deployment.client_group.servant_on("c1")
    sent_before = d1.sent
    recover_c2(deployment)
    binding = deployment.client_group.binding_on("c2")
    conn = ConnectionKey("driver", "store")
    offset = binding.interceptor.request_id_offset(conn)
    # the offset aligns the fresh ORB (counting from 0) near the group's
    # current request_id (the driver had sent ~sent_before requests)
    assert offset >= sent_before - 1
    # and the recovered ORB's own counter restarted at a small value
    conn_obj = binding.container.orb.client_connection("store", 2809)
    assert conn_obj is not None
    assert conn_obj.next_request_id < offset


def test_inflight_invocation_reissued_but_suppressed():
    deployment = deploy()
    recover_c2(deployment)
    binding = deployment.client_group.binding_on("c2")
    # the driver re-issued its single in-flight echo; the interceptor must
    # have suppressed it on the wire rather than duplicating it
    assert binding.interceptor.suppressed_reissues >= 1
    deployment.system.run_for(0.3)
    server = deployment.server_servant("s1")
    driver = deployment.client_group.servant_on("c1")
    assert abs(server.echo_count - driver.acked) <= 1


def test_without_request_id_sync_recovered_replica_stalls():
    """The Figure 4 failure: application state alone is not enough."""
    deployment = deploy(sync_orb_request_ids=False)
    recover_c2(deployment)
    system = deployment.system
    system.run_for(0.3)
    d2 = deployment.client_group.servant_on("c2")
    stalled_at = d2.acked
    system.run_for(0.5)
    assert d2.acked == stalled_at              # waits forever
    d1 = deployment.client_group.servant_on("c1")
    assert d1.acked > stalled_at + 100         # sibling diverges


def test_client_state_identical_after_recovery():
    deployment = deploy()
    recover_c2(deployment)
    deployment.system.run_for(0.4)
    d1 = deployment.client_group.servant_on("c1")
    d2 = deployment.client_group.servant_on("c2")
    assert d1.get_state() == d2.get_state()
