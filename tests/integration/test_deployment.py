"""Integration: system assembly, group deployment, invocation round trips."""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps import CounterServant
from repro.apps.packet_driver import PacketDriverServant

COUNTER = "IDL:repro/Counter:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


def test_ring_forms_over_all_nodes():
    system = EternalSystem(["a", "b", "c", "d"])
    assert system.wait_for(system.ring_formed, timeout=1.0)


def test_group_deploys_on_chosen_nodes():
    system = EternalSystem(["m", "n1", "n2"])
    system.register_factory(COUNTER, CounterServant)
    group = system.create_group("ctr", COUNTER,
                                FTProperties(initial_replicas=2),
                                nodes=["n1", "n2"])
    system.run_for(0.1)
    assert group.operational_nodes() == ["n1", "n2"]
    assert group.member_nodes() == ["n1", "n2"]
    assert group.servant_on("n1") is not None
    assert group.servant_on("m") is None


def test_auto_placement_uses_capable_nodes():
    system = EternalSystem(["m", "n1", "n2", "n3"])
    system.register_factory(COUNTER, CounterServant, nodes=["n1", "n3"])
    group = system.create_group("ctr", COUNTER,
                                FTProperties(initial_replicas=2))
    system.run_for(0.1)
    assert group.operational_nodes() == ["n1", "n3"]


def test_iogr_resolvable_and_stable():
    system = EternalSystem(["m", "n1"])
    system.register_factory(COUNTER, CounterServant)
    group = system.create_group("ctr", COUNTER,
                                FTProperties(initial_replicas=1),
                                nodes=["n1"])
    system.run_for(0.1)
    iogr = group.iogr()
    assert iogr.host == "ctr"
    from repro.giop.ior import IOR
    assert IOR.from_string(iogr.stringify()) == iogr


def test_client_invocations_reach_all_active_replicas():
    system = EternalSystem(["m", "c", "s1", "s2"])
    from repro.apps.kvstore import make_kvstore_factory
    system.register_factory("IDL:repro/KvStore:1.0",
                            make_kvstore_factory(10), nodes=["s1", "s2"])
    store = system.create_group("store", "IDL:repro/KvStore:1.0",
                                FTProperties(initial_replicas=2),
                                nodes=["s1", "s2"])
    system.run_for(0.1)
    iogr = store.iogr().stringify()
    system.register_factory(
        DRIVER, lambda: PacketDriverServant(iogr, max_invocations=20),
        nodes=["c"],
    )
    driver = system.create_group("drv", DRIVER,
                                 FTProperties(initial_replicas=1),
                                 nodes=["c"])
    assert system.wait_for(
        lambda: (driver.servant_on("c") is not None
                 and driver.servant_on("c").acked == 20),
        timeout=5.0,
    )
    assert store.servant_on("s1").echo_count == 20
    assert store.servant_on("s2").echo_count == 20


def test_duplicate_requests_from_replicated_client_suppressed():
    """Paper §2.1: three-way replicated client ⇒ the server sees each
    invocation once, not three times."""
    system = EternalSystem(["m", "c1", "c2", "c3", "s1"])
    from repro.apps.kvstore import make_kvstore_factory
    system.register_factory("IDL:repro/KvStore:1.0",
                            make_kvstore_factory(10), nodes=["s1"])
    store = system.create_group("store", "IDL:repro/KvStore:1.0",
                                FTProperties(initial_replicas=1),
                                nodes=["s1"])
    system.run_for(0.1)
    iogr = store.iogr().stringify()
    clients = ["c1", "c2", "c3"]
    system.register_factory(
        DRIVER, lambda: PacketDriverServant(iogr, max_invocations=10),
        nodes=clients,
    )
    driver = system.create_group("drv", DRIVER,
                                 FTProperties(initial_replicas=3,
                                              min_replicas=1),
                                 nodes=clients)
    assert system.wait_for(
        lambda: all(
            driver.servant_on(c) is not None
            and driver.servant_on(c).acked == 10 for c in clients
        ),
        timeout=5.0,
    )
    assert store.servant_on("s1").echo_count == 10
    # every client replica converged to identical state
    states = {repr(sorted(driver.servant_on(c).get_state().items()))
              for c in clients}
    assert len(states) == 1


def test_multiple_groups_coexist():
    system = EternalSystem(["m", "n1", "n2"])
    system.register_factory(COUNTER, CounterServant)
    g1 = system.create_group("one", COUNTER,
                             FTProperties(initial_replicas=2),
                             nodes=["n1", "n2"])
    g2 = system.create_group("two", COUNTER,
                             FTProperties(initial_replicas=1), nodes=["n1"])
    system.run_for(0.1)
    assert g1.operational_nodes() == ["n1", "n2"]
    assert g2.operational_nodes() == ["n1"]


def test_empty_node_list_rejected():
    with pytest.raises(Exception):
        EternalSystem([])


def test_duplicate_group_rejected():
    system = EternalSystem(["m", "n1"])
    system.register_factory(COUNTER, CounterServant)
    system.create_group("g", COUNTER, FTProperties(initial_replicas=1),
                        nodes=["n1"])
    from repro.errors import ObjectGroupError
    with pytest.raises(ObjectGroupError):
        system.create_group("g", COUNTER, FTProperties(initial_replicas=1),
                            nodes=["n1"])
