"""Integration: Replication / Resource / Evolution Managers (paper §2)."""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.counter import CounterServant
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"
COUNTER = "IDL:repro/Counter:1.0"


def deploy_with_spare():
    system = EternalSystem(["m", "c", "s1", "s2", "s3"])
    system.register_factory(KVSTORE, make_kvstore_factory(100),
                            nodes=["s1", "s2", "s3"])
    store = system.create_group("store", KVSTORE,
                                FTProperties(initial_replicas=2,
                                             min_replicas=1),
                                nodes=["s1", "s2"])
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(iogr),
                            nodes=["c"])
    system.create_group("drv", DRIVER, FTProperties(initial_replicas=1),
                        nodes=["c"])
    system.run_for(0.2)
    return system, store


def test_replacement_placed_on_spare_node():
    system, store = deploy_with_spare()
    system.kill_node("s2")
    assert system.wait_for(lambda: store.is_operational_on("s3"),
                           timeout=5.0)
    assert store.member_nodes() == ["s1", "s3"]
    system.run_for(0.3)
    assert (store.servant_on("s1").echo_count
            == store.servant_on("s3").echo_count)


def test_replacement_waits_for_node_when_no_spare():
    system = EternalSystem(["m", "c", "s1", "s2"])
    system.register_factory(KVSTORE, make_kvstore_factory(100),
                            nodes=["s1", "s2"])
    store = system.create_group("store", KVSTORE,
                                FTProperties(initial_replicas=2,
                                             min_replicas=1),
                                nodes=["s1", "s2"])
    system.run_for(0.1)
    system.kill_node("s2")
    system.run_for(0.3)
    assert store.member_nodes() == ["s1"]
    system.restart_node("s2")
    assert system.wait_for(lambda: store.is_operational_on("s2"),
                           timeout=5.0)
    assert store.member_nodes() == ["s1", "s2"]


def test_fault_reports_pushed_to_notifier():
    system, store = deploy_with_spare()
    system.kill_node("s1")
    system.run_for(0.3)
    assert any(r.node_id == "s1"
               for r in system.fault_notifier.history)


def test_resource_manager_prefers_least_loaded():
    system = EternalSystem(["m", "n1", "n2"])
    system.register_factory(COUNTER, CounterServant, nodes=["n1", "n2"])
    system.create_group("g1", COUNTER, FTProperties(initial_replicas=1))
    system.create_group("g2", COUNTER, FTProperties(initial_replicas=1))
    system.run_for(0.1)
    rm = system.replication_manager
    placements = sorted(
        node for managed in rm.groups.values()
        for node in managed.assignments
    )
    assert placements == ["n1", "n2"]      # spread, not stacked


def test_admin_remove_member():
    system, store = deploy_with_spare()
    system.replication_manager.remove_member("store", "s2")
    system.run_for(0.2)
    assert store.member_nodes() == ["s1"]
    assert store.binding_on("s2") is None


def test_evolution_rolling_upgrade():
    system, store = deploy_with_spare()

    class KvStoreV2(make_kvstore_factory(100)().__class__):
        VERSION_TAG = 2

    system.register_factory(KVSTORE, lambda: KvStoreV2(100),
                            nodes=["s1", "s2", "s3"], version=1)
    done = []
    system.evolution_manager.upgrade("store", 1,
                                     on_complete=lambda: done.append(1))
    assert system.wait_for(lambda: bool(done), timeout=10.0)
    system.run_for(0.3)
    for node in store.member_nodes():
        servant = store.servant_on(node)
        assert getattr(servant, "VERSION_TAG", None) == 2
    # state survived the upgrade and the service kept running
    echo_counts = {store.servant_on(n).echo_count
                   for n in store.member_nodes()}
    assert len(echo_counts) == 1
    assert echo_counts.pop() > 0


def test_evolution_requires_two_replicas():
    system = EternalSystem(["m", "n1"])
    system.register_factory(COUNTER, CounterServant, nodes=["n1"])
    system.create_group("g", COUNTER, FTProperties(initial_replicas=1),
                        nodes=["n1"])
    system.run_for(0.1)
    from repro.errors import ObjectGroupError
    with pytest.raises(ObjectGroupError):
        system.evolution_manager.upgrade("g", 1)
