"""Integration: the client-server handshake across recovery (paper §4.2.2)."""

import pytest

from repro.bench.deployments import build_client_server
from repro.core.config import EternalConfig
from repro.core.identifiers import ConnectionKey
from repro.ftcorba.properties import ReplicationStyle


def deploy(**config_kwargs):
    return build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=200,
        eternal_config=EternalConfig(**config_kwargs),
        warmup=0.3,
    )


def recover_s2(deployment):
    system = deployment.system
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s2")
    assert system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=5.0
    )


def test_handshake_observed_and_stored_at_server_nodes():
    deployment = deploy()
    conn = ConnectionKey("driver", "store")
    for node in deployment.server_nodes:
        binding = deployment.server_group.binding_on(node)
        assert conn in binding.orb_state.handshakes


def test_steady_state_uses_short_keys():
    deployment = deploy()
    binding = deployment.server_group.binding_on("s1")
    server_conn = binding.container.orb.server_connection("driver->store")
    assert server_conn.handshake_seen
    assert server_conn.short_keys


def test_replayed_handshake_restores_server_connection_state():
    deployment = deploy()
    recover_s2(deployment)
    binding = deployment.server_group.binding_on("s2")
    server_conn = binding.container.orb.server_connection("driver->store")
    assert server_conn.handshake_seen
    assert server_conn.short_keys
    assert server_conn.codeset is not None


def test_without_replay_recovered_server_discards_everything():
    deployment = deploy(sync_handshake=False)
    recover_s2(deployment)
    system = deployment.system
    system.run_for(0.5)
    binding = deployment.server_group.binding_on("s2")
    assert binding.container.orb.requests_discarded > 50
    s2 = deployment.server_group.servant_on("s2")
    frozen = s2.echo_count
    system.run_for(0.3)
    assert s2.echo_count == frozen             # diverged permanently


def test_handshake_state_chains_through_generations():
    """The handshake must survive *transitive* recovery: s2 recovers from
    s1, then s1 recovers from the recovered s2."""
    deployment = deploy()
    recover_s2(deployment)
    system = deployment.system
    system.run_for(0.2)
    system.kill_node("s1")
    system.run_for(0.2)
    system.restart_node("s1")
    assert system.wait_for(
        lambda: deployment.server_group.is_operational_on("s1"), timeout=5.0
    )
    system.run_for(0.3)
    s1 = deployment.server_group.servant_on("s1")
    s2 = deployment.server_group.servant_on("s2")
    assert s1.echo_count == s2.echo_count
    binding = deployment.server_group.binding_on("s1")
    assert binding.container.orb.requests_discarded == 0
