"""Integration: the online consistency auditor detects SEEDED violations.

The fault-free integration suite proves the auditor stays silent when the
protocol behaves (``strict_audit`` on chaos/partition/overlapping tests);
this file proves the opposite direction — when replica state is corrupted
behind the protocol's back, or a ``set_state()`` is injected outside any
recovery window, the auditor names the offending replica and span.
"""

import pytest

from repro import EternalSystem, FTProperties
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant
from repro.obs.audit import (
    SET_STATE_WINDOW,
    STATE_DIGEST,
    AuditViolation,
    ConsistencyAuditor,
)

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


def deploy():
    system = EternalSystem(["m", "c1", "s1", "s2", "s3"])
    nodes = ["s1", "s2", "s3"]
    system.register_factory(KVSTORE, make_kvstore_factory(5_000),
                            nodes=nodes)
    store = system.create_group("store", KVSTORE,
                                FTProperties(initial_replicas=3,
                                             min_replicas=1),
                                nodes=nodes)
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(iogr),
                            nodes=["c1"])
    system.create_group("drv", DRIVER, FTProperties(initial_replicas=1),
                        nodes=["c1"])
    system.run_for(0.2)
    auditor = system.attach_auditor()
    return system, store, auditor


def test_corrupted_replica_state_yields_digest_finding():
    """Mutate s1's servant behind the protocol's back, then recover s3:
    the responders' get_state() digests disagree and the auditor names
    the divergent replica and the transfer span."""
    system, store, auditor = deploy()
    store.servant_on("s1").data["corrupt"] = b"divergence"
    system.kill_node("s3")
    system.run_for(0.1)
    system.restart_node("s3")
    assert system.wait_for(lambda: store.is_operational_on("s3"),
                           timeout=10.0)
    system.run_for(0.2)

    findings = auditor.findings_by_invariant().get(STATE_DIGEST)
    assert findings, auditor.summary()
    nodes = {f.node for f in findings}
    assert "s1" in nodes or "s3" in nodes
    for finding in findings:
        assert finding.group == "store"
        assert finding.span_id and finding.span_id.startswith("rec:store:")
    # hard-fail mode raises with the findings spelled out
    with pytest.raises(AuditViolation) as excinfo:
        auditor.finish(raise_on_findings=True)
    assert STATE_DIGEST in str(excinfo.value)


def test_set_state_outside_recovery_window_is_flagged():
    """Inject a fabricated set_state() on an operational replica with no
    sync point or failover in flight — a §5.1 protocol violation."""
    from repro.giop.types import encode_any, to_any

    system, store, auditor = deploy()
    binding = store.binding_on("s2")
    state = encode_any(to_any(store.servant_on("s2").get_state()))
    binding.container.submit_set_state(state, lambda: None)
    system.run_for(0.1)

    findings = auditor.findings_by_invariant().get(SET_STATE_WINDOW)
    assert findings, auditor.summary()
    assert findings[0].node == "s2"
    assert findings[0].group == "store"


def test_fault_free_run_is_clean():
    """Without seeded faults the same deployment audits clean, including
    a legitimate kill/recover cycle."""
    system, store, auditor = deploy()
    system.kill_node("s2")
    system.run_for(0.1)
    system.restart_node("s2")
    assert system.wait_for(lambda: store.is_operational_on("s2"),
                           timeout=10.0)
    system.run_for(0.2)
    assert auditor.finish(raise_on_findings=True) == []
    assert auditor.ok
    assert auditor.records_scanned > 0
