"""Integration: warm and cold passive replication (paper §3.2, §3.3).

Checkpoints are taken on the primary at the configured interval; the log
records the ordered messages since the last checkpoint; primary failure
promotes a backup, which is reinstated from the checkpoint plus log replay
before going operational.
"""

import pytest

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle


def deploy(style, checkpoint_interval=0.1, state_size=500):
    return build_client_server(
        style=style,
        server_replicas=2,
        state_size=state_size,
        checkpoint_interval=checkpoint_interval,
        warmup=0.2,
        keep_trace_records=True,
    )


@pytest.mark.parametrize("style", [ReplicationStyle.WARM_PASSIVE,
                                   ReplicationStyle.COLD_PASSIVE])
def test_only_primary_executes(style):
    deployment = deploy(style)
    deployment.system.run_for(0.3)
    group = deployment.server_group
    primary = group.primary_node()
    backup = [n for n in deployment.server_nodes if n != primary][0]
    primary_ops = group.binding_on(primary).container.operations_executed
    backup_ops = group.binding_on(backup).container.operations_executed
    assert primary_ops > 100
    assert backup_ops == 0


@pytest.mark.parametrize("style", [ReplicationStyle.WARM_PASSIVE,
                                   ReplicationStyle.COLD_PASSIVE])
def test_checkpoints_taken_periodically(style):
    deployment = deploy(style, checkpoint_interval=0.05)
    deployment.system.run_for(0.5)
    count = deployment.system.tracer.count("recovery.checkpoint_initiated")
    assert 6 <= count <= 14     # ~10 expected in 0.5 s


def test_cold_backup_not_instantiated_until_failover():
    deployment = deploy(ReplicationStyle.COLD_PASSIVE)
    group = deployment.server_group
    backup = [n for n in deployment.server_nodes
              if n != group.primary_node()][0]
    assert group.servant_on(backup) is None
    assert group.binding_on(backup).log is not None


def test_warm_backup_synchronized_by_checkpoints():
    deployment = deploy(ReplicationStyle.WARM_PASSIVE)
    system = deployment.system
    group = deployment.server_group
    system.run_for(0.5)
    primary = group.primary_node()
    backup = [n for n in deployment.server_nodes if n != primary][0]
    backup_servant = group.servant_on(backup)
    primary_servant = group.servant_on(primary)
    # backup lags by less than one checkpoint interval of traffic
    assert backup_servant.echo_count > 0
    assert backup_servant.echo_count <= primary_servant.echo_count
    assert backup_servant.payload == primary_servant.payload


@pytest.mark.parametrize("style", [ReplicationStyle.WARM_PASSIVE,
                                   ReplicationStyle.COLD_PASSIVE])
def test_failover_promotes_backup_and_loses_nothing(style):
    deployment = deploy(style)
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    system.run_for(0.3)
    old_primary = group.primary_node()
    backup = [n for n in deployment.server_nodes if n != old_primary][0]
    acked_at_kill = driver.acked
    system.kill_node(old_primary)
    assert system.wait_for(lambda: driver.acked > acked_at_kill + 50,
                           timeout=5.0)
    assert group.primary_node() == backup
    system.run_for(0.3)
    new_primary_servant = group.servant_on(backup)
    # exactly-once: every acked invocation executed exactly once
    assert 0 <= new_primary_servant.echo_count - driver.acked <= 1


def test_failover_replays_logged_messages():
    deployment = deploy(ReplicationStyle.WARM_PASSIVE,
                        checkpoint_interval=0.5)   # long: force a real log
    system = deployment.system
    group = deployment.server_group
    system.run_for(0.3)
    old_primary = group.primary_node()
    system.kill_node(old_primary)
    assert system.wait_for(
        lambda: system.tracer.count("recovery.failover_replay") > 0,
        timeout=5.0,
    )
    replay = next(system.tracer.find("recovery", "failover_replay"))
    assert replay.fields["messages"] > 0


def test_failover_before_first_checkpoint_replays_whole_history():
    deployment = deploy(ReplicationStyle.WARM_PASSIVE,
                        checkpoint_interval=60.0)  # never checkpoints
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    system.run_for(0.2)
    old_primary = group.primary_node()
    acked_at_kill = driver.acked
    system.kill_node(old_primary)
    assert system.wait_for(lambda: driver.acked > acked_at_kill + 20,
                           timeout=5.0)
    backup = group.primary_node()
    system.run_for(0.3)
    assert 0 <= group.servant_on(backup).echo_count - driver.acked <= 1


def test_checkpoint_includes_piggybacked_state():
    deployment = deploy(ReplicationStyle.WARM_PASSIVE)
    system = deployment.system
    group = deployment.server_group
    system.run_for(0.4)
    backup = [n for n in deployment.server_nodes
              if n != group.primary_node()][0]
    checkpoint = group.binding_on(backup).log.checkpoint
    assert checkpoint is not None
    assert len(checkpoint.app_state) > 0
    assert len(checkpoint.orb_state) > 0
    assert len(checkpoint.infra_state) > 0


def test_backup_failure_is_harmless():
    deployment = deploy(ReplicationStyle.WARM_PASSIVE)
    system = deployment.system
    group = deployment.server_group
    driver = deployment.driver
    backup = [n for n in deployment.server_nodes
              if n != group.primary_node()][0]
    before = driver.acked
    system.kill_node(backup)
    system.run_for(0.3)
    assert driver.acked > before + 100
    assert group.primary_node() != backup
