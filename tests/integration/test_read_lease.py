"""Leader-lease read fast path: simulator correctness tests.

The fast path (:mod:`repro.core.readfast`) lets the ring leaseholder
answer ``read_only`` operations point-to-point while writes stay on the
Totem total order.  These tests pin the safety story:

* under a read-heavy mix the fast path actually serves reads, and the
  strict auditor (which shadows the lease-window rule) stays clean;
* ``read_lease=False`` keeps every message on the total order;
* killing the leaseholder mid-stream falls the pending reads back to the
  total order and the stream continues, audit-clean, with the next ring
  member taking over the lease;
* the leaseholder refuses (nacks) a read whose connection handshake has
  not been ordered, or whose ring is stale — every nack reason routes the
  client back to the total order.
"""

import pytest

from repro.apps.kvstore import make_kvstore_factory
from repro.core.config import EternalConfig
from repro.core.system import EternalSystem
from repro.ftcorba.properties import FTProperties, ReplicationStyle
from repro.live.loadgen import ReadMixDriver
from repro.totem.wire import ReadFastRequest

KVSTORE_TYPE = "IDL:repro/KvStore:1.0"
DRIVER_TYPE = "IDL:repro/ClosedLoopDriver:1.0"


def build(read_lease, *, seed=3):
    system = EternalSystem(
        ["m", "c1", "s1", "s2"], seed=seed,
        eternal_config=EternalConfig(read_lease=read_lease),
    )
    system.register_factory(KVSTORE_TYPE, make_kvstore_factory(500),
                            nodes=["s1", "s2"])
    store = system.create_group(
        "store", KVSTORE_TYPE,
        FTProperties(replication_style=ReplicationStyle.ACTIVE,
                     initial_replicas=2, min_replicas=1),
        nodes=["s1", "s2"])
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER_TYPE,
                            lambda: ReadMixDriver(iogr), nodes=["c1"])
    driver = system.create_group(
        "driver", DRIVER_TYPE,
        FTProperties(replication_style=ReplicationStyle.ACTIVE,
                     initial_replicas=1, min_replicas=1),
        nodes=["c1"])
    return system, store, driver


def test_read_mix_serves_reads_point_to_point(strict_audit):
    system, _store, driver, = build(True)
    system.run_for(1.0)
    servant = driver.servant_on("c1")
    t = system.tracer
    assert servant.reads_acked > 100
    assert servant.writes_acked > 0
    # The interceptor diverted reads and the leaseholder answered them.
    assert t.count("interceptor.request_fast") > 100
    assert t.count("lease.read_served") > 100
    assert t.count("lease.read_reply") > 100
    # strict_audit's teardown raises on any lease-window finding.


def test_no_read_lease_keeps_total_order(strict_audit):
    system, _store, driver = build(False)
    system.run_for(1.0)
    servant = driver.servant_on("c1")
    assert servant.reads_acked > 100
    for key in ("interceptor.request_fast", "lease.read_fast",
                "lease.read_served", "lease.fallback"):
        assert system.tracer.count(key) == 0


def test_leaseholder_kill_falls_back_and_stream_continues(strict_audit):
    system, _store, driver = build(True)
    system.run_for(0.5)
    servant = driver.servant_on("c1")
    before = servant.acked
    assert system.tracer.count("lease.read_served") > 0
    # Step until a fast read is actually in flight, so the kill strands
    # it and the fallback machinery must fire (ring-change sweep or the
    # read_lease_timeout timer — both route it back to the total order).
    client_fast = system.mechanisms("c1").readfast
    for _ in range(5000):
        if client_fast._pending_fetch:
            break
        system.run_for(0.0005)
    assert client_fast._pending_fetch, "no fast read ever in flight"
    # The leaseholder is the lowest executing ring member: s1.
    system.kill_node("s1")
    system.run_for(1.0)
    t = system.tracer
    assert servant.acked > before + 100, \
        "read stream stalled after the leaseholder was killed"
    # In-flight fast reads fell back to the total order (timer, nack, or
    # ring-change sweep — any of the three shows the fallback worked).
    assert t.count("lease.fallback") > 0
    # After the new ring installs, s2 holds the lease and serves again.
    served_after_kill = t.count("lease.read_served")
    system.run_for(0.5)
    assert t.count("lease.read_served") > served_after_kill


def test_serve_refusal_reasons():
    system, _store, driver = build(True)
    system.run_for(0.5)
    coordinator = system.mechanisms("s1").readfast
    totem = system.mechanisms("s1").totem
    # A genuine in-ring request template, taken from live traffic shape.
    live_conn = next(iter(
        system.mechanisms("s1").bindings["store"].orb_state.handshakes))

    def request(**overrides):
        fields = dict(group_id="store", conn=live_conn.as_str(),
                      request_id=999, requester="c1",
                      ring_id=totem.ring_id, iiop_bytes=b"")
        fields.update(overrides)
        return ReadFastRequest(**fields)

    assert coordinator._serve_refusal(request()) is None
    assert (coordinator._serve_refusal(request(ring_id=totem.ring_id - 1))
            == "ring_changed")
    assert (coordinator._serve_refusal(request(conn="ghost->store"))
            == "no_handshake")
    assert (coordinator._serve_refusal(request(group_id="nope"))
            == "not_operational")


def test_unordered_handshake_is_nacked_back_to_total_order(strict_audit):
    system, _store, driver = build(True)
    system.run_for(0.5)
    t = system.tracer
    refused_before = t.count("lease.refused")
    # Deliver a fast-read request for a connection whose handshake was
    # never ordered: the leaseholder must nack it, not serve it.
    endpoint = system.mechanisms("s1").endpoint
    endpoint.deliver("c1", ReadFastRequest(
        group_id="store", conn="ghost->store", request_id=424242,
        requester="c1", ring_id=system.mechanisms("s1").totem.ring_id,
        iiop_bytes=b""))
    system.run_for(0.05)
    assert t.count("lease.refused") == refused_before + 1
    assert t.count("lease.nack") >= 1
