"""Integration: the auction app under replication and faults.

Interesting because normal operation *includes user exceptions* (rejected
bids): the exception replies must be deduplicated and delivered exactly
like results, and replicas must agree on which bids were rejected.
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.auction import AuctionServant
from repro.ftcorba.checkpointable import Checkpointable
from repro.giop.ior import IOR
from repro.giop.messages import ReplyStatus
from repro.orb.servant import operation

AUCTION = "IDL:repro/Auction:1.0"
BIDDER = "IDL:repro/BidderBot:1.0"


class BidderBot(Checkpointable):
    """Streams bids; roughly half get rejected (too low) by design."""

    type_id = BIDDER

    def __init__(self, auction_ior, name):
        self._ior = auction_ior
        self.name = name
        self.attempts = 0
        self.accepted = 0
        self.rejected = 0
        self._proxy = None

    def _ensure(self):
        if self._proxy is None:
            self._proxy = self._eternal_container.connect(
                IOR.from_string(self._ior)
            )
        return self._proxy

    def _amount(self) -> int:
        # alternately too-low and high enough: deterministic rejections
        base = 100 + self.attempts * 10
        if self.attempts % 2:
            return base - 95          # below reserve: rejected
        return base

    def start(self):
        self._ensure().invoke("create_auction", "lot", 100,
                              on_reply=self._on_created)

    def _on_created(self, reply):
        self._next_bid()

    def _next_bid(self):
        self._ensure().invoke("bid", "lot", self.name, self._amount(),
                              on_reply=self._on_bid)
        self.attempts += 1

    def _on_bid(self, reply):
        if reply.reply_status is ReplyStatus.NO_EXCEPTION:
            self.accepted += 1
        else:
            self.rejected += 1
        self._next_bid()

    def resume(self):
        if self.attempts > self.accepted + self.rejected:
            # re-issue the in-flight bid (argument derived from state)
            self.attempts -= 1
            self._next_bid()

    def get_state(self):
        return {"attempts": self.attempts, "accepted": self.accepted,
                "rejected": self.rejected, "name": self.name}

    def set_state(self, state):
        self.attempts = state["attempts"]
        self.accepted = state["accepted"]
        self.rejected = state["rejected"]
        self.name = state["name"]


def deploy():
    system = EternalSystem(["m", "c1", "s1", "s2"])
    system.register_factory(AUCTION, AuctionServant, nodes=["s1", "s2"])
    house = system.create_group("house", AUCTION,
                                FTProperties(initial_replicas=2,
                                             min_replicas=1),
                                nodes=["s1", "s2"])
    system.run_for(0.05)
    iogr = house.iogr().stringify()
    system.register_factory(BIDDER, lambda: BidderBot(iogr, "bot"),
                            nodes=["c1"])
    system.create_group("bidder", BIDDER, FTProperties(initial_replicas=1),
                        nodes=["c1"])
    system.run_for(0.4)
    return system, house


def test_replicas_agree_on_accepted_and_rejected_bids():
    system, house = deploy()
    s1 = house.servant_on("s1")
    s2 = house.servant_on("s2")
    assert s1.get_state() == s2.get_state()
    assert s1.bid_counter > 20
    s1.check_invariants()
    s2.check_invariants()


def test_rejections_survive_recovery():
    system, house = deploy()
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s2")
    assert system.wait_for(lambda: house.is_operational_on("s2"),
                           timeout=5.0)
    system.run_for(0.4)
    s1 = house.servant_on("s1")
    s2 = house.servant_on("s2")
    assert s1.get_state() == s2.get_state()
    s2.check_invariants()
    # the bidder observed exactly the rejections the replicas recorded
    from repro.core.system import GroupHandle
    bidder = GroupHandle(system, "bidder").servant_on("c1")
    accepted_bids = sum(len(a["history"]) for a in s1.auctions.values())
    assert abs(bidder.accepted - accepted_bids) <= 1


def test_exception_replies_are_deduplicated():
    """With two active server replicas, each rejection produces two
    exception replies on the wire; the client must see each rejection
    exactly once (attempts == accepted + rejected, modulo in-flight)."""
    system, house = deploy()
    from repro.core.system import GroupHandle
    bidder = GroupHandle(system, "bidder").servant_on("c1")
    assert bidder.rejected > 5
    assert 0 <= bidder.attempts - (bidder.accepted + bidder.rejected) <= 1
