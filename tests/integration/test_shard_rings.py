"""Fault isolation across sharded Totem rings.

Each ring is an independent ordering domain: killing and recovering a
replica inside one ring must leave the other rings' closed-loop drivers
at full throughput, and the recovery must be strict-audit-clean (the
``strict_audit`` fixture attaches an online auditor to every sub-system
and fails the test on any §5.1 invariant finding — in particular, the
ring-scoped shadows must not be poisoned by the faulted ring's
re-synchronisation traffic).
"""

from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant
from repro.bench.deployments import DRIVER_TYPE, KVSTORE_TYPE
from repro.ftcorba.properties import FTProperties
from repro.simnet.sharded import ShardedEternalSystem

WINDOW = 0.4          # simulated seconds per throughput sample


def _deploy_loaded_rings(rings=3):
    """N rings, each with a 2-replica store driven closed-loop from a
    client node of the same ring (placement-local steady state)."""
    system = ShardedEternalSystem(rings=rings,
                                  node_template=("m", "c", "s1", "s2"))
    for name, sub in system.rings.items():
        # Factory only on the server nodes, so a killed replica comes
        # back on its own node instead of being re-placed elsewhere.
        sub.register_factory(KVSTORE_TYPE, make_kvstore_factory(2_000),
                             nodes=[f"{name}.s1", f"{name}.s2"])
    assert system.wait_for(system.ring_formed, timeout=10.0)

    stores = {}
    for name in system.rings:
        stores[name] = system.create_group(
            f"store.{name}", KVSTORE_TYPE, FTProperties(initial_replicas=2),
            nodes=[f"{name}.s1", f"{name}.s2"])
    system.run_for(0.1)

    drivers = {}
    for name, sub in system.rings.items():
        iogr = stores[name].iogr().stringify()
        sub.register_factory(DRIVER_TYPE,
                             lambda _iogr=iogr: PacketDriverServant(_iogr),
                             nodes=[f"{name}.c"])
        drivers[name] = system.create_group(
            f"driver.{name}", DRIVER_TYPE, FTProperties(initial_replicas=1),
            nodes=[f"{name}.c"])
    assert system.wait_for(
        lambda: all(drivers[n].servant_on(f"{n}.c") is not None
                    and drivers[n].servant_on(f"{n}.c").acked > 0
                    for n in system.rings), timeout=10.0), \
        "drivers never started streaming"
    return system, stores, drivers


def _acked(drivers, system):
    return {name: drivers[name].servant_on(f"{name}.c").acked
            for name in system.rings}


def test_multi_ring_formation_and_placement(strict_audit):
    system, stores, drivers = _deploy_loaded_rings(rings=2)
    # Every node belongs to exactly one ring and the merged view sees all.
    assert len(system.stacks) == 2 * 4
    for name, sub in system.rings.items():
        assert sub.ring_name == name
        assert all(node.startswith(f"{name}.") for node in sub.stacks)
    # Pinned placement answers stay stable and ring-local.
    for name, sub in system.rings.items():
        assert system.resolve_ring(f"store.{name}") == name
        assert system.ring_of_node(f"{name}.s1") is sub
    # Steady-state traffic never needed the gateway.
    assert system.bridge.forwarded == 0


def test_kill_recover_in_one_ring_leaves_others_at_full_throughput(
        strict_audit):
    system, stores, drivers = _deploy_loaded_rings(rings=3)
    healthy = [n for n in system.rings if n != "r0"]

    # Fault-free baseline window per ring.
    system.run_for(0.2)                     # settle past startup
    before = _acked(drivers, system)
    system.run_for(WINDOW)
    baseline = {n: c - before[n]
                for n, c in _acked(drivers, system).items()}
    assert all(delta > 0 for delta in baseline.values())

    # Kill a store replica in r0; sample the fault window immediately,
    # while detection + membership change + recovery churn that ring.
    system.kill_node("r0.s2")
    before = _acked(drivers, system)
    system.run_for(WINDOW)
    fault = {n: c - before[n] for n, c in _acked(drivers, system).items()}

    for name in healthy:
        assert fault[name] >= 0.9 * baseline[name], (
            f"ring {name} degraded during r0's fault: "
            f"{fault[name]} < 0.9 x {baseline[name]}")
    # The faulted ring itself keeps serving from the surviving replica.
    assert fault["r0"] > 0

    # Recover the replica; §5.1 recovery must complete and the ring must
    # return to (at least near) its fault-free rate.
    system.restart_node("r0.s2")
    assert system.wait_for(
        lambda: stores["r0"].is_operational_on("r0.s2"), timeout=10.0), \
        "killed replica never recovered"

    before = _acked(drivers, system)
    system.run_for(WINDOW)
    after = {n: c - before[n] for n, c in _acked(drivers, system).items()}
    for name in system.rings:
        assert after[name] >= 0.9 * baseline[name], (
            f"ring {name} did not return to full throughput after "
            f"recovery: {after[name]} < 0.9 x {baseline[name]}")

    # One auditor per sub-system (the fixture attaches them at birth);
    # teardown raises on any finding, proving the recovery audit-clean.
    assert len(strict_audit) == 3
