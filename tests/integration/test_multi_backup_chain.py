"""Integration: passive groups with several backups — failover chains.

With three members (one primary, two backups), failovers must promote
deterministically in node-id order, and a *chain* of failovers must
preserve exactly-once execution end to end.
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.kvstore import make_kvstore_factory
from repro.apps.packet_driver import PacketDriverServant

KVSTORE = "IDL:repro/KvStore:1.0"
DRIVER = "IDL:repro/PacketDriver:1.0"


def deploy(style):
    system = EternalSystem(["m", "c1", "s1", "s2", "s3"])
    nodes = ["s1", "s2", "s3"]
    system.register_factory(KVSTORE, make_kvstore_factory(2_000),
                            nodes=nodes)
    store = system.create_group(
        "store", KVSTORE,
        FTProperties(replication_style=style, initial_replicas=3,
                     min_replicas=1, checkpoint_interval=0.1),
        nodes=nodes,
    )
    system.run_for(0.05)
    iogr = store.iogr().stringify()
    system.register_factory(DRIVER, lambda: PacketDriverServant(iogr),
                            nodes=["c1"])
    system.create_group("drv", DRIVER, FTProperties(initial_replicas=1),
                        nodes=["c1"])
    system.run_for(0.3)
    return system, store


@pytest.mark.parametrize("style", [ReplicationStyle.WARM_PASSIVE,
                                   ReplicationStyle.COLD_PASSIVE])
def test_two_failovers_in_a_row(style):
    system, store = deploy(style)
    from repro.core.system import GroupHandle
    driver = GroupHandle(system, "drv").servant_on("c1")

    first_primary = store.primary_node()
    assert first_primary == "s1"          # deterministic initial roles
    acked = driver.acked
    system.kill_node("s1")
    assert system.wait_for(lambda: driver.acked > acked + 50, timeout=5.0)
    assert store.primary_node() == "s2"   # first surviving backup in order

    acked = driver.acked
    system.kill_node("s2")
    assert system.wait_for(lambda: driver.acked > acked + 50, timeout=5.0)
    assert store.primary_node() == "s3"

    system.run_for(0.3)
    servant = store.servant_on("s3")
    assert 0 <= servant.echo_count - driver.acked <= 1


def test_backup_loss_does_not_promote():
    system, store = deploy(ReplicationStyle.WARM_PASSIVE)
    primary = store.primary_node()
    system.kill_node("s3")                # a backup, not the primary
    system.run_for(0.3)
    assert store.primary_node() == primary


def test_all_backups_receive_checkpoints():
    system, store = deploy(ReplicationStyle.WARM_PASSIVE)
    system.run_for(0.4)
    primary = store.primary_node()
    for node in ("s2", "s3"):
        if node == primary:
            continue
        binding = store.binding_on(node)
        assert binding.log.checkpoints_taken >= 2
        assert binding.container.servant.echo_count > 0   # warm: applied


def test_recovered_backup_rejoins_the_chain():
    system, store = deploy(ReplicationStyle.WARM_PASSIVE)
    from repro.core.system import GroupHandle
    driver = GroupHandle(system, "drv").servant_on("c1")
    # kill the primary; s2 takes over; then bring s1 back as a backup
    system.kill_node("s1")
    acked = driver.acked
    assert system.wait_for(lambda: driver.acked > acked + 50, timeout=5.0)
    system.restart_node("s1")
    assert system.wait_for(lambda: store.is_operational_on("s1"),
                           timeout=5.0)
    info = system.mechanisms("m").groups["store"]
    assert info.roles["s1"] == "backup"
    # now kill the current primary; the chain continues through s1 or s3
    acked = driver.acked
    system.kill_node(store.primary_node())
    assert system.wait_for(lambda: driver.acked > acked + 50, timeout=5.0)
    system.run_for(0.3)
    new_primary = store.primary_node()
    servant = store.servant_on(new_primary)
    assert 0 <= servant.echo_count - driver.acked <= 1
