"""Integration: application invariants (money conservation) under faults.

The bank's transfer operation moves money between accounts; the invariant
"sum of balances is constant" must hold on every replica through crashes,
recoveries, and failovers — the end-to-end meaning of strong replica
consistency for a stateful application.
"""

import pytest

from repro import EternalSystem, FTProperties, ReplicationStyle
from repro.apps.bank import BankServant
from repro.ftcorba.checkpointable import Checkpointable
from repro.giop.ior import IOR
from repro.giop.messages import ReplyStatus
from repro.orb.servant import operation

BANK = "IDL:repro/Bank:1.0"
MOVER = "IDL:repro/MoverBot:1.0"

ACCOUNTS = ["a", "b", "c", "d"]
INITIAL = 1000


class MoverBot(Checkpointable):
    """Endlessly shuffles money around a fixed ring of accounts."""

    type_id = MOVER

    def __init__(self, bank_ior):
        self._ior = bank_ior
        self.moves = 0
        self.opened = 0
        self._proxy = None

    def _ensure(self):
        if self._proxy is None:
            self._proxy = self._eternal_container.connect(
                IOR.from_string(self._ior)
            )
        return self._proxy

    def start(self):
        self._open_next()

    def _open_next(self):
        name = ACCOUNTS[self.opened]
        self._ensure().invoke("open_account", name, INITIAL,
                              on_reply=self._on_opened)

    def _on_opened(self, reply):
        self.opened += 1
        if self.opened < len(ACCOUNTS):
            self._open_next()
        else:
            self._move()

    def _move(self):
        src = ACCOUNTS[self.moves % len(ACCOUNTS)]
        dst = ACCOUNTS[(self.moves + 1) % len(ACCOUNTS)]
        amount = 1 + self.moves % 7
        self._ensure().invoke("transfer", src, dst, amount,
                              on_reply=self._on_moved)

    def _on_moved(self, reply):
        self.moves += 1
        self._move()

    def resume(self):
        if self.opened < len(ACCOUNTS):
            self._open_next()
        else:
            self._move()

    def get_state(self):
        return {"moves": self.moves, "opened": self.opened}

    def set_state(self, state):
        self.moves = state["moves"]
        self.opened = state["opened"]


def deploy(style):
    system = EternalSystem(["m", "c1", "s1", "s2"])
    system.register_factory(BANK, BankServant, nodes=["s1", "s2"])
    bank = system.create_group(
        "bank", BANK,
        FTProperties(replication_style=style, initial_replicas=2,
                     min_replicas=1, checkpoint_interval=0.1),
        nodes=["s1", "s2"],
    )
    system.run_for(0.05)
    iogr = bank.iogr().stringify()
    system.register_factory(MOVER, lambda: MoverBot(iogr), nodes=["c1"])
    system.create_group("mover", MOVER, FTProperties(initial_replicas=1),
                        nodes=["c1"])
    system.run_for(0.3)
    return system, bank


def total(servant):
    return sum(servant.balances.values())


def test_conservation_on_active_replicas():
    system, bank = deploy(ReplicationStyle.ACTIVE)
    for node in ("s1", "s2"):
        servant = bank.servant_on(node)
        assert total(servant) == INITIAL * len(ACCOUNTS)
    assert bank.servant_on("s1").balances == bank.servant_on("s2").balances


def test_conservation_through_active_recovery():
    system, bank = deploy(ReplicationStyle.ACTIVE)
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s2")
    assert system.wait_for(lambda: bank.is_operational_on("s2"),
                           timeout=5.0)
    system.run_for(0.3)
    s1, s2 = bank.servant_on("s1"), bank.servant_on("s2")
    assert total(s1) == total(s2) == INITIAL * len(ACCOUNTS)
    assert s1.balances == s2.balances
    assert s1.history == s2.history


@pytest.mark.parametrize("style", [ReplicationStyle.WARM_PASSIVE,
                                   ReplicationStyle.COLD_PASSIVE])
def test_conservation_through_failover(style):
    system, bank = deploy(style)
    primary = bank.primary_node()
    backup = [n for n in ("s1", "s2") if n != primary][0]
    system.kill_node(primary)
    system.run_for(0.5)
    servant = bank.servant_on(backup)
    assert servant is not None
    assert total(servant) == INITIAL * len(ACCOUNTS)
    # and the app kept moving money after the failover
    assert len(servant.history) > 10


def _expected_balances(moves: int):
    """Replay the mover's deterministic transfer sequence arithmetically."""
    balances = {name: INITIAL for name in ACCOUNTS}
    for index in range(moves):
        src = ACCOUNTS[index % len(ACCOUNTS)]
        dst = ACCOUNTS[(index + 1) % len(ACCOUNTS)]
        amount = 1 + index % 7
        balances[src] -= amount
        balances[dst] += amount
    return balances


def test_no_transfer_applied_twice_across_failover():
    """Balances must reflect each acknowledged transfer exactly once:
    recompute the expected balances from the client's move count."""
    system, bank = deploy(ReplicationStyle.WARM_PASSIVE)
    primary = bank.primary_node()
    backup = [n for n in ("s1", "s2") if n != primary][0]
    system.kill_node(primary)
    system.run_for(0.5)
    from repro.core.system import GroupHandle
    mover = GroupHandle(system, "mover").servant_on("c1")
    servant = bank.servant_on(backup)
    # the server may have executed the one in-flight transfer already
    candidates = [_expected_balances(mover.moves),
                  _expected_balances(mover.moves + 1)]
    assert servant.balances in candidates
