"""Integration: the durable store's recovery ladder (repro.store).

Cold-restart scenarios on the simulator with per-node in-memory journals
(the system-owned :class:`~repro.store.memory.MemoryStore` survives a
kill the way a disk survives a power cycle):

* a warm restart restores the durable checkpoint locally and fetches only
  the digest-negotiated tail — an order of magnitude fewer wire bytes
  than a journal-less recovery of the same state;
* a **full-cluster** kill, fatal to the journal-less system, cold-boots:
  the replica with the deepest journal elects itself seed, replays its
  log, and re-seeds the group with every committed invocation intact;
* a corrupt journal is quarantined — structured ``store.corrupt`` trace,
  full network recovery, audit-clean convergence;
* without a store configured, the volatile-loss behavior of the paper's
  system is preserved bit for bit.
"""

from repro.bench.deployments import build_client_server
from repro.ftcorba.properties import ReplicationStyle
from repro.store.memory import MemoryStore

STATE = 350_000


def deploy(*, store=True, server_replicas=3, state_size=STATE):
    return build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=server_replicas,
        state_size=state_size,
        # Long interval: checkpoints happen when the test forces them, so
        # measurement windows stay free of periodic transfers.
        checkpoint_interval=5.0,
        store_factory=(lambda node_id: MemoryStore()) if store else None,
        warmup=0.2,
    )


def _wire_bytes(system):
    c = system.tracer.counters
    return c.get("bulk.inorder.bytes", 0) + c.get("bulk.oob.bytes", 0)


def _force_checkpoint(dep, node="s1"):
    dep.system.mechanisms(node).recovery.initiate_checkpoint("store")
    dep.system.run_for(0.2)


def _restart(dep, node, *, downtime=0.05, timeout=10.0):
    system = dep.system
    system.kill_node(node)
    system.run_for(downtime)
    before = _wire_bytes(system)
    system.restart_node(node)
    assert system.wait_for(
        lambda: dep.server_group.is_operational_on(node), timeout=timeout)
    system.run_for(0.2)
    return _wire_bytes(system) - before


def test_warm_restart_ships_only_the_tail(strict_audit):
    warm = deploy()
    _force_checkpoint(warm)
    warm_bytes = _restart(warm, "s2")
    assert warm.system.tracer.counters.get("store.restored", 0) >= 1

    cold = deploy(store=False)
    cold_bytes = _restart(cold, "s2")

    # Acceptance gate: the journal-backed restart moves >=10x fewer state
    # bytes than the journal-less one at 350 kB of state.
    assert cold_bytes >= STATE          # full snapshot went over the wire
    assert warm_bytes * 10 <= cold_bytes


def test_full_cluster_kill_cold_boots_with_all_committed_state(strict_audit):
    dep = deploy(state_size=20_000)
    system = dep.system
    _force_checkpoint(dep)
    system.run_for(0.2)                 # more invocations past the ckpt
    acked_before = dep.driver.acked
    assert acked_before > 0

    for node in dep.server_nodes:
        system.kill_node(node)
    system.run_for(0.1)
    for node in dep.server_nodes:
        system.restart_node(node)
    assert system.wait_for(
        lambda: all(dep.server_group.is_operational_on(n)
                    for n in dep.server_nodes), timeout=20.0), \
        "group did not cold-boot from its journals"

    c = system.tracer.counters
    assert c.get("store.cold_seed_claimed", 0) >= 1
    # Every acknowledged invocation was journaled write-ahead of its
    # reply, so the cold-booted replicas must remember all of them.
    counts = {n: dep.server_servant(n).echo_count for n in dep.server_nodes}
    assert min(counts.values()) >= acked_before, counts

    # The service is actually alive again, not just marked operational.
    assert system.wait_for(lambda: dep.driver.acked > acked_before,
                           timeout=10.0)
    system.run_for(0.3)
    reference = dep.server_servant(dep.server_nodes[0]).get_state()
    for node in dep.server_nodes[1:]:
        assert dep.server_servant(node).get_state() == reference


def test_journal_less_full_cluster_kill_stays_dead():
    """Volatile-loss behavior preserved: without a store, whole-group
    death is fatal, exactly as in the paper's system."""
    dep = deploy(store=False, state_size=10_000)
    system = dep.system
    for node in dep.server_nodes:
        system.kill_node(node)
    system.run_for(0.1)
    for node in dep.server_nodes:
        system.restart_node(node)
    assert not system.wait_for(
        lambda: any(dep.server_group.is_operational_on(n)
                    for n in dep.server_nodes), timeout=3.0)
    assert system.tracer.counters.get("store.cold_seed_claimed", 0) == 0


def test_corrupt_journal_quarantined_and_recovered_over_network(strict_audit):
    dep = deploy(state_size=40_000)
    system = dep.system
    _force_checkpoint(dep)
    system.kill_node("s2")
    system.run_for(0.05)
    # Damage the dead node's journal mid-blob: a CRC mismatch in a sealed
    # region, not a torn tail.
    backend = system.stores["s2"].group("store").backend
    assert len(backend.blob) > 100
    backend.blob[len(backend.blob) // 2] ^= 0xFF
    system.restart_node("s2")
    assert system.wait_for(
        lambda: dep.server_group.is_operational_on("s2"), timeout=10.0)
    c = system.tracer.counters
    assert c.get("store.corrupt", 0) >= 1
    assert c.get("store.restored", 0) == 0
    system.run_for(0.3)
    assert (dep.server_servant("s2").get_state()
            == dep.server_servant("s1").get_state())


def test_restart_without_new_work_ships_no_state(strict_audit):
    """A replica that missed nothing needs nothing: restart with a
    journal covering the group's frontier moves no bulk state at all."""
    dep = deploy(state_size=30_000, server_replicas=3)
    system = dep.system
    _force_checkpoint(dep)
    # Stop the driver's flow by killing the client node: the group is
    # quiescent, so the journal frontier equals the group frontier.
    system.kill_node(dep.client_nodes[0])
    system.run_for(0.3)
    delta = _restart(dep, "s3", timeout=10.0)
    # Only the digest negotiation and (at most) a page-less delta should
    # have moved — a small fraction of the 30 kB state.
    assert delta < 10_000, delta
