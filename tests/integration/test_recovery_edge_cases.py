"""Integration: recovery-protocol edge cases.

The happy path is covered elsewhere; these tests aim at the awkward
interleavings — the responder dying mid-transfer, back-to-back recoveries,
recovery under a lossy network, and recovery racing with checkpoints.
"""

import pytest

from repro.bench.deployments import build_client_server, measure_recovery
from repro.ftcorba.properties import ReplicationStyle


def test_responder_crash_mid_transfer_retries():
    """s1 (the only operational responder) dies right after the join is
    announced; the recovering replica re-announces after its retry timeout
    and synchronizes from s3 once the Replication Manager places it."""
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=3,
        state_size=200_000,       # long transfer: a wide crash window
        warmup=0.2,
        keep_trace_records=True,
    )
    system = deployment.system
    group = deployment.server_group
    system.kill_node("s2")
    system.run_for(0.1)
    system.restart_node("s2")
    # wait for the join, then kill a responder while the transfer runs
    assert system.wait_for(
        lambda: system.tracer.count("recovery.join_announced") >= 1,
        timeout=2.0,
    )
    system.kill_node("s1")
    assert system.wait_for(lambda: group.is_operational_on("s2"),
                           timeout=10.0)
    system.run_for(0.3)
    s2 = group.servant_on("s2")
    s3 = group.servant_on("s3")
    assert s2.echo_count == s3.echo_count
    assert s2.payload == s3.payload


def test_recovery_under_message_loss():
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=50_000,
        warmup=0.2,
        seed=5,
    )
    system = deployment.system
    group = deployment.server_group
    system.faults.set_loss_rate(0.03)
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s2")
    assert system.wait_for(lambda: group.is_operational_on("s2"),
                           timeout=15.0)
    system.faults.set_loss_rate(0.0)
    system.run_for(0.5)
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    assert s1.echo_count == s2.echo_count
    assert s1.payload == s2.payload


def test_back_to_back_recoveries_of_same_replica():
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=5_000,
                                     warmup=0.2)
    system = deployment.system
    for _ in range(3):
        measure_recovery(deployment, "s2", downtime=0.05)
        system.run_for(0.1)
    system.run_for(0.3)
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    assert s1.echo_count == s2.echo_count


def test_recovery_concurrent_with_checkpoints():
    """A warm-passive group checkpointing every 50 ms while a new backup
    recovers: the flows interleave without corrupting either."""
    deployment = build_client_server(
        style=ReplicationStyle.WARM_PASSIVE,
        server_replicas=2,
        state_size=20_000,
        checkpoint_interval=0.05,
        warmup=0.3,
    )
    system = deployment.system
    group = deployment.server_group
    backup = [n for n in deployment.server_nodes
              if n != group.primary_node()][0]
    system.kill_node(backup)
    system.run_for(0.2)
    system.restart_node(backup)
    assert system.wait_for(lambda: group.is_operational_on(backup),
                           timeout=10.0)
    system.run_for(0.4)
    # failover onto the recovered backup must now work from its state
    primary = group.primary_node()
    driver = deployment.driver
    acked = driver.acked
    system.kill_node(primary)
    assert system.wait_for(lambda: driver.acked > acked + 50, timeout=5.0)
    system.run_for(0.3)
    servant = group.servant_on(backup)
    assert 0 <= servant.echo_count - driver.acked <= 1


def test_simultaneous_recovery_of_two_replicas():
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=3, state_size=5_000,
                                     warmup=0.2)
    system = deployment.system
    group = deployment.server_group
    system.kill_node("s2")
    system.kill_node("s3")
    system.run_for(0.2)
    system.restart_node("s2")
    system.restart_node("s3")
    assert system.wait_for(
        lambda: (group.is_operational_on("s2")
                 and group.is_operational_on("s3")),
        timeout=10.0,
    )
    system.run_for(0.3)
    counts = {deployment.server_servant(n).echo_count
              for n in deployment.server_nodes}
    assert len(counts) == 1


def test_total_group_failure_is_not_silently_recovered():
    """If every replica dies, there is no state holder: re-launched nodes
    must NOT come back operational pretending to have state."""
    deployment = build_client_server(style=ReplicationStyle.ACTIVE,
                                     server_replicas=2, state_size=1_000,
                                     warmup=0.2)
    system = deployment.system
    group = deployment.server_group
    system.kill_node("s1")
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s1")
    system.restart_node("s2")
    recovered = system.wait_for(
        lambda: group.is_operational_on("s1") or group.is_operational_on("s2"),
        timeout=2.0,
    )
    assert not recovered
