"""Shared fixtures for the test suite."""

import pytest

from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.simnet.trace import Tracer


@pytest.fixture
def scheduler():
    return Scheduler()


@pytest.fixture
def tracer(scheduler):
    t = Tracer(keep_records=True)
    t.bind_clock(lambda: scheduler.now)
    return t


@pytest.fixture
def network(scheduler, tracer):
    return Network(scheduler, tracer=tracer)


@pytest.fixture
def make_process(scheduler, tracer):
    def factory(node_id="node"):
        return Process(scheduler, node_id, tracer=tracer)
    return factory
