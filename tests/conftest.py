"""Shared fixtures for the test suite."""

import pytest

from repro.simnet.network import Network
from repro.simnet.process import Process
from repro.simnet.scheduler import Scheduler
from repro.simnet.trace import Tracer


@pytest.fixture
def scheduler():
    return Scheduler()


@pytest.fixture
def tracer(scheduler):
    t = Tracer(keep_records=True)
    t.bind_clock(lambda: scheduler.now)
    return t


@pytest.fixture
def network(scheduler, tracer):
    return Network(scheduler, tracer=tracer)


@pytest.fixture
def make_process(scheduler, tracer):
    def factory(node_id="node"):
        return Process(scheduler, node_id, tracer=tracer)
    return factory


@pytest.fixture
def strict_audit(monkeypatch):
    """Hard-fail consistency auditing for whole-system tests.

    Every :class:`EternalSystem` constructed while the fixture is active
    gets an online auditor attached at birth (so it sees the stream from
    the very first record); at teardown every auditor is finished and any
    finding raises, failing the test.  Yields the list of attached
    auditors for tests that want to assert on them directly.
    """
    from repro.core.system import EternalSystem

    auditors = []
    original_init = EternalSystem.__init__

    def patched_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        auditors.append(self.attach_auditor())

    monkeypatch.setattr(EternalSystem, "__init__", patched_init)
    yield auditors
    for auditor in auditors:
        auditor.finish(raise_on_findings=True)
