"""Extension: sensitivity of recovery to network message loss.

Totem's retransmission machinery (rtr requests on the token, flush on ring
reformation) repairs lost frames; this sweep shows the §5.1 recovery
protocol completing correctly under increasing loss, with recovery time
degrading gracefully rather than failing — the reliability property the
paper's mechanisms presuppose of the group communication layer.
"""

from repro.bench.deployments import build_client_server
from repro.bench.reporting import print_table
from repro.ftcorba.properties import ReplicationStyle

LOSS_RATES = [0.0, 0.01, 0.03, 0.05]
STATE_SIZE = 50_000


def _recover_under_loss(loss_rate: float, seed: int = 9):
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=STATE_SIZE,
        warmup=0.2,
        seed=seed,
    )
    system = deployment.system
    group = deployment.server_group
    tracer = system.tracer
    system.faults.set_loss_rate(loss_rate)
    system.kill_node("s2")
    system.run_for(0.1)
    retransmits_before = tracer.count("totem.retransmit")
    relaunched = system.now
    system.restart_node("s2")
    ok = system.wait_for(lambda: group.is_operational_on("s2"),
                         timeout=30.0)
    recovery_time = system.now - relaunched
    retransmits = tracer.count("totem.retransmit") - retransmits_before
    system.faults.set_loss_rate(0.0)
    system.run_for(0.5)
    s1 = deployment.server_servant("s1")
    s2 = deployment.server_servant("s2")
    consistent = (s1.echo_count == s2.echo_count
                  and s1.payload == s2.payload)
    return {"ok": ok, "recovery_ms": recovery_time * 1000,
            "retransmits": retransmits, "consistent": consistent}


def test_recovery_under_loss(benchmark):
    results = {}

    def run_sweep():
        for rate in LOSS_RATES:
            results[rate] = _recover_under_loss(rate)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for rate in LOSS_RATES:
        r = results[rate]
        rows.append([f"{rate:.0%}", round(r["recovery_ms"], 2),
                     r["retransmits"], "yes" if r["consistent"] else "NO"])
    print_table(
        "Extension — recovery of a 50 kB replica under network message loss",
        ["loss_rate", "recovery_ms", "retransmissions", "consistent"],
        rows,
        paper_note="Eternal presupposes reliable totally-ordered multicast; "
                   "Totem's retransmission repairs loss below it",
    )

    for rate in LOSS_RATES:
        assert results[rate]["ok"], f"recovery failed at {rate:.0%} loss"
        assert results[rate]["consistent"], f"diverged at {rate:.0%} loss"
    # loss costs retransmissions...
    assert results[0.05]["retransmits"] > results[0.0]["retransmits"]
    # ...and recovery degrades gracefully (stays within ~25x of lossless;
    # a lost token costs a full 20 ms reformation, dwarfing frame repair)
    assert results[0.05]["recovery_ms"] < 25 * max(
        1.0, results[0.0]["recovery_ms"]
    )
    benchmark.extra_info["sweep"] = {
        f"{rate:.2f}": {k: (round(v, 2) if isinstance(v, float) else v)
                        for k, v in results[rate].items()}
        for rate in LOSS_RATES
    }
