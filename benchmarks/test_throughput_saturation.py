"""Extension: throughput saturation of the replicated invocation path.

The paper reports response-time overhead for a closed-loop client; this
extension drives the 2-way active group *open-loop* at increasing offered
loads and locates the saturation knee of the token-ring pipeline: below
the knee achieved throughput tracks offered load and latency stays near
the unloaded RTT; past it, throughput flattens and latency grows without
bound (queueing).

A second benchmark measures what token-rotation frame packing buys at the
knee: with the servant cost zeroed out the medium itself saturates, and
coalescing queued sub-MTU fragments into multi-payload frames amortizes
the fixed per-frame overhead (header, inter-frame gap, per-frame CPU).
"""

from repro.bench.reporting import print_table
from repro.bench.sweeps import WIRE_BOUND_ECHO, run_throughput_point

OFFERED_LOADS = [1_000, 4_000, 8_000, 16_000, 32_000]  # invocations / s
SATURATING_LOAD = 64_000


def test_throughput_saturation(benchmark):
    results = {}

    def run_sweep():
        for rate in OFFERED_LOADS:
            results[rate] = run_throughput_point(rate)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for rate in OFFERED_LOADS:
        r = results[rate]
        rows.append([rate, round(r["achieved"], 0),
                     round(r["mean_ms"], 3), round(r["p99_ms"], 3)])
    print_table(
        "Extension — open-loop throughput of the 2-way active group",
        ["offered_per_s", "achieved_per_s", "mean_latency_ms",
         "p99_latency_ms"],
        rows,
        paper_note="closed-loop §6 numbers cannot show saturation; the "
                   "token ring pipelines invocations until the medium / "
                   "token cadence saturates",
    )

    low, high = results[OFFERED_LOADS[0]], results[OFFERED_LOADS[-1]]
    # below the knee: achieved tracks offered within 10%
    assert low["achieved"] > 0.9 * low["offered"]
    # past the knee: achieved throughput flattens below offered
    assert high["achieved"] < 0.9 * high["offered"]
    # latency at the highest load is much worse than at the lowest
    assert high["mean_ms"] > 3 * low["mean_ms"]
    benchmark.extra_info["sweep"] = {
        str(rate): {k: (round(v, 3) if isinstance(v, float) else v)
                    for k, v in results[rate].items()}
        for rate in OFFERED_LOADS
    }


def test_frame_packing_saturation_gain(benchmark):
    """Packing buys ≥20% saturated throughput on a wire-bound workload."""
    results = {}

    def run_pair():
        for packing in (True, False):
            results[packing] = run_throughput_point(
                SATURATING_LOAD, frame_packing=packing,
                echo_duration=WIRE_BOUND_ECHO)
        return results

    benchmark.pedantic(run_pair, rounds=1, iterations=1)

    packed, classic = results[True], results[False]
    print_table(
        "Tentpole — frame packing at a wire-bound saturating load",
        ["frame_packing", "offered_per_s", "achieved_per_s",
         "mean_latency_ms"],
        [["on", SATURATING_LOAD, round(packed["achieved"], 0),
          round(packed["mean_ms"], 3)],
         ["off", SATURATING_LOAD, round(classic["achieved"], 0),
          round(classic["mean_ms"], 3)]],
        paper_note="multi-payload DATA frames amortize the per-frame "
                   "header, inter-frame gap, and per-frame CPU that "
                   "otherwise bound small-invocation throughput",
    )
    assert packed["achieved"] >= 1.2 * classic["achieved"], (
        f"frame packing gained only "
        f"{packed['achieved'] / classic['achieved'] - 1:.1%} "
        f"saturated throughput (expected >= 20%)"
    )
    assert packed["mean_ms"] < classic["mean_ms"]
    benchmark.extra_info["packing"] = {
        "on": round(packed["achieved"], 0),
        "off": round(classic["achieved"], 0),
    }
