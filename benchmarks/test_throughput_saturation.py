"""Extension: throughput saturation of the replicated invocation path.

The paper reports response-time overhead for a closed-loop client; this
extension drives the 2-way active group *open-loop* at increasing offered
loads and locates the saturation knee of the token-ring pipeline: below
the knee achieved throughput tracks offered load and latency stays near
the unloaded RTT; past it, throughput flattens and latency grows without
bound (queueing).
"""

from repro.bench.deployments import build_client_server
from repro.bench.reporting import print_table
from repro.bench.workloads import make_open_loop_factory, uniform_schedule
from repro.ftcorba.properties import FTProperties, ReplicationStyle

OFFERED_LOADS = [1_000, 4_000, 8_000, 16_000, 32_000]  # invocations / s
WINDOW = 1.0
DRAIN = 0.3
DRIVER_TYPE = "IDL:repro/OpenLoopDriver:1.0"


def _run_load(rate: int):
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        client_replicas=1,       # the closed-loop driver idles: 0 max invocations
        state_size=100,
        warmup=0.05,
    )
    system = deployment.system
    # silence the closed-loop driver by replacing it with an open-loop one
    # on the same client node, targeting the same store
    iogr = deployment.server_group.iogr().stringify()
    schedule = uniform_schedule(rate, WINDOW, start=0.0)
    system.register_factory(
        DRIVER_TYPE, make_open_loop_factory(iogr, schedule), nodes=["c1"]
    )
    system.create_group("openloop", DRIVER_TYPE,
                        FTProperties(initial_replicas=1, min_replicas=1),
                        nodes=["c1"])
    start = system.now
    system.run_for(WINDOW + DRAIN)   # schedule window plus a short drain
    from repro.core.system import GroupHandle
    driver = GroupHandle(system, "openloop").servant_on("c1")
    elapsed = system.now - start
    achieved = driver.completed / WINDOW
    return {
        "offered": rate,
        "sent": driver.sent,
        "achieved": achieved,
        "mean_ms": driver.mean_latency * 1000,
        "p99_ms": driver.p99_latency * 1000,
    }


def test_throughput_saturation(benchmark):
    results = {}

    def run_sweep():
        for rate in OFFERED_LOADS:
            results[rate] = _run_load(rate)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for rate in OFFERED_LOADS:
        r = results[rate]
        rows.append([rate, round(r["achieved"], 0),
                     round(r["mean_ms"], 3), round(r["p99_ms"], 3)])
    print_table(
        "Extension — open-loop throughput of the 2-way active group",
        ["offered_per_s", "achieved_per_s", "mean_latency_ms",
         "p99_latency_ms"],
        rows,
        paper_note="closed-loop §6 numbers cannot show saturation; the "
                   "token ring pipelines invocations until the medium / "
                   "token cadence saturates",
    )

    low, high = results[OFFERED_LOADS[0]], results[OFFERED_LOADS[-1]]
    # below the knee: achieved tracks offered within 10%
    assert low["achieved"] > 0.9 * low["offered"]
    # past the knee: achieved throughput flattens below offered
    assert high["achieved"] < 0.9 * high["offered"]
    # latency at the highest load is much worse than at the lowest
    assert high["mean_ms"] > 3 * low["mean_ms"]
    benchmark.extra_info["sweep"] = {
        str(rate): {k: (round(v, 3) if isinstance(v, float) else v)
                    for k, v in results[rate].items()}
        for rate in OFFERED_LOADS
    }
