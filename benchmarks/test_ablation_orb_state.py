"""Ablation (Figure 4 / §4.2.1): GIOP request_id synchronization on/off.

Paper: if only application-level state is synchronized, the recovered
client replica's ORB restarts its per-connection request_id counter at 0;
the mismatch between transmitted and received request_ids causes a
client-side ORB to discard a perfectly valid reply, and the replica "will
now wait forever for a reply from the server".

With ``sync_orb_request_ids=True`` Eternal's interceptor rewrites the
recovered ORB's request_ids to the group-consistent values (discovered by
parsing the IIOP stream); both client replicas then remain live and
identical.  With it off, the recovered replica permanently stalls — replica
divergence."""

from repro.bench.deployments import build_client_server
from repro.bench.reporting import print_table
from repro.core.config import EternalConfig
from repro.ftcorba.properties import ReplicationStyle


def _run(sync: bool):
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=1,
        client_replicas=2,
        state_size=100,
        eternal_config=EternalConfig(sync_orb_request_ids=sync),
        warmup=0.3,
    )
    system = deployment.system
    group = deployment.client_group
    system.kill_node("c2")
    system.run_for(0.2)
    system.restart_node("c2")
    recovered = system.wait_for(lambda: group.is_operational_on("c2"),
                                timeout=5.0)
    assert recovered
    system.run_for(0.2)
    d1 = group.servant_on("c1")
    d2 = group.servant_on("c2")
    acked_mid = (d1.acked, d2.acked)
    system.run_for(0.5)
    binding2 = group.binding_on("c2")
    conn = binding2.container.orb.client_connection("store", 2809)
    return {
        "c1_progress": d1.acked - acked_mid[0],
        "c2_progress": d2.acked - acked_mid[1],
        "divergence": abs(d1.acked - d2.acked),
        "c2_discarded_replies": conn.replies_discarded if conn else 0,
        "consistent": abs(d1.acked - d2.acked) <= 1,
    }


def test_request_id_sync_ablation(benchmark):
    results = {}

    def run_both():
        results["on"] = _run(True)
        results["off"] = _run(False)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label in ("on", "off"):
        r = results[label]
        rows.append([label, r["c1_progress"], r["c2_progress"],
                     r["divergence"], r["c2_discarded_replies"],
                     "yes" if r["consistent"] else "NO"])
    print_table(
        "Figure 4 ablation — recovering an active client replica with and "
        "without ORB request_id synchronization",
        ["request_id_sync", "existing_progress", "recovered_progress",
         "divergence", "recovered_discards", "consistent"],
        rows,
        paper_note="without synchronization one of the client-side ORBs "
                   "discards a valid reply and its replica waits forever",
    )

    on, off = results["on"], results["off"]
    # With the fix: both replicas progress in lockstep.
    assert on["consistent"] and on["c2_progress"] > 100
    # Without: the recovered replica stalls while its sibling runs on.
    assert off["c2_progress"] == 0, off
    assert off["c1_progress"] > 100
    assert off["divergence"] > 100
    benchmark.extra_info["results"] = results
