"""§6 overhead claim: fault-free cost of interception + multicast +
replica-consistency mechanisms.

Paper: "The overheads, under normal fault-free operation, of the
interception, multicast and replica consistency mechanisms of our prototype
Eternal system are reasonable, within the range of 10-15% of the response
time for fault-tolerant CORBA test applications, over their unreplicated
counterparts."

We measure mean response time of the same packet-driver workload over (a)
the unreplicated point-to-point path and (b) the full Eternal path, for a
sweep of operation execution costs.  The paper's test applications ran on
167 MHz UltraSPARCs where one CORBA invocation cost milliseconds; at those
operation costs the reproduced overhead lands in the paper's band, and the
sweep shows the overhead is a fixed absolute cost (token wait + multicast)
that shrinks relatively as operations grow."""

from repro.bench.baseline import BaselinePair
from repro.bench.deployments import (
    build_client_server,
    make_weighted_kvstore_factory,
)
from repro.bench.reporting import print_table
from repro.ftcorba.properties import ReplicationStyle

OP_DURATIONS_MS = [0.2, 0.5, 1.0, 2.0, 5.0]
MEASURE_SECONDS = 2.0


JITTER = 0.15    # ±15% deterministic spread breaks token-rotation beats


def _baseline_rtt(op_duration: float) -> float:
    pair = BaselinePair(
        make_weighted_kvstore_factory(100, op_duration, jitter=JITTER)
    )
    pair.run(MEASURE_SECONDS)
    return pair.client.mean_latency


def _eternal_rtt(op_duration: float) -> float:
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        client_replicas=1,
        state_size=100,
        echo_duration=op_duration,
        echo_jitter=JITTER,
        warmup=0.1,
    )
    driver = deployment.driver
    start_acked = driver.acked
    start_time = deployment.system.now
    deployment.system.run_for(MEASURE_SECONDS)
    ops = driver.acked - start_acked
    elapsed = deployment.system.now - start_time
    return elapsed / max(1, ops)


def test_faultfree_overhead(benchmark):
    results = {}

    def run_sweep():
        for ms in OP_DURATIONS_MS:
            duration = ms / 1000.0
            results[ms] = (_baseline_rtt(duration), _eternal_rtt(duration))
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    overheads = {}
    for ms in OP_DURATIONS_MS:
        base, eternal = results[ms]
        overhead = (eternal - base) / base * 100.0
        overheads[ms] = overhead
        rows.append([ms, round(base * 1000, 4), round(eternal * 1000, 4),
                     round(overhead, 1)])
    print_table(
        "§6 — fault-free response-time overhead of Eternal vs unreplicated",
        ["op_cost_ms", "unreplicated_rtt_ms", "eternal_rtt_ms",
         "overhead_pct"],
        rows,
        paper_note="10-15% of response time for fault-tolerant CORBA test "
                   "applications on 167 MHz UltraSPARC (ms-scale "
                   "invocations)",
    )

    # The overhead is an additive cost (token wait + multicast frames), so
    # the relative overhead must shrink as operations get more expensive.
    # (It is not strictly monotone: the serial client beats against the
    # token rotation, quantizing the wait.)
    ordered = [overheads[ms] for ms in OP_DURATIONS_MS]
    assert all(o > 0 for o in ordered), ordered
    assert ordered[0] > max(ordered[-2:]), ordered
    # At 1999-era invocation costs (ms-scale) the overhead sits in/near the
    # paper's 10-15% band.
    assert max(overheads[2.0], overheads[5.0]) < 25.0
    assert min(overheads[1.0], overheads[2.0], overheads[5.0]) < 15.0
    benchmark.extra_info["overhead_pct"] = {
        str(ms): round(overheads[ms], 2) for ms in OP_DURATIONS_MS
    }
