"""Microbenchmark: CDR marshalling throughput.

CDR encoding sits on every hot path — GIOP request/reply headers, state
transfer envelopes, and (since the binary live codec) every Totem frame
the live runtime sends.  This benchmark exercises the primitive-write
loop and the frame codec directly, so regressions in
:class:`repro.giop.cdr.CdrOutputStream` (alignment padding, struct
packing) show up without running a whole deployment.

Unlike the simulation benchmarks these use real repeated rounds: the
cost being measured *is* wall-clock Python execution.
"""

from repro.giop.cdr import CdrInputStream, CdrOutputStream
from repro.totem.messages import DataMsg, PackedDataMsg, PackedPayload
from repro.totem.wire import decode_frame_payload, encode_frame_payload

PRIMITIVE_ROUNDS = 200       # mixed-primitive records per encode pass
CHUNK = bytes(range(256)) * 4


def _encode_mixed_records() -> bytes:
    out = CdrOutputStream()
    for i in range(PRIMITIVE_ROUNDS):
        out.write_octet(i & 0xFF)           # deliberately misaligns the
        out.write_ulong(i)                  # stream so ulong/ulonglong
        out.write_ulonglong(i * 7)          # writes exercise padding
        out.write_short(-i & 0x7FFF)
        out.write_double(i * 0.5)
        out.write_string(f"member-{i}")
        out.write_boolean(i % 2 == 0)
    return out.getvalue()


def test_cdr_primitive_marshalling(benchmark):
    encoded = benchmark(_encode_mixed_records)
    # sanity: decode the first record back
    inp = CdrInputStream(encoded)
    assert inp.read_octet() == 0
    assert inp.read_ulong() == 0
    assert inp.read_ulonglong() == 0
    assert inp.read_short() == 0
    assert inp.read_double() == 0.0
    assert inp.read_string() == "member-0"
    assert inp.read_boolean() is True


def test_totem_frame_round_trip(benchmark):
    """Encode+decode the frames the live transport actually carries."""
    frames = [
        DataMsg(ring_id=1, seq=s, sender="n1", msg_id=("n1", s),
                frag_index=0, frag_count=1, chunk=CHUNK)
        for s in range(8)
    ] + [
        PackedDataMsg(ring_id=1, seq=100 + s, sender="n2", payloads=(
            PackedPayload(("n2", s), 0, 1, CHUNK[:300]),
            PackedPayload(("n2", s + 1), 0, 1, CHUNK[:300]),
            PackedPayload(("n2", s + 2), 0, 1, CHUNK[:300]),
        ))
        for s in range(8)
    ]

    def round_trip():
        return [decode_frame_payload(encode_frame_payload(f))
                for f in frames]

    decoded = benchmark(round_trip)
    assert decoded == frames
