"""§6 trade-off: active vs warm passive vs cold passive replication.

Paper: "the size of the object's application-level state, and the
constraints placed on the object's recovery time, also influence the choice
of the object's replication style — active replication (more
resource-intensive, fewer state transfers, faster recovery) vs passive
replication (less resource-intensive, more frequent state transfers, slower
recovery)."

For each style we kill the serving replica (an active member / the primary)
and measure:

* **client-visible disruption** — the longest gap between consecutive
  replies around the fault (active replication masks the fault: the other
  replica keeps answering; passive styles pay detection + failover);
* **state-transfer traffic** — periodic checkpoints for passive styles vs
  none for active until a recovery happens;
* **execution resource usage** — operations executed across all server
  replicas (active executes everywhere).
"""

from repro.bench.deployments import build_client_server
from repro.bench.reporting import print_table
from repro.ftcorba.properties import ReplicationStyle

STYLES = [ReplicationStyle.ACTIVE, ReplicationStyle.WARM_PASSIVE,
          ReplicationStyle.COLD_PASSIVE]
STATE_SIZE = 20_000
RUN_BEFORE = 1.0
RUN_AFTER = 1.0


class _GapMeter:
    """Tracks the largest inter-reply gap seen by the client."""

    def __init__(self, system, driver):
        self.system = system
        self.driver = driver
        self.last_acked = driver.acked
        self.last_time = system.now
        self.max_gap = 0.0

    def sample(self):
        if self.driver.acked > self.last_acked:
            gap = self.system.now - self.last_time
            self.max_gap = max(self.max_gap, gap)
            self.last_acked = self.driver.acked
            self.last_time = self.system.now

    def watch(self, duration, step=0.002):
        end = self.system.now + duration
        while self.system.now < end:
            self.system.run_for(step)
            self.sample()


def _run_style(style: ReplicationStyle):
    deployment = build_client_server(
        style=style,
        server_replicas=2,
        state_size=STATE_SIZE,
        checkpoint_interval=0.2,
        warmup=0.1,
    )
    system = deployment.system
    tracer = system.tracer
    driver = deployment.driver
    system.run_for(RUN_BEFORE)

    checkpoints = tracer.count("recovery.checkpoint_initiated")
    executed_before = sum(
        deployment.server_group.binding_on(n).container.operations_executed
        for n in deployment.server_nodes
        if deployment.server_group.binding_on(n) is not None
    )

    meter = _GapMeter(system, driver)
    victim = (deployment.server_group.primary_node()
              if style.is_passive else "s1")
    system.kill_node(victim)
    meter.watch(RUN_AFTER)
    progressing = driver.acked > meter.last_acked - 1
    serving = [n for n in deployment.server_nodes if n != victim][0]
    servant = deployment.server_servant(serving)
    # Exactly-once check: after the dust settles, the surviving replica has
    # executed every acked invocation, plus at most the one in flight.
    system.run_for(0.3)
    consistent = (servant is not None
                  and 0 <= servant.echo_count - driver.acked <= 1)
    return {
        "style": style.value,
        "disruption_ms": meter.max_gap * 1000,
        "checkpoints_per_s": checkpoints / RUN_BEFORE,
        "ops_executed": executed_before,
        "progressing": progressing,
        "consistent": consistent,
    }


def test_replication_style_tradeoff(benchmark):
    results = {}

    def run_sweep():
        for style in STYLES:
            results[style] = _run_style(style)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for style in STYLES:
        r = results[style]
        rows.append([r["style"], round(r["disruption_ms"], 2),
                     round(r["checkpoints_per_s"], 1), r["ops_executed"],
                     "yes" if r["consistent"] else "NO"])
    print_table(
        "§6 — replication-style trade-off at replica failure "
        f"({STATE_SIZE} B state)",
        ["style", "client_disruption_ms", "checkpoints_per_s",
         "server_ops_executed", "consistent"],
        rows,
        paper_note="active: more resources, fewer state transfers, faster "
                   "recovery; passive: fewer resources, more state "
                   "transfers, slower recovery",
    )

    active = results[ReplicationStyle.ACTIVE]
    warm = results[ReplicationStyle.WARM_PASSIVE]
    cold = results[ReplicationStyle.COLD_PASSIVE]
    # Faster recovery: active masks the fault; passives pay failover.
    assert active["disruption_ms"] < warm["disruption_ms"]
    assert warm["disruption_ms"] <= cold["disruption_ms"] * 1.05
    # Fewer state transfers: active takes no periodic checkpoints.
    assert active["checkpoints_per_s"] == 0
    assert warm["checkpoints_per_s"] > 0
    assert cold["checkpoints_per_s"] > 0
    # More resource-intensive: active executes on every replica (≈2× the
    # primary-only execution of the passive styles).
    assert active["ops_executed"] > 1.5 * warm["ops_executed"]
    # All styles end consistent and progressing.
    for r in results.values():
        assert r["consistent"], r
    benchmark.extra_info["results"] = {
        s.value: {k: (round(v, 3) if isinstance(v, float) else v)
                  for k, v in results[s].items() if k != "style"}
        for s in STYLES
    }
