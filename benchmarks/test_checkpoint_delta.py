"""Tentpole: delta state transfer bends the checkpoint cost curve.

The paper's §3.3 periodic checkpoints ship the *entire* application state
every interval, so warm-passive checkpoint cost is linear in total state
size (the same slope as Figure 6's recovery curve).  With page-level
delta transfer the per-checkpoint wire cost tracks the *changed* pages:
under a ~10 %-dirty scribbling workload the median transfer at the
largest Figure-6 state size must improve by at least 2x, and the delta
bytes on the wire must stay well below the full-snapshot bytes.
"""

from repro.bench.reporting import print_table
from repro.bench.sweeps import run_checkpoint_point

STATE_SIZES = [100_000, 350_000]


def test_checkpoint_delta_vs_full(benchmark):
    results = {}

    def run_pair():
        for delta in (True, False):
            results[delta] = [
                run_checkpoint_point(size, delta=delta)
                for size in STATE_SIZES
            ]
        return results

    benchmark.pedantic(run_pair, rounds=1, iterations=1)

    rows = []
    for with_delta, points in sorted(results.items(), reverse=True):
        for r in points:
            rows.append(["delta" if with_delta else "full",
                         r["state_size"], r["checkpoints"],
                         round(r["median_ms"], 3), round(r["p95_ms"], 3),
                         int(r["wire_bytes"]), int(r["full_bytes"])])
    print_table(
        "Tentpole — warm-passive checkpoint transfer, delta vs full",
        ["mode", "state_bytes", "ckpts", "median_ms", "p95_ms",
         "delta_wire_B", "full_equiv_B"],
        rows,
        paper_note="§3.3 ships the whole state every interval; page "
                   "deltas make the cost linear in changed pages",
    )

    for with_delta, full in zip(results[True], results[False]):
        assert with_delta["checkpoints"] >= 5
        assert full["checkpoints"] >= 5
    # >= 2x median improvement at the largest state size, ~10% dirty
    delta_big, full_big = results[True][-1], results[False][-1]
    assert delta_big["state_size"] == full_big["state_size"] == 350_000
    assert delta_big["median_ms"] * 2 <= full_big["median_ms"], (
        f"delta median {delta_big['median_ms']:.3f} ms not 2x better than "
        f"full {full_big['median_ms']:.3f} ms"
    )
    # the wire carries a small fraction of the full-snapshot bytes
    assert delta_big["wire_bytes"] < delta_big["full_bytes"] / 2
    # delta cost reflects changed pages, not total size: scaling the state
    # 7x must not scale the median transfer 7x
    delta_small = results[True][0]
    assert delta_big["median_ms"] < 7 * max(delta_small["median_ms"], 0.01)
    benchmark.extra_info["median_ms"] = {
        "delta": round(delta_big["median_ms"], 3),
        "full": round(full_big["median_ms"], 3),
    }
