"""Shared fixtures for the benchmark harness.

Every benchmark runs a complete simulated deployment inside the
``benchmark`` callable (so pytest-benchmark captures the wall-clock cost of
the simulation) and reports the *simulated-time* metrics — the quantities
the paper actually plots — via printed tables and ``extra_info``.
"""

import pytest


def run_once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once


@pytest.fixture
def strict_audit(monkeypatch):
    """Hard-fail consistency auditing (same contract as the test suite's
    fixture): every EternalSystem built while active gets an online
    auditor; any finding raises at teardown."""
    from repro.core.system import EternalSystem

    auditors = []
    original_init = EternalSystem.__init__

    def patched_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        auditors.append(self.attach_auditor())

    monkeypatch.setattr(EternalSystem, "__init__", patched_init)
    yield auditors
    for auditor in auditors:
        auditor.finish(raise_on_findings=True)
