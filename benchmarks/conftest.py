"""Shared fixtures for the benchmark harness.

Every benchmark runs a complete simulated deployment inside the
``benchmark`` callable (so pytest-benchmark captures the wall-clock cost of
the simulation) and reports the *simulated-time* metrics — the quantities
the paper actually plots — via printed tables and ``extra_info``.
"""

import pytest


def run_once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
