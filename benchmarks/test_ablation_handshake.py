"""Ablation (§4.2.2): client-server handshake replay on/off.

Paper: the client's ORB encapsulates the results of the initial
vendor-specific handshake (short object keys, code sets) in its requests;
a new server replica whose ORB "missed the initial client-server handshake
is unable to interpret the already-negotiated information in A's requests.
Thus, A's requests, when delivered to B2's ORB, will be discarded."

Eternal stores the handshake message and delivers it to the new server
replica's ORB ahead of any other request.  With replay disabled, the
recovered replica's ORB discards every short-key request and the replica —
although its application state was restored — permanently diverges."""

from repro.bench.deployments import build_client_server
from repro.bench.reporting import print_table
from repro.core.config import EternalConfig
from repro.ftcorba.properties import ReplicationStyle


def _run(sync: bool):
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=1_000,
        eternal_config=EternalConfig(sync_handshake=sync),
        warmup=0.3,
    )
    system = deployment.system
    group = deployment.server_group
    system.kill_node("s2")
    system.run_for(0.2)
    system.restart_node("s2")
    recovered = system.wait_for(lambda: group.is_operational_on("s2"),
                                timeout=5.0)
    assert recovered
    system.run_for(0.2)
    s1 = group.servant_on("s1")
    s2 = group.servant_on("s2")
    counts_mid = (s1.echo_count, s2.echo_count)
    system.run_for(0.5)
    binding2 = group.binding_on("s2")
    return {
        "s1_progress": s1.echo_count - counts_mid[0],
        "s2_progress": s2.echo_count - counts_mid[1],
        "s2_discarded_requests": binding2.container.orb.requests_discarded,
        "divergence": abs(s1.echo_count - s2.echo_count),
        "consistent": s1.echo_count == s2.echo_count,
        "client_progressing": deployment.driver.acked > 0,
    }


def test_handshake_replay_ablation(benchmark):
    results = {}

    def run_both():
        results["on"] = _run(True)
        results["off"] = _run(False)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label in ("on", "off"):
        r = results[label]
        rows.append([label, r["s1_progress"], r["s2_progress"],
                     r["s2_discarded_requests"], r["divergence"],
                     "yes" if r["consistent"] else "NO"])
    print_table(
        "§4.2.2 ablation — recovering a server replica with and without "
        "handshake replay",
        ["handshake_replay", "existing_progress", "recovered_progress",
         "recovered_discards", "divergence", "consistent"],
        rows,
        paper_note="a new server replica that missed the handshake "
                   "discards the client's requests although its "
                   "application state was recovered",
    )

    on, off = results["on"], results["off"]
    assert on["consistent"] and on["s2_progress"] > 100
    assert on["s2_discarded_requests"] == 0
    # Without replay: every delivered short-key request is discarded.
    assert off["s2_progress"] == 0, off
    assert off["s2_discarded_requests"] > 100
    assert off["divergence"] > 100
    # The *existing* replica keeps the service available regardless.
    assert off["client_progressing"]
    benchmark.extra_info["results"] = results
