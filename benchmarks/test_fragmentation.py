"""§6 mechanism check: MTU-driven fragmentation of the state transfer.

Paper: "Regardless of the size of the application-level state, the entire
application-level state is encapsulated in a single IIOP message by the
ORB.  However ... the Ethernet medium necessitates the fragmentation of any
IIOP message that is larger than the maximum Ethernet frame size (1518
bytes) ... the number of multicast messages needed to transfer its state
... increases with the size of the object's application-level state."

We count the multicast frames of a single state transfer as a function of
state size, and sweep the frame size to show the frame count scales with
ceil(message / MTU payload) — the mechanism behind Figure 6's slope."""

import numpy as np

from repro.bench.deployments import build_client_server
from repro.bench.reporting import print_table
from repro.core.config import EternalConfig
from repro.ftcorba.properties import ReplicationStyle
from repro.simnet.network import NetworkConfig

STATE_SIZES = [10, 2_000, 20_000, 80_000, 160_000, 320_000]
FRAME_SIZES = [1518, 4096, 9018]      # classic, FDDI-ish, jumbo


def _transfer_frames(state_size: int, frame_max: int):
    network = NetworkConfig(frame_max=frame_max)
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=state_size,
        network_config=network,
        # count the paper's in-order fragments: with the bulk lane the
        # state pages leave the multicast ring entirely
        eternal_config=EternalConfig(bulk_lane=False),
        warmup=0.2,
    )
    tracer = deployment.system.tracer
    deployment.system.kill_node("s2")
    deployment.system.run_for(0.1)
    # Count only near-full frames: the state-transfer fragments.  The
    # packet driver keeps streaming during recovery (recovery is concurrent
    # with normal operation), and its small echo frames must not pollute
    # the count.
    threshold = int(frame_max * 0.5)
    counter = {"frames": 0}

    def observe(record):
        if (record.category == "totem" and record.event == "frame"
                and record.fields.get("size", 0) >= threshold):
            counter["frames"] += 1

    tracer.subscribe(observe)
    deployment.system.restart_node("s2")
    ok = deployment.system.wait_for(
        lambda: deployment.server_group.is_operational_on("s2"), timeout=10.0
    )
    assert ok
    return counter["frames"]


def test_fragmentation_scaling(benchmark):
    results = {}

    def run_sweep():
        for frame_max in FRAME_SIZES:
            for size in STATE_SIZES:
                results[(frame_max, size)] = _transfer_frames(size, frame_max)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for frame_max in FRAME_SIZES:
        payload = frame_max - 18 - 32   # MAC header+FCS, Totem data header
        for size in STATE_SIZES:
            expected = max(1, -(-size // payload))
            rows.append([frame_max, size, expected,
                         results[(frame_max, size)]])
    print_table(
        "§6 mechanism — multicast frames per state transfer vs state size "
        "and frame size",
        ["frame_max_B", "state_B", "state_fragments", "frames_in_window"],
        rows,
        paper_note="IIOP messages larger than the Ethernet frame are "
                   "transmitted as multiple multicast messages",
    )

    # Frame counts grow linearly with the expected fragment count, at every
    # frame size (r^2 > 0.98 on the >1-fragment region).
    for frame_max in FRAME_SIZES:
        payload = frame_max - 18 - 32
        x, y = [], []
        for size in STATE_SIZES:
            fragments = max(1, -(-size // payload))
            if fragments > 1:
                x.append(fragments)
                y.append(results[(frame_max, size)])
        if len(x) >= 3:
            r = np.corrcoef(np.array(x, float), np.array(y, float))[0, 1]
            assert r ** 2 > 0.98, (frame_max, x, y)
    # Bigger frames -> fewer frames for the same state.
    for size in STATE_SIZES[-2:]:
        counts = [results[(f, size)] for f in FRAME_SIZES]
        assert counts[0] > counts[-1], (size, counts)
    benchmark.extra_info["frames"] = {
        f"{f}/{s}": results[(f, s)]
        for f in FRAME_SIZES for s in STATE_SIZES
    }
