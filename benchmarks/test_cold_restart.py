"""Cold restart: what a durable journal buys on recovery (O-6).

Extension benchmark beyond the paper's volatile-replica model (§5.1): every
node keeps a write-ahead journal of durable checkpoints plus the ordered
message log past them (:mod:`repro.store`).  Three arms per state size:

* **warm** — one journal-backed replica is killed and re-launched; it
  restores locally and fetches only the digest-negotiated tail from its
  live peers.
* **no-store** — the identical restart without a journal: the whole
  application state crosses the wire (the paper's behaviour).
* **cold boot** — all three replicas die at once.  Fatal in the paper's
  system; with journals the deepest log wins a seed election, replays,
  and re-seeds the group with every committed invocation intact.

Gates:

* warm restart moves >= 10x fewer state bytes than no-store at 350 kB
  (the acceptance point), and already >= 5x at 64 kB,
* the full-cluster cold boot actually recovers (the sweep raises if it
  doesn't) and claims at least one seed,
* every run ends with matching digests (``strict_audit``).
"""

from repro.bench.reporting import print_table
from repro.bench.sweeps import COLD_RESTART_SIZES, run_cold_restart_point

MIN_RATIO = {64_000: 5.0, 350_000: 10.0}


def test_cold_restart_journal_vs_network(benchmark, strict_audit):
    results = {}

    def run_sweep():
        for size in COLD_RESTART_SIZES:
            results[size] = run_cold_restart_point(size)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for size in COLD_RESTART_SIZES:
        point = results[size]
        ratio = point["wire_ratio"]
        rows.append([
            size,
            round(point["warm_recovery_ms"], 3),
            round(point["warm_wire_bytes"] / 1000.0, 1),
            round(point["nostore_recovery_ms"], 3),
            round(point["nostore_wire_bytes"] / 1000.0, 1),
            round(ratio, 1) if ratio != float("inf") else "inf",
            round(point["cold_recovery_ms"], 3),
        ])
    print_table(
        "Cold restart — durable journal vs network-only recovery",
        ["state_bytes", "warm_ms", "warm_wire_kB", "nostore_ms",
         "nostore_wire_kB", "wire_ratio", "coldboot_ms"],
        rows,
        paper_note="the paper's replicas are volatile: a restart re-fetches "
                   "everything and whole-group death is fatal; the journal "
                   "turns both into local replay plus a negotiated tail",
    )

    for size in COLD_RESTART_SIZES:
        point = results[size]
        # the no-store arm really shipped the full snapshot
        assert point["nostore_wire_bytes"] >= size, point
        assert point["wire_ratio"] >= MIN_RATIO[size], (
            f"journal saving under {MIN_RATIO[size]:.0f}x at {size}: "
            f"{point['wire_ratio']:.1f}x"
        )
        # whole-cluster death is survivable, via an actual seed election
        assert point["cold_seeds"] >= 1.0, point
        assert point["cold_recovery_ms"] > 0.0, point

    benchmark.extra_info["wire_ratio"] = {
        str(size): (round(results[size]["wire_ratio"], 1)
                    if results[size]["wire_ratio"] != float("inf") else "inf")
        for size in COLD_RESTART_SIZES
    }
    benchmark.extra_info["cold_recovery_ms"] = {
        str(size): round(results[size]["cold_recovery_ms"], 3)
        for size in COLD_RESTART_SIZES
    }
