"""Extension: aggregate throughput of object groups sharded over many
independent Totem rings.

The paper's §6 numbers are single-ring: one token rotation orders every
message, so aggregate throughput is fixed no matter how many closed-loop
pairs share the medium.  This bench drives the same fixed work/node
budget (16 driver→kvstore pairs, every pair placement-pinned to its own
ring) across 1, 2, 4, and 8 rings and checks the sharding claim:

* the single-ring arm is rotation-bound (its aggregate equals the
  8-pair arm of the same ring — adding pairs adds nothing), and
* aggregate throughput grows near-linearly with ring count, ≥ 4x at
  8 rings (observed ~8x: the small rings run at the closed-loop
  latency floor while the big ring is token-bound).

All counting is in simulated time, so the numbers are deterministic.
"""

from repro.bench.reporting import print_table
from repro.bench.shardbench import SHARD_SCALE_RINGS, run_shard_scale_point


def test_shard_scale_near_linear(benchmark):
    results = {}

    def run_sweep():
        for rings in SHARD_SCALE_RINGS:
            results[rings] = run_shard_scale_point(rings, duration=0.5)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    base = results[SHARD_SCALE_RINGS[0]]["throughput_per_s"]
    rows = []
    for rings in SHARD_SCALE_RINGS:
        r = results[rings]
        rows.append([rings, r["acked"], round(r["throughput_per_s"], 1),
                     round(r["throughput_per_s"] / base, 2)])
    print_table(
        "Extension — sharded aggregate throughput over N Totem rings",
        ["rings", "acked", "acked_per_s", "vs_1_ring"],
        rows,
        paper_note="one ring = one token rotation = flat aggregate; "
                   "independent rings multiply the rotations",
    )

    # Near-linear scaling: every doubling of rings must buy real
    # aggregate throughput until the closed-loop latency floor, and the
    # headline 8-ring arm must clear 4x the single ring.
    assert results[2]["throughput_per_s"] > 1.5 * base
    assert results[4]["throughput_per_s"] > 3.0 * base
    assert results[8]["throughput_per_s"] > 4.0 * base
    benchmark.extra_info["sweep"] = {
        str(rings): {k: (round(v, 3) if isinstance(v, float) else v)
                     for k, v in results[rings].items()}
        for rings in SHARD_SCALE_RINGS
    }


def test_single_ring_is_rotation_bound():
    """Adding pairs to one ring adds nothing: the token rotation is the
    bottleneck (the premise that makes sharding worthwhile)."""
    eight = run_shard_scale_point(1, pairs=8, duration=0.5)
    sixteen = run_shard_scale_point(1, pairs=16, duration=0.5)
    assert sixteen["throughput_per_s"] < 1.25 * eight["throughput_per_s"]
