"""Live hot-path throughput: total order vs the read fast path (O-7).

Wall-clock closed-loop throughput over real loopback-UDP sockets, two
arms differing only in ``EternalConfig.read_lease`` plus a saturation
arm probing the batched transport (see :mod:`repro.bench.livebench`).

Gates:

* the read-lease arm at least doubles the total-order arm's closed-loop
  ops/s (the leaseholder answers ``get`` point-to-point instead of
  waiting out a token rotation),
* the saturation arm's drain loop averages > 1.5 datagrams per socket
  wakeup (recvmmsg / drain-to-EAGAIN batching actually batches),
* every arm finishes with a clean consistency audit (enforced inside
  :func:`~repro.bench.livebench.run_live_throughput`, which raises on
  findings) and zero fast-path fallbacks in the fault-free window.
"""

import pytest

from repro.bench.livebench import run_live_throughput
from repro.bench.reporting import print_table

pytestmark = pytest.mark.live

MIN_SPEEDUP = 2.0
MIN_DATAGRAMS_PER_WAKEUP = 1.5


def test_read_lease_doubles_live_throughput(benchmark):
    result = {}

    def run():
        result.update(run_live_throughput(duration=2.0))
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label in ("ordered", "leased", "saturated"):
        arm = result[label]
        rows.append([
            label, arm["n_drivers"],
            "on" if arm["read_lease"] else "off",
            round(arm["acked_per_s"], 1),
            arm["fast_reads"], arm["fallbacks"],
            round(arm["datagrams_per_wakeup"], 2),
        ])
    print_table(
        "Live closed-loop throughput — total order vs read lease",
        ["arm", "drivers", "lease", "acked_per_s", "fast_reads",
         "fallbacks", "dg_per_wakeup"],
        rows,
        paper_note="the paper's mechanisms order every IIOP message "
                   "through Totem; read_only operations served under "
                   "the ring leaseholder's lease skip the rotation",
    )

    ordered, leased = result["ordered"], result["leased"]
    saturated = result["saturated"]
    # Both arms actually ran a read-heavy mix with ordered writes.
    assert ordered["fast_reads"] == 0, ordered
    assert ordered["writes_acked"] > 0, ordered
    assert leased["fast_reads"] > 0, leased
    assert leased["writes_acked"] > 0, leased
    # Fault-free: nothing should have fallen back to the total order.
    assert leased["fallbacks"] == 0, leased
    speedup = result["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"read lease bought only {speedup:.2f}x "
        f"(gate >= {MIN_SPEEDUP:.1f}x): "
        f"{leased['acked_per_s']:.0f} vs {ordered['acked_per_s']:.0f} "
        f"ops/s")
    assert saturated["datagrams_per_wakeup"] >= MIN_DATAGRAMS_PER_WAKEUP, (
        f"receive batching at saturation: "
        f"{saturated['datagrams_per_wakeup']:.2f} datagrams/wakeup "
        f"(gate >= {MIN_DATAGRAMS_PER_WAKEUP})")

    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["ordered_ops_per_s"] = round(
        ordered["acked_per_s"], 1)
    benchmark.extra_info["leased_ops_per_s"] = round(
        leased["acked_per_s"], 1)
    benchmark.extra_info["datagrams_per_wakeup"] = round(
        saturated["datagrams_per_wakeup"], 2)
