"""Figure 6: recovery time vs application-level state size.

Paper setup (§6): a packet-driver client streams two-way invocations at an
actively replicated server; one server replica is killed and re-launched;
recovery time = re-launch → reinstatement to normal operation, for state
sizes from 10 bytes to 350,000 bytes.

Paper result: recovery time grows with state size because any IIOP message
larger than the 1518-byte Ethernet frame is fragmented into multiple
multicast messages; below one frame the curve is flat.

We assert the reproduced *shape*: (a) flat within measurement noise below
one Ethernet frame, (b) monotone growth beyond it, (c) a strong linear fit
of time vs fragment count in the tail.  The per-phase breakdown (§5.1
steps i–vi) comes from the metrics registry: every sweep deployment's
registry is merged and each phase's p50/p95/p99 reported.
"""

import numpy as np

from repro.bench.deployments import build_client_server, measure_recovery
from repro.bench.plot import ascii_plot
from repro.bench.reporting import print_table
from repro.bench.stats import summarize
from repro.core.config import EternalConfig
from repro.ftcorba.properties import ReplicationStyle
from repro.obs.metrics import StreamingHistogram, merge_registries
from repro.obs.report import RECOVERY_PHASES

STATE_SIZES = [10, 1_000, 10_000, 50_000, 100_000, 200_000, 350_000]
SEEDS = (0, 1, 2)
MTU_PAYLOAD = 1500 - 32      # Ethernet payload minus Totem DataMsg header


def _recover_once(state_size: int, seed: int = 0):
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=2,
        state_size=state_size,
        # this benchmark reproduces the *paper's* in-order fragmented
        # state transfer; the out-of-band bulk lane (which flattens the
        # curve) is measured separately in test_recovery_scale.py
        eternal_config=EternalConfig(bulk_lane=False),
        # the simulation is deterministic; the seeds vary the *phase* of
        # the fault relative to the token rotation and invocation stream,
        # which is the real run-to-run variance of the testbed experiment
        warmup=0.2 + seed * 0.0007,
        seed=seed,
        keep_trace_records=False,
    )
    tracer = deployment.system.tracer
    frames_before = tracer.count("totem.frame")
    recovery_time = measure_recovery(deployment, "s2",
                                     downtime=0.05 + seed * 0.0013)
    frames = tracer.count("totem.frame") - frames_before
    driver = deployment.driver
    deployment.system.run_for(0.2)
    consistent = (
        deployment.server_servant("s1").echo_count
        == deployment.server_servant("s2").echo_count
    )
    return (recovery_time, frames, consistent, driver.acked,
            deployment.system.metrics)


def test_fig6_recovery_time_vs_state_size(benchmark):
    results = {}
    spreads = {}
    registries = []

    def run_sweep():
        for size in STATE_SIZES:
            samples = []
            for seed in SEEDS:
                sample = _recover_once(size, seed)
                samples.append(sample)
                registries.append(sample[4])
            results[size] = samples[0]
            spreads[size] = summarize([s[0] for s in samples])
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for size in STATE_SIZES:
        recovery_time, frames, consistent, acked, _ = results[size]
        fragments = max(1, -(-size // MTU_PAYLOAD))
        rows.append([size, fragments,
                     spreads[size].format(scale=1000, digits=3),
                     frames, "yes" if consistent else "NO"])
    print_table(
        "Figure 6 — recovery time of an active server replica vs "
        "application-level state size "
        f"(mean ±95% CI over {len(SEEDS)} seeds)",
        ["state_bytes", "state_fragments", "recovery_ms",
         "multicast_frames", "consistent_after"],
        rows,
        paper_note="recovery time increases with state size; messages "
                   "> 1518 B fragment into multiple multicast messages "
                   "(VisiBroker 4.0 / Solaris testbed, absolute times not "
                   "comparable)",
    )
    print()
    print(ascii_plot(
        STATE_SIZES, [spreads[s].mean * 1000 for s in STATE_SIZES],
        x_label="application-level state (bytes)",
        y_label="recovery ms", logx=True,
    ))

    # Per-phase latency percentiles (§5.1 steps i–vi) from the merged
    # metrics registries of every deployment in the sweep.
    merged = merge_registries(registries)
    phase_rows = []
    phase_stats = {}
    for phase in RECOVERY_PHASES + ("total",):
        series = [m for _, _, m in merged.find(f"span.recovery.{phase}")]
        if not series:
            continue
        combined = StreamingHistogram()
        for extra in series:
            combined.merge(extra)
        phase_stats[phase] = combined
        phase_rows.append([phase, combined.count,
                           round(combined.p50 * 1000, 3),
                           round(combined.p95 * 1000, 3),
                           round(combined.p99 * 1000, 3)])
    print()
    print_table(
        "Recovery phase latencies across the sweep "
        f"({len(STATE_SIZES) * len(SEEDS)} recoveries)",
        ["phase", "count", "p50_ms", "p95_ms", "p99_ms"], phase_rows,
        paper_note="xfer dominates at large state sizes (fragmented "
                   "set_state multicast); the other phases are "
                   "size-independent",
    )
    expected_recoveries = len(STATE_SIZES) * len(SEEDS)
    for phase in RECOVERY_PHASES:
        hist = phase_stats.get(phase)
        assert hist is not None and hist.count > 0, \
            f"no samples for recovery phase {phase!r}"
        assert hist.p50 <= hist.p95 <= hist.p99, \
            f"phase {phase!r} percentiles not ordered"
    assert phase_stats["total"].count == expected_recoveries

    times = {s: spreads[s].mean for s in STATE_SIZES}
    # (a) flat region below one Ethernet frame: 10 B vs 1 kB within 25 %.
    assert times[1_000] <= times[10] * 1.25 + 0.002
    # (b) monotone growth beyond the MTU.
    big = [times[s] for s in STATE_SIZES[2:]]
    assert all(b > a for a, b in zip(big, big[1:])), big
    # (c) the tail is linear in the number of fragments (r^2 > 0.98).
    tail_sizes = STATE_SIZES[2:]
    x = np.array([-(-s // MTU_PAYLOAD) for s in tail_sizes], dtype=float)
    y = np.array([times[s] for s in tail_sizes])
    r = np.corrcoef(x, y)[0, 1]
    assert r ** 2 > 0.98, f"recovery time not linear in fragments: r^2={r**2}"
    # Every run must end strongly consistent.
    assert all(results[s][2] for s in STATE_SIZES)

    benchmark.extra_info["recovery_ms_by_size"] = {
        str(s): round(times[s] * 1000, 3) for s in STATE_SIZES
    }
