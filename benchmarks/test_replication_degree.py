"""Extension: cost and benefit of the replication degree (active style).

The paper evaluates 2-way active replication; this extension sweeps the
number of active replicas to quantify the §6 statement that active
replication is "more resource-intensive": fault-free response time rises
slightly with N (every replica's reply is multicast and duplicate-filtered,
and the token ring grows), total execution work rises linearly, while a
single failure remains masked at any N ≥ 2 and recovery time stays roughly
degree-independent (one responder's fabricated set_state wins; the rest
are suppressed as duplicates).
"""

from repro.bench.deployments import build_client_server, measure_recovery
from repro.bench.reporting import print_table
from repro.ftcorba.properties import ReplicationStyle

DEGREES = [1, 2, 3, 4]
MEASURE = 1.0


def _run_degree(replicas: int):
    deployment = build_client_server(
        style=ReplicationStyle.ACTIVE,
        server_replicas=replicas,
        state_size=10_000,
        warmup=0.2,
    )
    system = deployment.system
    driver = deployment.driver
    acked_start = driver.acked
    time_start = system.now
    system.run_for(MEASURE)
    ops = driver.acked - acked_start
    rtt = (system.now - time_start) / max(1, ops)
    work = sum(
        deployment.server_group.binding_on(n).container.operations_executed
        for n in deployment.server_nodes
    )
    work_per_op = work / max(1, driver.acked)
    recovery_ms = None
    if replicas >= 2:
        recovery_ms = measure_recovery(deployment, "s2") * 1000
        system.run_for(0.2)
        counts = {deployment.server_servant(n).echo_count
                  for n in deployment.server_nodes}
        assert len(counts) == 1, "replicas diverged"
    return {"rtt_us": rtt * 1e6, "work": work, "work_per_op": work_per_op,
            "recovery_ms": recovery_ms}


def test_replication_degree_sweep(benchmark):
    results = {}

    def run_sweep():
        for degree in DEGREES:
            results[degree] = _run_degree(degree)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for degree in DEGREES:
        r = results[degree]
        rows.append([degree, round(r["rtt_us"], 1),
                     round(r["work_per_op"], 2),
                     round(r["recovery_ms"], 2) if r["recovery_ms"] else "-"])
    print_table(
        "Extension — active replication degree: response time, execution "
        "work per invocation, recovery",
        ["replicas", "rtt_us", "server_ops_per_invocation", "recovery_ms"],
        rows,
        paper_note="active replication is more resource-intensive (§6); "
                   "the paper measures N=2",
    )

    # Resource cost: every replica executes every invocation, so the work
    # per completed invocation equals the degree.
    for degree in DEGREES:
        assert abs(results[degree]["work_per_op"] - degree) < 0.15 * degree
    # Fault-free RTT rises with the ring size (the token visits every
    # node), roughly one extra hop per added replica — noticeable but far
    # from the N× cost of executing everywhere.
    rtts = [results[d]["rtt_us"] for d in DEGREES]
    assert all(b > a for a, b in zip(rtts, rtts[1:])), rtts
    assert results[4]["rtt_us"] < 2.5 * results[1]["rtt_us"]
    # Recovery time is roughly degree-independent: duplicate fabricated
    # set_states are suppressed, one transfer happens.
    recovery_times = [results[d]["recovery_ms"] for d in (2, 3, 4)]
    assert max(recovery_times) < 1.5 * min(recovery_times)
    benchmark.extra_info["sweep"] = {
        str(d): {k: (round(v, 2) if isinstance(v, float) else v)
                 for k, v in results[d].items()}
        for d in DEGREES
    }
