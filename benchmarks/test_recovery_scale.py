"""Recovery at scale: the out-of-band bulk lane vs the in-order transfer.

Extension benchmark on top of Figure 6: at large state sizes the paper's
in-order fragmented set_state multicast makes recovery time linear in the
fragment count *and* stalls concurrent request traffic, because every
fragment competes with client invocations for the totally ordered ring.
The bulk lane ships checkpoint pages point-to-point out-of-band (striped
across the up-to-date replicas) while the ordered set_state carries only
a page manifest, so both effects should largely disappear.

Gates (vs the ``bulk=False`` ablation, same deployment and seed):

* recovery time at >= 256 kB improves by at least 2x,
* the packet driver's acked rate over a fixed window containing the
  recovery no longer collapses,
* every run finishes with matching state digests (``strict_audit``).
"""

from repro.bench.reporting import print_table
from repro.bench.sweeps import run_recovery_scale_point

STATE_SIZES = [256_000, 350_000]


def test_recovery_scale_bulk_vs_inorder(benchmark, strict_audit):
    results = {}

    def run_sweep():
        for size in STATE_SIZES:
            results[size] = {
                "bulk": run_recovery_scale_point(size, bulk=True),
                "inorder": run_recovery_scale_point(size, bulk=False),
            }
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for size in STATE_SIZES:
        for mode in ("bulk", "inorder"):
            point = results[size][mode]
            rows.append([
                size, mode, round(point["recovery_ms"], 3),
                int(point["baseline_per_s"]), int(point["during_per_s"]),
                round(point["during_ratio"], 3),
            ])
    print_table(
        "Recovery at scale — out-of-band bulk lane vs in-order ablation",
        ["state_bytes", "mode", "recovery_ms", "driver_base_per_s",
         "driver_during_per_s", "during_ratio"],
        rows,
        paper_note="the in-order transfer's fragments compete with client "
                   "invocations for the total order; the bulk lane leaves "
                   "only a page manifest on the ring",
    )

    for size in STATE_SIZES:
        bulk = results[size]["bulk"]
        inorder = results[size]["inorder"]
        # the lane actually engaged (and only when enabled)
        assert bulk["bulk_sessions"] >= 1, bulk
        assert bulk["oob_bytes"] > size, bulk
        assert inorder["bulk_sessions"] == 0, inorder
        assert inorder["oob_bytes"] == 0, inorder
        # headline gate: >= 2x faster recovery at large state sizes
        assert bulk["recovery_ms"] * 2 <= inorder["recovery_ms"], (
            f"bulk lane under 2x at {size}: "
            f"{bulk['recovery_ms']:.1f} ms vs {inorder['recovery_ms']:.1f} ms"
        )
        # concurrent request throughput no longer collapses: the bulk run
        # keeps most of its fault-free rate through the recovery window,
        # and clearly beats the ablation
        assert bulk["during_ratio"] >= 0.85, bulk
        assert bulk["during_ratio"] >= inorder["during_ratio"] + 0.1, (
            bulk["during_ratio"], inorder["during_ratio"])

    benchmark.extra_info["recovery_ms"] = {
        f"{size}/{mode}": round(results[size][mode]["recovery_ms"], 3)
        for size in STATE_SIZES for mode in ("bulk", "inorder")
    }
    benchmark.extra_info["during_ratio"] = {
        f"{size}/{mode}": round(results[size][mode]["during_ratio"], 3)
        for size in STATE_SIZES for mode in ("bulk", "inorder")
    }
