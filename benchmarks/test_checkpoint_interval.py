"""Ablation (§3.3): the checkpointing-interval trade-off for warm passive.

"Eternal logs each checkpoint and the ordered messages that follow that
checkpoint, until the next checkpoint (which overwrites the previous
checkpoint) occurs."  The interval is a user-chosen fault-tolerance
property (§5): frequent checkpoints cost state-transfer traffic during
normal operation but shorten the log that must be replayed at failover;
infrequent checkpoints invert the trade.
"""

from repro.bench.deployments import build_client_server
from repro.bench.reporting import print_table
from repro.ftcorba.properties import ReplicationStyle

INTERVALS = [0.05, 0.1, 0.2, 0.5, 1.0]
STATE_SIZE = 30_000
TRAFFIC_WINDOW = 1.5


def _run_before(interval: float) -> float:
    """Run past the traffic window, then inject the fault mid-cycle (half
    an interval after a checkpoint) — the expected-case failover point."""
    cycles = int(TRAFFIC_WINDOW / interval) + 1
    return cycles * interval + interval / 2


def _run_interval(interval: float):
    deployment = build_client_server(
        style=ReplicationStyle.WARM_PASSIVE,
        server_replicas=2,
        state_size=STATE_SIZE,
        checkpoint_interval=interval,
        warmup=0.1,
    )
    system = deployment.system
    tracer = system.tracer
    driver = deployment.driver
    bytes_before = tracer.counters.get("net.bytes", 0)
    system.run_for(TRAFFIC_WINDOW)
    checkpoint_count = tracer.count("recovery.checkpoint_initiated")
    total_bytes = tracer.counters.get("net.bytes", 0) - bytes_before
    system.run_for(_run_before(interval) - TRAFFIC_WINDOW)

    backup = [n for n in deployment.server_nodes
              if n != deployment.server_group.primary_node()][0]
    log_length = deployment.server_group.binding_on(backup).log.log_length

    primary = deployment.server_group.primary_node()
    acked_at_kill = driver.acked
    kill_time = system.now
    system.kill_node(primary)
    ok = system.wait_for(lambda: driver.acked > acked_at_kill + 20,
                         timeout=10.0)
    assert ok, f"failover did not complete for interval={interval}"
    failover_time = system.now - kill_time
    servant = deployment.server_servant(backup)
    consistent = servant.echo_count == driver.acked
    return {
        "checkpoints": checkpoint_count,
        "net_kb_per_s": total_bytes / TRAFFIC_WINDOW / 1000.0,
        "log_length_at_fault": log_length,
        "failover_ms": failover_time * 1000.0,
        "consistent": consistent,
    }


def test_checkpoint_interval_tradeoff(benchmark):
    results = {}

    def run_sweep():
        for interval in INTERVALS:
            results[interval] = _run_interval(interval)
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for interval in INTERVALS:
        r = results[interval]
        rows.append([interval, r["checkpoints"],
                     round(r["net_kb_per_s"], 1), r["log_length_at_fault"],
                     round(r["failover_ms"], 2),
                     "yes" if r["consistent"] else "NO"])
    print_table(
        "§3.3 ablation — checkpoint interval: transfer traffic vs "
        f"log-replay length (warm passive, {STATE_SIZE} B state)",
        ["interval_s", "checkpoints", "net_kB_per_s", "log_at_fault",
         "failover_ms", "consistent"],
        rows,
        paper_note="checkpoint frequency is a per-object FT property; each "
                   "checkpoint overwrites its predecessor and prunes the "
                   "log",
    )

    # More frequent checkpoints -> more network traffic...
    kbs = [results[i]["net_kb_per_s"] for i in INTERVALS]
    assert kbs[0] > kbs[-1], kbs
    # ...but a shorter log to replay at failover.
    logs = [results[i]["log_length_at_fault"] for i in INTERVALS]
    assert logs[0] < logs[-1], logs
    # Correctness is interval-independent.
    assert all(results[i]["consistent"] for i in INTERVALS)
    benchmark.extra_info["sweep"] = {
        str(i): {k: (round(v, 3) if isinstance(v, float) else v)
                 for k, v in results[i].items()}
        for i in INTERVALS
    }
